#include "apps/lu.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

void lu_diag_kernel(int b, double* out) {
  for (int t = 0; t < b; ++t) {
    const double pivot = out[t * b + t];
    for (int r = t + 1; r < b; ++r) out[r * b + t] /= pivot;
    for (int r = t + 1; r < b; ++r) {
      const double l = out[r * b + t];
      for (int c = t + 1; c < b; ++c) out[r * b + c] -= l * out[t * b + c];
    }
  }
}

void lu_col_kernel(int b, const double* in, double* out, const double* diag) {
  // out = in * U^-1 (U = upper of diag, non-unit). Columns in order: column
  // t reads only already-written columns < t, so in/out may alias.
  for (int t = 0; t < b; ++t) {
    for (int r = 0; r < b; ++r) {
      double v = in[r * b + t];
      for (int c = 0; c < t; ++c) v -= out[r * b + c] * diag[c * b + t];
      out[r * b + t] = v / diag[t * b + t];
    }
  }
}

void lu_row_kernel(int b, const double* in, double* out, const double* diag) {
  // out = L^-1 * in (L = unit lower of diag). Rows in order.
  for (int t = 0; t < b; ++t) {
    for (int c = 0; c < b; ++c) {
      double v = in[t * b + c];
      for (int s = 0; s < t; ++s) v -= diag[t * b + s] * out[s * b + c];
      out[t * b + c] = v;
    }
  }
}

void lu_trailing_kernel(int b, const double* in, double* out, const double* l,
                        const double* u) {
  for (int r = 0; r < b; ++r) {
    for (int c = 0; c < b; ++c) {
      double v = in[r * b + c];
      for (int t = 0; t < b; ++t) v -= l[r * b + t] * u[t * b + c];
      out[r * b + c] = v;
    }
  }
}

LuProblem::LuProblem(const AppConfig& cfg)
    : cfg_(cfg),
      w_(static_cast<int>(cfg.grid())),
      b_(static_cast<int>(cfg.block)) {
  FTDAG_ASSERT(cfg.n % cfg.block == 0, "n must be a multiple of block");

  // Diagonally dominant input: stable without pivoting.
  Xoshiro256 rng(cfg.seed);
  input_.resize(static_cast<std::size_t>(cfg.n) * cfg.n);
  for (int bi = 0; bi < w_; ++bi)
    for (int bj = 0; bj < w_; ++bj) {
      double* block =
          input_.data() + (static_cast<std::size_t>(bi) * w_ + bj) * b_ * b_;
      for (int r = 0; r < b_; ++r)
        for (int c = 0; c < b_; ++c) {
          double v = rng.uniform01() * 2.0 - 1.0;
          if (bi == bj && r == c) v += static_cast<double>(cfg.n);
          block[r * b_ + c] = v;
        }
    }

  // Default full in-place reuse; retention 0 (single assignment) and 2 are
  // also valid for LU's structure (non-final versions have a single reader,
  // the next updater).
  const Version keep =
      cfg.retention < 0 ? 1 : static_cast<Version>(cfg.retention);
  FTDAG_ASSERT(keep <= 2, "LU supports retention 0, 1 or 2");
  store_.set_retention(keep);
  block_ids_.resize(static_cast<std::size_t>(w_) * w_);
  for (int i = 0; i < w_; ++i)
    for (int j = 0; j < w_; ++j)
      block_ids_[static_cast<std::size_t>(i) * w_ + j] =
          store_.add_block(sizeof(double) * b_ * b_,
                           static_cast<Version>(std::min(i, j) + 1));

  all_tasks(tasks_);
  task_index_.reserve(tasks_.size());
  for (std::size_t idx = 0; idx < tasks_.size(); ++idx) {
    task_index_.emplace(tasks_[idx], idx);
    int k, i, j;
    decode(tasks_[idx], k, i, j);
    store_.set_producer(blk(i, j), static_cast<Version>(k), tasks_[idx]);
  }
  board_.resize(tasks_.size());
}

void LuProblem::predecessors(TaskKey t, KeyList& out) const {
  int k, i, j;
  decode(t, k, i, j);
  const int m = std::min(i, j);
  if (k < m) {  // trailing update
    out.push_back(key(k, i, k));
    out.push_back(key(k, k, j));
    if (k > 0) out.push_back(key(k - 1, i, j));
    return;
  }
  if (i == k && j == k) {  // diagonal
    if (k > 0) out.push_back(key(k - 1, k, k));
  } else {  // panel (row or column)
    out.push_back(key(k, k, k));
    if (k > 0) out.push_back(key(k - 1, i, j));
  }
}

void LuProblem::successors(TaskKey t, KeyList& out) const {
  int k, i, j;
  decode(t, k, i, j);
  const int m = std::min(i, j);
  if (k < m) {
    out.push_back(key(k + 1, i, j));
    return;
  }
  if (i == k && j == k) {  // diagonal feeds the step-k panels
    for (int j2 = k + 1; j2 < w_; ++j2) out.push_back(key(k, k, j2));
    for (int i2 = k + 1; i2 < w_; ++i2) out.push_back(key(k, i2, k));
  } else if (j == k) {  // column panel L(i,k) feeds row i of the trailing set
    for (int j2 = k + 1; j2 < w_; ++j2) out.push_back(key(k, i, j2));
  } else {  // row panel U(k,j) feeds column j of the trailing set
    for (int i2 = k + 1; i2 < w_; ++i2) out.push_back(key(k, i2, j));
  }
}

void LuProblem::compute(TaskKey t, ComputeContext& ctx) {
  int k, i, j;
  decode(t, k, i, j);
  const int m = std::min(i, j);
  const BlockId id = blk(i, j);
  const Version ver = static_cast<Version>(k);

  const double* in;
  double* out;
  if (k == 0) {
    in = input_block(i, j);
    out = ctx.write<double>(id, 0);
  } else {
    UpdateRef<double> ref = ctx.update<double>(id, ver - 1, ver);
    in = ref.in;
    out = ref.out;
  }

  if (k < m) {
    const double* l = ctx.read<double>(blk(i, k), static_cast<Version>(k));
    const double* u = ctx.read<double>(blk(k, j), static_cast<Version>(k));
    lu_trailing_kernel(b_, in, out, l, u);
  } else if (i == k && j == k) {
    if (out != in) std::copy(in, in + static_cast<std::size_t>(b_) * b_, out);
    lu_diag_kernel(b_, out);
  } else if (j == k) {
    const double* diag = ctx.read<double>(blk(k, k), static_cast<Version>(k));
    lu_col_kernel(b_, in, out, diag);
  } else {
    const double* diag = ctx.read<double>(blk(k, k), static_cast<Version>(k));
    lu_row_kernel(b_, in, out, diag);
  }
  ctx.stage_result(board_.slot(task_index(t)),
                   digest_array(out, static_cast<std::size_t>(b_) * b_));
}

void LuProblem::all_tasks(std::vector<TaskKey>& out) const {
  for (int k = 0; k < w_; ++k)
    for (int i = k; i < w_; ++i)
      for (int j = k; j < w_; ++j) out.push_back(key(k, i, j));
}

void LuProblem::outputs(TaskKey t, OutputList& out) const {
  int k, i, j;
  decode(t, k, i, j);
  out.push_back({blk(i, j), static_cast<Version>(k),
                 static_cast<Version>(std::min(i, j))});
}

void LuProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t LuProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  std::vector<double> d = input_;
  DigestBoard ref;
  ref.resize(board_.size());
  auto at = [&](int i, int j) {
    return d.data() + (static_cast<std::size_t>(i) * w_ + j) * b_ * b_;
  };
  auto dig = [&](int k, int i, int j) {
    ref.set(task_index(key(k, i, j)),
            digest_array(at(i, j), static_cast<std::size_t>(b_) * b_));
  };
  for (int k = 0; k < w_; ++k) {
    lu_diag_kernel(b_, at(k, k));
    dig(k, k, k);
    for (int j = k + 1; j < w_; ++j) {
      lu_row_kernel(b_, at(k, j), at(k, j), at(k, k));
      dig(k, k, j);
    }
    for (int i = k + 1; i < w_; ++i) {
      lu_col_kernel(b_, at(i, k), at(i, k), at(k, k));
      dig(k, i, k);
    }
    for (int i = k + 1; i < w_; ++i)
      for (int j = k + 1; j < w_; ++j) {
        lu_trailing_kernel(b_, at(i, j), at(i, j), at(i, k), at(k, j));
        dig(k, i, j);
      }
  }
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

}  // namespace ftdag
