#include "apps/smith_waterman.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

constexpr std::int32_t kMatch = 2;
constexpr std::int32_t kMismatch = -1;
constexpr std::int32_t kGap = 1;

}  // namespace

void sw_block_kernel(int b, const std::uint8_t* a_seg,
                     const std::uint8_t* b_seg, const std::int32_t* up,
                     const std::int32_t* left, const std::int32_t* diag,
                     std::int32_t* out) {
  std::vector<std::int32_t> prev(b + 1), cur(b + 1);
  prev[0] = diag ? diag[b - 1] : 0;  // corner cell
  for (int j = 0; j < b; ++j) prev[j + 1] = up ? up[j] : 0;

  std::int32_t* out_row = out;
  std::int32_t* out_col = out + b;
  std::int32_t best = 0;

  for (int i = 0; i < b; ++i) {
    cur[0] = left ? left[b + i] : 0;  // left boundary's column section
    for (int j = 0; j < b; ++j) {
      const std::int32_t sub =
          prev[j] + (a_seg[i] == b_seg[j] ? kMatch : kMismatch);
      std::int32_t h = std::max<std::int32_t>(0, sub);
      h = std::max(h, prev[j + 1] - kGap);
      h = std::max(h, cur[j] - kGap);
      cur[j + 1] = h;
      best = std::max(best, h);
    }
    out_col[i] = cur[b];
    std::swap(prev, cur);
  }
  for (int j = 0; j < b; ++j) out_row[j] = prev[j + 1];

  // Running maximum across all ancestor blocks.
  if (up) best = std::max(best, up[2 * b]);
  if (left) best = std::max(best, left[2 * b]);
  if (diag) best = std::max(best, diag[2 * b]);
  out[2 * b] = best;
}

ProducedVersion SmithWatermanProblem::placement(int bi, int bj) const {
  const int w = grid_.width();
  const int d = bi - bj;
  const int s = std::min(bi, bj);
  const int len = w - std::abs(d);             // diagonal length
  const int parity = s & 1;
  const int chain = (d + w - 1) * 2 + parity;  // chain index
  const int versions = (len - parity + 1) / 2; // versions in this chain
  FTDAG_ASSERT(versions >= 1, "placement on an empty chain");
  return {chain_block_[chain], static_cast<Version>(s >> 1),
          static_cast<Version>(versions - 1)};
}

SmithWatermanProblem::SmithWatermanProblem(const AppConfig& cfg)
    : cfg_(cfg),
      grid_(static_cast<int>(cfg.grid())),
      b_(static_cast<int>(cfg.block)),
      bnd_(static_cast<std::size_t>(2) * cfg.block + 1) {
  FTDAG_ASSERT(cfg.n % cfg.block == 0, "n must be a multiple of block");
  const int w = grid_.width();

  Xoshiro256 rng(cfg.seed);
  seq_a_.resize(cfg.n);
  seq_b_.resize(cfg.n);
  for (auto& c : seq_a_) c = static_cast<std::uint8_t>(rng.below(4));
  for (auto& c : seq_b_) c = static_cast<std::uint8_t>(rng.below(4));

  // Default full reuse along each diagonal chain. Any depth is structurally
  // safe for SW (version v's readers are ancestors of the v+r writer for
  // all r >= 1); 0 gives the paper's single-assignment variant.
  const Version keep =
      cfg.retention < 0 ? 1 : static_cast<Version>(cfg.retention);
  store_.set_retention(keep);
  chain_block_.assign(static_cast<std::size_t>(2 * w - 1) * 2, BlockId{0});
  for (int d = -(w - 1); d <= w - 1; ++d) {
    const int len = w - std::abs(d);
    for (int parity = 0; parity < 2; ++parity) {
      const int versions = (len - parity + 1) / 2;
      if (versions < 1) continue;
      const int chain = (d + w - 1) * 2 + parity;
      chain_block_[chain] = store_.add_block(sizeof(std::int32_t) * bnd_,
                                             static_cast<Version>(versions));
    }
  }
  for (int bi = 0; bi < w; ++bi) {
    for (int bj = 0; bj < w; ++bj) {
      const ProducedVersion pv = placement(bi, bj);
      store_.set_producer(pv.block, pv.version, grid_.key(bi, bj));
    }
  }
  board_.resize(static_cast<std::size_t>(w) * w + 1);  // +1: best score
}

void SmithWatermanProblem::compute(TaskKey key, ComputeContext& ctx) {
  const int bi = grid_.row(key), bj = grid_.col(key);

  const std::int32_t* up = nullptr;
  const std::int32_t* left = nullptr;
  const std::int32_t* diag = nullptr;
  if (bi > 0) {
    const ProducedVersion pv = placement(bi - 1, bj);
    up = ctx.read<std::int32_t>(pv.block, pv.version);
  }
  if (bj > 0) {
    const ProducedVersion pv = placement(bi, bj - 1);
    left = ctx.read<std::int32_t>(pv.block, pv.version);
  }
  if (bi > 0 && bj > 0) {
    const ProducedVersion pv = placement(bi - 1, bj - 1);
    diag = ctx.read<std::int32_t>(pv.block, pv.version);
  }

  const ProducedVersion mine = placement(bi, bj);
  std::int32_t* out = ctx.write<std::int32_t>(mine.block, mine.version);
  sw_block_kernel(b_, seq_a_.data() + static_cast<std::size_t>(bi) * b_,
                  seq_b_.data() + static_cast<std::size_t>(bj) * b_, up, left,
                  diag, out);
  ctx.stage_result(board_.slot(task_index(key)), digest_array(out, bnd_));
  if (key == grid_.sink())
    ctx.stage_result(board_.slot(board_.size() - 1),
                     static_cast<std::uint64_t>(out[2 * b_]));
}

void SmithWatermanProblem::outputs(TaskKey key, OutputList& out) const {
  out.push_back(placement(grid_.row(key), grid_.col(key)));
}

void SmithWatermanProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t SmithWatermanProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  const int w = grid_.width();
  // Sequential run of the same kernels, no reuse: one boundary per block.
  std::vector<std::int32_t> bounds(static_cast<std::size_t>(w) * w * bnd_);
  DigestBoard ref;
  ref.resize(static_cast<std::size_t>(w) * w + 1);
  auto at = [&](int bi, int bj) {
    return bounds.data() + task_index(grid_.key(bi, bj)) * bnd_;
  };
  for (int bi = 0; bi < w; ++bi) {
    for (int bj = 0; bj < w; ++bj) {
      std::int32_t* out = at(bi, bj);
      sw_block_kernel(b_, seq_a_.data() + static_cast<std::size_t>(bi) * b_,
                      seq_b_.data() + static_cast<std::size_t>(bj) * b_,
                      bi > 0 ? at(bi - 1, bj) : nullptr,
                      bj > 0 ? at(bi, bj - 1) : nullptr,
                      (bi > 0 && bj > 0) ? at(bi - 1, bj - 1) : nullptr, out);
      ref.set(task_index(grid_.key(bi, bj)), digest_array(out, bnd_));
    }
  }
  ref.set(ref.size() - 1,
          static_cast<std::uint64_t>(at(w - 1, w - 1)[2 * b_]));
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

}  // namespace ftdag
