#include "apps/random_dag.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

RandomDagProblem::RandomDagProblem(const RandomDagSpec& spec) : spec_(spec) {
  FTDAG_ASSERT(spec.layers >= 1 && spec.width >= 1, "degenerate DAG spec");
  const int L = spec.layers, W = spec.width;
  const std::size_t nodes = static_cast<std::size_t>(L) * W + 1;
  sink_key_ = static_cast<TaskKey>(L) * W;
  preds_.resize(nodes);
  succs_.resize(nodes);

  auto node = [W](int l, int p) { return static_cast<TaskKey>(l) * W + p; };

  Xoshiro256 rng(spec.seed);
  for (int l = 1; l < L; ++l) {
    for (int p = 0; p < W; ++p) {
      KeyList& pl = preds_[index(node(l, p))];
      pl.push_back(node(l - 1, p));  // guarantees sink reachability
      for (int e = 0; e < spec.extra_degree; ++e) {
        const TaskKey cand = node(l - 1, static_cast<int>(rng.below(W)));
        if (!pl.contains(cand)) pl.push_back(cand);
      }
    }
  }
  for (int p = 0; p < W; ++p)
    preds_[index(sink_key_)].push_back(node(L - 1, p));

  for (TaskKey k = 0; k < static_cast<TaskKey>(nodes); ++k)
    for (TaskKey p : preds_[index(k)]) succs_[index(p)].push_back(k);

  store_.set_retention(0);  // single assignment
  blocks_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    blocks_[i] = store_.add_block(sizeof(std::uint64_t), 1);
    store_.set_producer(blocks_[i], 0, static_cast<TaskKey>(i));
  }
  board_.resize(nodes);
}

void RandomDagProblem::predecessors(TaskKey key, KeyList& out) const {
  out = preds_[index(key)];
}

void RandomDagProblem::successors(TaskKey key, KeyList& out) const {
  out = succs_[index(key)];
}

void RandomDagProblem::compute(TaskKey key, ComputeContext& ctx) {
  std::uint64_t acc = mix64(0xABCDULL ^ static_cast<std::uint64_t>(key));
  for (TaskKey p : preds_[index(key)]) {
    const std::uint64_t* v = ctx.read<std::uint64_t>(blocks_[index(p)], 0);
    acc = mix64(acc ^ *v);
  }
  for (int it = 0; it < spec_.work_iters; ++it) acc = mix64(acc);

  std::uint64_t* out = ctx.write<std::uint64_t>(blocks_[index(key)], 0);
  *out = acc;
  ctx.stage_result(board_.slot(index(key)), acc);
}

void RandomDagProblem::all_tasks(std::vector<TaskKey>& out) const {
  for (std::size_t i = 0; i < preds_.size(); ++i)
    out.push_back(static_cast<TaskKey>(i));
}

void RandomDagProblem::outputs(TaskKey key, OutputList& out) const {
  out.push_back({blocks_[index(key)], 0, 0});
}

void RandomDagProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t RandomDagProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  // Nodes are layer-ordered, so ascending key order is topological.
  std::vector<std::uint64_t> value(preds_.size());
  DigestBoard ref;
  ref.resize(preds_.size());
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    std::uint64_t acc = mix64(0xABCDULL ^ static_cast<std::uint64_t>(i));
    for (TaskKey p : preds_[i]) acc = mix64(acc ^ value[index(p)]);
    for (int it = 0; it < spec_.work_iters; ++it) acc = mix64(acc);
    value[i] = acc;
    ref.set(i, acc);
  }
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

}  // namespace ftdag
