#pragma once
// WavefrontGrid: shared block-grid topology for the dynamic-programming
// benchmarks (LCS, Smith-Waterman).
//
// Blocks form a W x W grid; block (bi, bj) depends on its up, left and
// diagonal neighbours — the standard blocked recurrence decomposition. For
// the paper's LCS configuration this yields exactly its Table I edge count:
// E = 3(W-1)^2 + 2(W-1) boundary edges.

#include <vector>

#include "graph/task_key.hpp"

namespace ftdag {

class WavefrontGrid {
 public:
  explicit WavefrontGrid(int w) : w_(w) {}

  int width() const { return w_; }

  TaskKey key(int bi, int bj) const {
    return static_cast<TaskKey>(bi) * w_ + bj;
  }
  int row(TaskKey k) const { return static_cast<int>(k / w_); }
  int col(TaskKey k) const { return static_cast<int>(k % w_); }

  TaskKey sink() const { return key(w_ - 1, w_ - 1); }

  // Ordered: up, left, diagonal.
  void predecessors(TaskKey k, KeyList& out) const {
    const int bi = row(k), bj = col(k);
    if (bi > 0) out.push_back(key(bi - 1, bj));
    if (bj > 0) out.push_back(key(bi, bj - 1));
    if (bi > 0 && bj > 0) out.push_back(key(bi - 1, bj - 1));
  }

  // Ordered: down, right, diagonal.
  void successors(TaskKey k, KeyList& out) const {
    const int bi = row(k), bj = col(k);
    if (bi + 1 < w_) out.push_back(key(bi + 1, bj));
    if (bj + 1 < w_) out.push_back(key(bi, bj + 1));
    if (bi + 1 < w_ && bj + 1 < w_) out.push_back(key(bi + 1, bj + 1));
  }

  void all_tasks(std::vector<TaskKey>& out) const {
    out.reserve(out.size() + static_cast<std::size_t>(w_) * w_);
    for (int bi = 0; bi < w_; ++bi)
      for (int bj = 0; bj < w_; ++bj) out.push_back(key(bi, bj));
  }

 private:
  int w_;
};

}  // namespace ftdag
