#include "apps/app_config.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace ftdag {

AppConfig default_config(const std::string& app) {
  // Paper (Table I)          ->  scaled default here
  // LCS      512K x 512K / 2K   8192 x 8192 / 128  (grid 64, T 4096)
  // SW         6K x 6K  / 128   6144 x 6144 / 128  (grid 48, T 2304)
  // FW         5K x 5K  / 128    640 x 640  / 40   (grid 16, T 4097)
  // LU        10K x 10K / 128   1024 x 1024 / 64   (grid 16, T ~1500)
  // Cholesky  10K x 10K / 128   1280 x 1280 / 64   (grid 20, T ~1540)
  if (app == "lcs") return {8192, 128, 42};
  if (app == "sw") return {6144, 128, 42};
  if (app == "fw") return {640, 40, 42};
  if (app == "lu") return {1024, 64, 42};
  if (app == "cholesky") return {1280, 64, 42};
  if (app == "rand") return {256, 16, 42};  // random-DAG property app
  FTDAG_ASSERT(false, "unknown app name");
  return {};
}

AppConfig scale_config(AppConfig cfg, double scale) {
  if (scale >= 1.0) return cfg;
  const std::int64_t grid = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::llround(cfg.grid() * scale)));
  cfg.n = grid * cfg.block;
  return cfg;
}

}  // namespace ftdag
