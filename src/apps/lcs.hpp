#pragma once
// LCS: longest common subsequence, blocked dynamic programming.
//
// The paper's single-assignment benchmark: every block's boundary is part of
// the computation's final output and cannot be reused (Section VI), so the
// store retains all versions (one per block).
//
// Block (bi, bj) computes the B x B region of the DP table
//   L[i][j] = a[i] == b[j] ? L[i-1][j-1] + 1 : max(L[i-1][j], L[i][j-1])
// from the boundary rows/columns of its up/left/diagonal neighbours, and
// publishes its own last row and last column (2B int32 values). The
// diagonal corner a consumer needs is the last element of the diagonal
// neighbour's row boundary.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/app_config.hpp"
#include "apps/digest_board.hpp"
#include "apps/wavefront_grid.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

// Computes one block's boundary. Null neighbour pointers mean matrix edge
// (all-zero border). `out` receives [last_row (B), last_col (B)].
void lcs_block_kernel(int b, const std::uint8_t* a_seg,
                      const std::uint8_t* b_seg, const std::int32_t* up_row,
                      const std::int32_t* left_col, std::int32_t diag_corner,
                      std::int32_t* out);

class LcsProblem final : public TaskGraphProblem {
 public:
  explicit LcsProblem(const AppConfig& cfg);

  std::string name() const override { return "lcs"; }
  TaskKey sink() const override { return grid_.sink(); }
  void predecessors(TaskKey key, KeyList& out) const override {
    grid_.predecessors(key, out);
  }
  void successors(TaskKey key, KeyList& out) const override {
    grid_.successors(key, out);
  }
  void compute(TaskKey key, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override {
    grid_.all_tasks(out);
  }
  void outputs(TaskKey key, OutputList& out) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

  // LCS length of the full inputs (bottom-right boundary cell); valid after
  // a run. Used by examples.
  std::int32_t lcs_length() const;

 private:
  std::size_t task_index(TaskKey key) const {
    return static_cast<std::size_t>(key);  // keys are dense: bi * W + bj
  }

  AppConfig cfg_;
  WavefrontGrid grid_;
  int b_;  // block edge
  std::vector<std::uint8_t> seq_a_, seq_b_;  // resilient app inputs
  std::vector<BlockId> block_ids_;           // per grid cell
  DigestBoard board_;
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
