#pragma once
// Factory for the paper's five benchmarks (plus the random-DAG test app).

#include <memory>
#include <string>
#include <vector>

#include "apps/app_config.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

// Names of the five paper benchmarks in the order they appear in Table I.
const std::vector<std::string>& paper_benchmarks();

// Builds the named problem with the given configuration. Aborts on unknown
// names (names are validated CLI input in the bench harness).
std::unique_ptr<TaskGraphProblem> make_app(const std::string& name,
                                           const AppConfig& cfg);

}  // namespace ftdag
