#include "apps/floyd_warshall.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

inline std::int32_t relax(std::int32_t d, std::int32_t a, std::int32_t b) {
  return std::min(d, a + b);
}

void copy_block(int b, const std::int32_t* in, std::int32_t* out) {
  std::memcpy(out, in, sizeof(std::int32_t) * b * b);
}

}  // namespace

void fw_diag_kernel(int b, std::int32_t* io) {
  for (int t = 0; t < b; ++t)
    for (int r = 0; r < b; ++r)
      for (int c = 0; c < b; ++c)
        io[r * b + c] = relax(io[r * b + c], io[r * b + t], io[t * b + c]);
}

void fw_row_kernel(int b, std::int32_t* io, const std::int32_t* diag) {
  // Row panel (k, j): paths enter through the diagonal block rows.
  for (int t = 0; t < b; ++t)
    for (int r = 0; r < b; ++r)
      for (int c = 0; c < b; ++c)
        io[r * b + c] = relax(io[r * b + c], diag[r * b + t], io[t * b + c]);
}

void fw_col_kernel(int b, std::int32_t* io, const std::int32_t* diag) {
  for (int t = 0; t < b; ++t)
    for (int r = 0; r < b; ++r)
      for (int c = 0; c < b; ++c)
        io[r * b + c] = relax(io[r * b + c], io[r * b + t], diag[t * b + c]);
}

void fw_inner_kernel(int b, const std::int32_t* in, std::int32_t* out,
                     const std::int32_t* colp, const std::int32_t* rowp) {
  for (int r = 0; r < b; ++r) {
    for (int c = 0; c < b; ++c) {
      std::int32_t best = in[r * b + c];
      for (int t = 0; t < b; ++t)
        best = std::min(best, colp[r * b + t] + rowp[t * b + c]);
      out[r * b + c] = best;
    }
  }
}

FloydWarshallProblem::FloydWarshallProblem(const AppConfig& cfg)
    : cfg_(cfg),
      w_(static_cast<int>(cfg.grid())),
      b_(static_cast<int>(cfg.block)) {
  FTDAG_ASSERT(cfg.n % cfg.block == 0, "n must be a multiple of block");
  sink_key_ = static_cast<TaskKey>(w_) * w_ * w_;

  // Dense random weight matrix: weight(u, v) in [1, 1000], zero diagonal.
  Xoshiro256 rng(cfg.seed);
  input_.resize(static_cast<std::size_t>(cfg.n) * cfg.n);
  for (int bi = 0; bi < w_; ++bi)
    for (int bj = 0; bj < w_; ++bj) {
      std::int32_t* block =
          input_.data() + (static_cast<std::size_t>(bi) * w_ + bj) * b_ * b_;
      for (int r = 0; r < b_; ++r)
        for (int c = 0; c < b_; ++c)
          block[r * b_ + c] =
              (bi == bj && r == c)
                  ? 0
                  : static_cast<std::int32_t>(1 + rng.below(1000));
    }

  // Two retained versions per block: the paper's FW memory scheme. The WAR
  // edges in predecessors() guard exactly this depth; single assignment (0)
  // is also valid (the guards become redundant but stay correct). Depth 1
  // would need one-stage guards and is rejected.
  const Version keep =
      cfg.retention < 0 ? 2 : static_cast<Version>(cfg.retention);
  FTDAG_ASSERT(keep == 2 || keep == 0, "FW supports retention 2 or 0");
  store_.set_retention(keep);
  block_ids_.resize(static_cast<std::size_t>(w_) * w_);
  for (int i = 0; i < w_; ++i)
    for (int j = 0; j < w_; ++j)
      block_ids_[static_cast<std::size_t>(i) * w_ + j] = store_.add_block(
          sizeof(std::int32_t) * b_ * b_, static_cast<Version>(w_));
  std::vector<TaskKey> keys;
  all_tasks(keys);
  for (TaskKey t : keys) {
    if (t == sink_key_) continue;
    int k, i, j;
    decode(t, k, i, j);
    store_.set_producer(blk(i, j), static_cast<Version>(k), t);
  }
  board_.resize(static_cast<std::size_t>(w_) * w_ * w_ + 1);
}

void FloydWarshallProblem::predecessors(TaskKey t, KeyList& out) const {
  if (t == sink_key_) {
    const int k = w_ - 1;
    for (int i = 0; i < w_; ++i)
      for (int j = 0; j < w_; ++j) out.push_back(key(k, i, j));
    return;
  }
  int k, i, j;
  decode(t, k, i, j);
  const bool on_row = (i == k), on_col = (j == k);
  if (on_row && on_col) {  // diagonal
    if (k > 0) out.push_back(key(k - 1, i, j));
  } else if (on_row || on_col) {  // panel
    out.push_back(key(k, k, k));
    if (k > 0) out.push_back(key(k - 1, i, j));
  } else {  // interior
    out.push_back(key(k, i, k));
    out.push_back(key(k, k, j));
    if (k > 0) out.push_back(key(k - 1, i, j));
  }

  // Anti-dependence (WAR) edges for the two-version scheme: this task
  // overwrites version k-2 of block (i, j); every stage-(k-2) reader of
  // that version must have finished first. Interior versions have only the
  // k-1 updater as reader (already a predecessor via the chain above), but
  // stage-(k-2) *panel and diagonal* versions were read by that whole
  // stage's panels/interiors. The model requires these edges ("all uses of
  // a data block causally precede a subsequent definition", Section II).
  if (k >= 2) {
    const int o = k - 2;  // stage whose version this write displaces
    if (i == o && j == o) {  // block was the stage-o diagonal
      for (int j2 = 0; j2 < w_; ++j2)
        if (j2 != o) out.push_back(key(o, o, j2));
      for (int i2 = 0; i2 < w_; ++i2)
        if (i2 != o) out.push_back(key(o, i2, o));
    } else if (i == o) {  // block was a stage-o row panel
      for (int i2 = 0; i2 < w_; ++i2)
        if (i2 != o) out.push_back(key(o, i2, j));
    } else if (j == o) {  // block was a stage-o column panel
      for (int j2 = 0; j2 < w_; ++j2)
        if (j2 != o) out.push_back(key(o, i, j2));
    }
  }
}

void FloydWarshallProblem::successors(TaskKey t, KeyList& out) const {
  if (t == sink_key_) return;
  int k, i, j;
  decode(t, k, i, j);
  const bool on_row = (i == k), on_col = (j == k);
  if (on_row && on_col) {
    for (int j2 = 0; j2 < w_; ++j2)
      if (j2 != k) out.push_back(key(k, k, j2));
    for (int i2 = 0; i2 < w_; ++i2)
      if (i2 != k) out.push_back(key(k, i2, k));
  } else if (on_row) {  // row panel (k, k, j): feeds interiors in column j
    for (int i2 = 0; i2 < w_; ++i2)
      if (i2 != k) out.push_back(key(k, i2, j));
  } else if (on_col) {  // col panel (k, i, k): feeds interiors in row i
    for (int j2 = 0; j2 < w_; ++j2)
      if (j2 != k) out.push_back(key(k, i, j2));
  }
  if (k + 1 < w_)
    out.push_back(key(k + 1, i, j));
  else
    out.push_back(sink_key_);

  // Mirrors of the WAR predecessors: a stage-k reader of a panel/diagonal
  // version gates the stage-(k+2) writer that will displace it.
  if (k + 2 < w_) {
    if (on_row && on_col) {
      // Diagonal reads only itself; its readers are the panels below.
    } else if (on_row || on_col) {
      out.push_back(key(k + 2, k, k));  // panels read the stage-k diagonal
    } else {
      out.push_back(key(k + 2, i, k));  // read col panel (i, k) @ k
      out.push_back(key(k + 2, k, j));  // read row panel (k, j) @ k
    }
  }
}

void FloydWarshallProblem::compute(TaskKey t, ComputeContext& ctx) {
  if (t == sink_key_) {
    // Aggregating control task; transitively depends on every stage-(W-1)
    // task but touches no versioned data.
    ctx.stage_result(board_.slot(board_.size() - 1), 1);
    return;
  }
  int k, i, j;
  decode(t, k, i, j);
  const BlockId id = blk(i, j);
  const Version ver = static_cast<Version>(k);

  const std::int32_t* in = nullptr;
  std::int32_t* out = nullptr;
  if (k == 0) {
    in = input_block(i, j);
    out = ctx.write<std::int32_t>(id, ver);
  } else {
    UpdateRef<std::int32_t> ref = ctx.update<std::int32_t>(id, ver - 1, ver);
    in = ref.in;
    out = ref.out;
  }

  const bool on_row = (i == k), on_col = (j == k);
  if (on_row && on_col) {
    if (out != in) copy_block(b_, in, out);
    fw_diag_kernel(b_, out);
  } else if (on_row) {
    const std::int32_t* diag = ctx.read<std::int32_t>(blk(k, k), ver);
    if (out != in) copy_block(b_, in, out);
    fw_row_kernel(b_, out, diag);
  } else if (on_col) {
    const std::int32_t* diag = ctx.read<std::int32_t>(blk(k, k), ver);
    if (out != in) copy_block(b_, in, out);
    fw_col_kernel(b_, out, diag);
  } else {
    const std::int32_t* colp = ctx.read<std::int32_t>(blk(i, k), ver);
    const std::int32_t* rowp = ctx.read<std::int32_t>(blk(k, j), ver);
    fw_inner_kernel(b_, in, out, colp, rowp);
  }
  ctx.stage_result(board_.slot(task_index(t)),
                   digest_array(out, static_cast<std::size_t>(b_) * b_));
}

bool FloydWarshallProblem::data_dependence(TaskKey consumer,
                                           TaskKey producer) const {
  if (consumer == sink_key_ || producer == sink_key_) return true;
  int ck, ci, cj, pk, pi, pj;
  decode(consumer, ck, ci, cj);
  decode(producer, pk, pi, pj);
  return pk != ck - 2;  // stage-(k-2) edges are the WAR guards
}

void FloydWarshallProblem::all_tasks(std::vector<TaskKey>& out) const {
  const std::size_t total = static_cast<std::size_t>(w_) * w_ * w_;
  out.reserve(out.size() + total + 1);
  for (std::size_t t = 0; t < total; ++t)
    out.push_back(static_cast<TaskKey>(t));
  out.push_back(sink_key_);
}

void FloydWarshallProblem::outputs(TaskKey t, OutputList& out) const {
  if (t == sink_key_) return;
  int k, i, j;
  decode(t, k, i, j);
  out.push_back({blk(i, j), static_cast<Version>(k),
                 static_cast<Version>(w_ - 1)});
}

void FloydWarshallProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t FloydWarshallProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  // Sequential blocked FW over a private copy, same kernels, same order the
  // stage dependences impose: diag, panels, interiors.
  std::vector<std::int32_t> d = input_;
  DigestBoard ref;
  ref.resize(board_.size());
  auto at = [&](int i, int j) {
    return d.data() + (static_cast<std::size_t>(i) * w_ + j) * b_ * b_;
  };
  auto dig = [&](int k, int i, int j) {
    ref.set(task_index(key(k, i, j)),
            digest_array(at(i, j), static_cast<std::size_t>(b_) * b_));
  };
  std::vector<std::int32_t> scratch(static_cast<std::size_t>(b_) * b_);
  for (int k = 0; k < w_; ++k) {
    fw_diag_kernel(b_, at(k, k));
    dig(k, k, k);
    for (int j = 0; j < w_; ++j)
      if (j != k) {
        fw_row_kernel(b_, at(k, j), at(k, k));
        dig(k, k, j);
      }
    for (int i = 0; i < w_; ++i)
      if (i != k) {
        fw_col_kernel(b_, at(i, k), at(k, k));
        dig(k, i, k);
      }
    for (int i = 0; i < w_; ++i) {
      if (i == k) continue;
      for (int j = 0; j < w_; ++j) {
        if (j == k) continue;
        copy_block(b_, at(i, j), scratch.data());
        fw_inner_kernel(b_, scratch.data(), at(i, j), at(i, k), at(k, j));
        dig(k, i, j);
      }
    }
  }
  ref.set(ref.size() - 1, 1);
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

}  // namespace ftdag
