#include "apps/app_registry.hpp"

#include "apps/cholesky.hpp"
#include "apps/floyd_warshall.hpp"
#include "apps/lcs.hpp"
#include "apps/lu.hpp"
#include "apps/random_dag.hpp"
#include "apps/smith_waterman.hpp"
#include "support/assert.hpp"

namespace ftdag {

const std::vector<std::string>& paper_benchmarks() {
  static const std::vector<std::string> names = {"lcs", "lu", "cholesky", "fw",
                                                 "sw"};
  return names;
}

std::unique_ptr<TaskGraphProblem> make_app(const std::string& name,
                                           const AppConfig& cfg) {
  if (name == "lcs") return std::make_unique<LcsProblem>(cfg);
  if (name == "sw") return std::make_unique<SmithWatermanProblem>(cfg);
  if (name == "fw") return std::make_unique<FloydWarshallProblem>(cfg);
  if (name == "lu") return std::make_unique<LuProblem>(cfg);
  if (name == "cholesky") return std::make_unique<CholeskyProblem>(cfg);
  if (name == "rand") {
    RandomDagSpec spec;
    spec.layers = static_cast<int>(cfg.grid());
    spec.width = static_cast<int>(cfg.grid());
    spec.seed = cfg.seed;
    return std::make_unique<RandomDagProblem>(spec);
  }
  FTDAG_ASSERT(false, "unknown app name");
  return nullptr;
}

}  // namespace ftdag
