#pragma once
// RandomChainProblem: seeded random task graph over *versioned, reused*
// data blocks — the property-test counterpart of RandomDagProblem for the
// memory-reuse machinery (aliased in-place updates, overwrite chains,
// anti-dependence guards).
//
// Structure: B blocks x V versions. Task (b, v) produces version v of block
// b by updating version v-1 in place (retention 1) and mixing in reads of
// a random set of *lower-numbered* blocks at version v-1. The paper's model
// requires every reader of a version to causally precede the writer that
// recycles its storage, so each task also carries anti-dependence
// predecessors: the stage-(v-1) readers of its block. Reading only
// lower-numbered blocks makes those intra-stage guard edges point from
// higher to lower block ids — acyclic by construction.
//
// Under v=last faults this produces the paper's full-depth re-execution
// chains on a randomized topology; under after-notify faults it produces
// the timing-dependent cascades of Table II.

#include <cstdint>
#include <string>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/digest_board.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

struct RandomChainSpec {
  int blocks = 12;       // chains
  int versions = 12;     // chain depth
  int reads = 2;         // random cross-block reads per task
  int work_iters = 100;  // hash iterations per task
  std::uint64_t seed = 5;
};

class RandomChainProblem final : public TaskGraphProblem {
 public:
  explicit RandomChainProblem(const RandomChainSpec& spec);

  std::string name() const override { return "randchain"; }
  TaskKey sink() const override { return sink_key_; }
  void predecessors(TaskKey key, KeyList& out) const override;
  void successors(TaskKey key, KeyList& out) const override;
  void compute(TaskKey key, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override;
  void outputs(TaskKey key, OutputList& out) const override;
  bool data_dependence(TaskKey consumer, TaskKey producer) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

 private:
  TaskKey key_of(int b, int v) const {
    return static_cast<TaskKey>(v) * spec_.blocks + b;
  }
  int block_of(TaskKey key) const {
    return static_cast<int>(key % spec_.blocks);
  }
  int version_of(TaskKey key) const {
    return static_cast<int>(key / spec_.blocks);
  }
  std::size_t index(TaskKey key) const { return static_cast<std::size_t>(key); }

  RandomChainSpec spec_;
  TaskKey sink_key_ = 0;
  std::vector<KeyList> reads_;       // per task: data-read predecessors
  std::vector<KeyList> preds_;       // full predecessor list (incl. guards)
  std::vector<KeyList> succs_;
  std::vector<BlockId> block_ids_;   // one versioned block per chain
  DigestBoard board_;
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
