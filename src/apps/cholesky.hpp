#pragma once
// Blocked right-looking Cholesky factorization (lower triangular, A = L L^T)
// of a symmetric positive-definite matrix.
//
// Task (k, i, j) with j <= i and k <= j produces version k of lower-triangle
// block (i, j):
//   k == i == j      POTRF: in-place Cholesky of the diagonal block
//   k == j <  i      TRSM:  L(i,k) = A(i,k) (L(k,k)^T)^-1
//   k <  j           GEMM/SYRK: A(i,j) -= L(i,k) L(j,k)^T
// Retention 1 (full in-place reuse), like LU.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/app_config.hpp"
#include "apps/digest_board.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

void cholesky_potrf_kernel(int b, double* out);
void cholesky_trsm_kernel(int b, const double* in, double* out,
                          const double* diag);
void cholesky_gemm_kernel(int b, const double* in, double* out,
                          const double* li, const double* lj);

class CholeskyProblem final : public TaskGraphProblem {
 public:
  explicit CholeskyProblem(const AppConfig& cfg);

  std::string name() const override { return "cholesky"; }
  TaskKey sink() const override { return key(w_ - 1, w_ - 1, w_ - 1); }
  void predecessors(TaskKey t, KeyList& out) const override;
  void successors(TaskKey t, KeyList& out) const override;
  void compute(TaskKey t, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override;
  void outputs(TaskKey t, OutputList& out) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

  // Final factor block (i, j), j <= i; valid after a fault-free run. For
  // validation and examples.
  const double* factor_block(int i, int j) const {
    return static_cast<const double*>(
        store_.read(blk(i, j), static_cast<Version>(j)));
  }
  const double* input_matrix_block(int i, int j) const {
    return input_block(i, j);
  }

 private:
  TaskKey key(int k, int i, int j) const {
    return (static_cast<TaskKey>(k) * w_ + i) * w_ + j;
  }
  void decode(TaskKey t, int& k, int& i, int& j) const {
    j = static_cast<int>(t % w_);
    i = static_cast<int>((t / w_) % w_);
    k = static_cast<int>(t / (static_cast<TaskKey>(w_) * w_));
  }
  std::size_t task_index(TaskKey t) const { return task_index_.at(t); }
  BlockId blk(int i, int j) const {  // j <= i (lower triangle)
    return block_ids_[static_cast<std::size_t>(i) * (i + 1) / 2 + j];
  }
  const double* input_block(int i, int j) const {
    return input_.data() + (static_cast<std::size_t>(i) * w_ + j) * b_ * b_;
  }

  AppConfig cfg_;
  int w_ = 0;
  int b_ = 0;
  std::vector<double> input_;  // full symmetric matrix, blocked layout
  std::vector<BlockId> block_ids_;
  std::vector<TaskKey> tasks_;
  std::unordered_map<TaskKey, std::size_t> task_index_;
  DigestBoard board_;
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
