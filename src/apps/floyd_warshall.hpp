#pragma once
// Blocked Floyd-Warshall all-pairs shortest paths.
//
// Task (k, i, j) produces version k of distance block (i, j) during stage k:
//   stage-k diag     (k,k,k): in-place FW of block (k,k)
//   stage-k row panel(k,k,j): block (k,j) updated through the diag block
//   stage-k col panel(k,i,k): block (i,k) updated through the diag block
//   stage-k interior (k,i,j): block (i,j) relaxed with col (i,k) / row (k,j)
// so T = W^3 tasks plus one aggregating sink (the paper's formulation also
// yields T = W^3; its Table I FW entry is 40^3 = 64000).
//
// Per the paper's Section VI, FW retains *two* versions per data block
// (retention 2, doubling memory) to damp the cascading recomputation that
// full reuse causes on recovery: stage k reads version k-1 while version k
// is written into the other slot.

#include <cstdint>
#include <string>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/app_config.hpp"
#include "apps/digest_board.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

inline constexpr std::int32_t kFwInf = 100'000'000;

// Kernels shared between the task graph and the sequential reference. `io`
// blocks are b x b row-major int32 distance blocks.
void fw_diag_kernel(int b, std::int32_t* io);
void fw_row_kernel(int b, std::int32_t* io, const std::int32_t* diag);
void fw_col_kernel(int b, std::int32_t* io, const std::int32_t* diag);
void fw_inner_kernel(int b, const std::int32_t* in, std::int32_t* out,
                     const std::int32_t* colp, const std::int32_t* rowp);

class FloydWarshallProblem final : public TaskGraphProblem {
 public:
  explicit FloydWarshallProblem(const AppConfig& cfg);

  std::string name() const override { return "fw"; }
  TaskKey sink() const override { return sink_key_; }
  void predecessors(TaskKey key, KeyList& out) const override;
  void successors(TaskKey key, KeyList& out) const override;
  void compute(TaskKey key, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override;
  void outputs(TaskKey key, OutputList& out) const override;
  // Stage-(k-2) predecessors are anti-dependences (the WAR edges guarding
  // two-version reuse); everything else is a flow dependence.
  bool data_dependence(TaskKey consumer, TaskKey producer) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

  // Final distance block (i, j) (version W-1); valid after a fault-free run
  // (throws DataBlockFault if the version is not resident). For validation
  // and examples.
  const std::int32_t* result_block(int i, int j) const {
    return static_cast<const std::int32_t*>(
        store_.read(blk(i, j), static_cast<Version>(w_ - 1)));
  }
  const std::int32_t* input_matrix_block(int i, int j) const {
    return input_block(i, j);
  }

 private:
  TaskKey key(int k, int i, int j) const {
    return (static_cast<TaskKey>(k) * w_ + i) * w_ + j;
  }
  void decode(TaskKey t, int& k, int& i, int& j) const {
    j = static_cast<int>(t % w_);
    i = static_cast<int>((t / w_) % w_);
    k = static_cast<int>(t / (static_cast<TaskKey>(w_) * w_));
  }
  std::size_t task_index(TaskKey t) const { return static_cast<std::size_t>(t); }
  BlockId blk(int i, int j) const {
    return block_ids_[static_cast<std::size_t>(i) * w_ + j];
  }
  const std::int32_t* input_block(int i, int j) const {
    return input_.data() +
           (static_cast<std::size_t>(i) * w_ + j) * b_ * b_;
  }

  AppConfig cfg_;
  int w_ = 0;  // blocks per side (also the number of stages)
  int b_ = 0;  // block edge
  TaskKey sink_key_ = 0;
  std::vector<std::int32_t> input_;  // blocked input matrix (resilient)
  std::vector<BlockId> block_ids_;
  DigestBoard board_;  // W^3 task digests + 1 sink slot
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
