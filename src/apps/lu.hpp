#pragma once
// Blocked right-looking LU decomposition without pivoting (the input is made
// diagonally dominant, so pivoting is unnecessary — the paper's dense
// kernels are likewise pivot-free task graphs).
//
// Task (k, i, j), k <= min(i, j), produces version k of block (i, j):
//   k == i == j      diagonal factorization (in-place LU of the block)
//   k == j <  i      column panel: L(i,k) = A(i,k) U(k,k)^-1
//   k == i <  j      row panel:    U(k,j) = L(k,k)^-1 A(k,j)
//   k <  min(i, j)   trailing update: A(i,j) -= L(i,k) U(k,j)
// Retention 1: version k of a block overwrites version k-1 in place, which
// is what makes v=last failures trigger the long re-execution chains of the
// paper's Table II.

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/app_config.hpp"
#include "apps/digest_board.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

// Kernels shared with the sequential reference. Blocks are b x b row-major
// doubles. `in` and `out` may alias (all kernels are element-order safe).
void lu_diag_kernel(int b, double* out);
void lu_col_kernel(int b, const double* in, double* out, const double* diag);
void lu_row_kernel(int b, const double* in, double* out, const double* diag);
void lu_trailing_kernel(int b, const double* in, double* out, const double* l,
                        const double* u);

class LuProblem final : public TaskGraphProblem {
 public:
  explicit LuProblem(const AppConfig& cfg);

  std::string name() const override { return "lu"; }
  TaskKey sink() const override { return key(w_ - 1, w_ - 1, w_ - 1); }
  void predecessors(TaskKey t, KeyList& out) const override;
  void successors(TaskKey t, KeyList& out) const override;
  void compute(TaskKey t, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override;
  void outputs(TaskKey t, OutputList& out) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

  // Final factor block (i, j) (L below the diagonal, U on/above, unit-L
  // implicit); valid after a fault-free run. For validation and examples.
  const double* factor_block(int i, int j) const {
    return static_cast<const double*>(
        store_.read(blk(i, j), static_cast<Version>(std::min(i, j))));
  }
  const double* input_matrix_block(int i, int j) const {
    return input_block(i, j);
  }

 private:
  TaskKey key(int k, int i, int j) const {
    return (static_cast<TaskKey>(k) * w_ + i) * w_ + j;
  }
  void decode(TaskKey t, int& k, int& i, int& j) const {
    j = static_cast<int>(t % w_);
    i = static_cast<int>((t / w_) % w_);
    k = static_cast<int>(t / (static_cast<TaskKey>(w_) * w_));
  }
  std::size_t task_index(TaskKey t) const { return task_index_.at(t); }
  BlockId blk(int i, int j) const {
    return block_ids_[static_cast<std::size_t>(i) * w_ + j];
  }
  const double* input_block(int i, int j) const {
    return input_.data() + (static_cast<std::size_t>(i) * w_ + j) * b_ * b_;
  }

  AppConfig cfg_;
  int w_ = 0;
  int b_ = 0;
  std::vector<double> input_;  // blocked input matrix (resilient)
  std::vector<BlockId> block_ids_;
  std::vector<TaskKey> tasks_;  // deterministic enumeration
  std::unordered_map<TaskKey, std::size_t> task_index_;
  DigestBoard board_;
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
