#pragma once
// Benchmark configuration: problem size N, block size B, input seed.
//
// The paper's Table I configurations (10K-class matrices, 128-blocks,
// 64K-174K tasks) target a 48-core machine; the defaults here are scaled so
// each benchmark runs in seconds on one core while keeping the same task
// graph *shapes* (grid/wavefront/stage structure, version-chain depths).
// Everything is overridable from the bench CLIs.

#include <cstdint>
#include <string>

namespace ftdag {

struct AppConfig {
  std::int64_t n = 0;      // matrix dimension / sequence length
  std::int64_t block = 0;  // block edge length
  std::uint64_t seed = 42; // input-data seed

  // Memory strategy override (Section VI evaluated both): -1 keeps the
  // app's default (reuse: SW/LU/Cholesky retention 1, FW retention 2, LCS
  // single assignment); 0 forces single assignment (every version kept).
  // Each app validates which depths its dependence structure supports.
  std::int64_t retention = -1;

  std::int64_t grid() const { return n / block; }  // blocks per side
};

// Default configuration per app name (lcs, sw, fw, lu, cholesky).
AppConfig default_config(const std::string& app);

// Proportionally shrinks a configuration (scale <= 1 shrinks the grid while
// keeping the block size), for fast test/CI runs.
AppConfig scale_config(AppConfig cfg, double scale);

}  // namespace ftdag
