#pragma once
// DigestBoard: app-owned, per-task result digests.
//
// With memory reuse, most intermediate block versions do not survive to the
// end of the run (and a recovery chain may even displace a block's final
// version after all its consumers finished, which the paper's model
// permits). Applications therefore capture a digest of each task's output
// *during compute*, staged through ComputeContext so it is only published
// when the compute commits. Digests are a pure function of task inputs, so
// re-executions rewrite identical values. The board lives in application
// memory, which the paper's fault model assumes resilient.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "check/sync_shim.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

class DigestBoard {
 public:
  void resize(std::size_t n) {
    slots_ = std::make_unique<Atomic<std::uint64_t>[]>(n);
    size_ = n;
    reset();
  }

  std::size_t size() const { return size_; }

  Atomic<std::uint64_t>* slot(std::size_t i) { return &slots_[i]; }

  std::uint64_t get(std::size_t i) const {
    return slots_[i].load(std::memory_order_relaxed);
  }

  void set(std::size_t i, std::uint64_t v) {
    slots_[i].store(v, std::memory_order_relaxed);
  }

  // Order-sensitive combination over all slots.
  std::uint64_t combined() const {
    std::uint64_t acc = 0x2545F4914F6CDD1DULL;
    for (std::size_t i = 0; i < size_; ++i)
      acc = mix64(acc ^ (get(i) + 0x9e3779b97f4a7c15ULL + i));
    return acc;
  }

  void reset() {
    for (std::size_t i = 0; i < size_; ++i)
      slots_[i].store(0, std::memory_order_relaxed);
  }

 private:
  // Concurrency contract: lock-free by design. Slots are written through
  // ComputeContext::stage_result at commit time only; relaxed order suffices
  // because a slot value is a pure function of task inputs (re-executions
  // rewrite identical bytes) and combined()/get() run post-quiescence.
  // resize()/reset() are setup-time, single-threaded.
  std::unique_ptr<Atomic<std::uint64_t>[]> slots_;
  std::size_t size_ = 0;
};

// Digest of a typed array: mixes the raw bit patterns, so results must be
// bitwise deterministic (all app kernels use a fixed operation order).
template <typename T>
std::uint64_t digest_array(const T* data, std::size_t count) {
  std::uint64_t acc = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &data[i], sizeof(T) < 8 ? sizeof(T) : 8);
    acc = mix64(acc ^ bits);
  }
  return acc;
}

}  // namespace ftdag
