#include "apps/random_chain.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

RandomChainProblem::RandomChainProblem(const RandomChainSpec& spec)
    : spec_(spec) {
  FTDAG_ASSERT(spec.blocks >= 1 && spec.versions >= 1, "degenerate spec");
  const int B = spec.blocks, V = spec.versions;
  const std::size_t tasks = static_cast<std::size_t>(B) * V;
  sink_key_ = static_cast<TaskKey>(tasks);
  reads_.resize(tasks);
  preds_.resize(tasks + 1);
  succs_.resize(tasks + 1);

  // Random cross-block reads: task (b, v) reads lower-numbered blocks at
  // version v-1 (the ordering that keeps the intra-stage guards acyclic).
  Xoshiro256 rng(spec.seed);
  for (int v = 1; v < V; ++v) {
    for (int b = 0; b < B; ++b) {
      KeyList& r = reads_[index(key_of(b, v))];
      for (int e = 0; e < spec.reads && b > 0; ++e) {
        const TaskKey cand = key_of(static_cast<int>(rng.below(b)), v - 1);
        if (!r.contains(cand)) r.push_back(cand);
      }
    }
  }

  // Flow predecessors: the previous version of the own block + the reads.
  for (int v = 0; v < V; ++v) {
    for (int b = 0; b < B; ++b) {
      KeyList& p = preds_[index(key_of(b, v))];
      if (v > 0) p.push_back(key_of(b, v - 1));
      for (TaskKey r : reads_[index(key_of(b, v))]) p.push_back(r);
    }
  }
  // Guard (anti-dependence) predecessors: writer (b, v) recycles the slot
  // of (b, v-1), so every stage-v reader of (b, v-1) must come first.
  for (int v = 1; v < V; ++v) {
    for (int b2 = 0; b2 < B; ++b2) {
      for (TaskKey r : reads_[index(key_of(b2, v))]) {
        const int b = block_of(r);  // r = (b, v-1)
        KeyList& p = preds_[index(key_of(b, v))];
        if (!p.contains(key_of(b2, v))) p.push_back(key_of(b2, v));
      }
    }
  }
  for (int b = 0; b < B; ++b)
    preds_[index(sink_key_)].push_back(key_of(b, V - 1));

  for (std::size_t t = 0; t <= tasks; ++t)
    for (TaskKey p : preds_[t]) succs_[index(p)].push_back(static_cast<TaskKey>(t));

  store_.set_retention(1);
  block_ids_.resize(B);
  for (int b = 0; b < B; ++b) {
    block_ids_[b] =
        store_.add_block(sizeof(std::uint64_t), static_cast<Version>(V));
    for (int v = 0; v < V; ++v)
      store_.set_producer(block_ids_[b], static_cast<Version>(v),
                          key_of(b, v));
  }
  board_.resize(tasks + 1);
}

void RandomChainProblem::predecessors(TaskKey key, KeyList& out) const {
  out = preds_[index(key)];
}

void RandomChainProblem::successors(TaskKey key, KeyList& out) const {
  out = succs_[index(key)];
}

bool RandomChainProblem::data_dependence(TaskKey consumer,
                                         TaskKey producer) const {
  if (consumer == sink_key_) return true;
  // Same-stage predecessors are the anti-dependence guards.
  return version_of(consumer) != version_of(producer);
}

void RandomChainProblem::compute(TaskKey key, ComputeContext& ctx) {
  if (key == sink_key_) {
    ctx.stage_result(board_.slot(board_.size() - 1), 1);
    return;
  }
  const int b = block_of(key), v = version_of(key);
  std::uint64_t acc = mix64(spec_.seed ^ static_cast<std::uint64_t>(key));

  std::uint64_t* out;
  if (v == 0) {
    out = ctx.write<std::uint64_t>(block_ids_[b], 0);
  } else {
    UpdateRef<std::uint64_t> ref = ctx.update<std::uint64_t>(
        block_ids_[b], static_cast<Version>(v - 1), static_cast<Version>(v));
    acc = mix64(acc ^ *ref.in);
    for (TaskKey r : reads_[index(key)]) {
      const std::uint64_t* val = ctx.read<std::uint64_t>(
          block_ids_[block_of(r)], static_cast<Version>(v - 1));
      acc = mix64(acc ^ *val);
    }
    out = ref.out;
  }
  for (int it = 0; it < spec_.work_iters; ++it) acc = mix64(acc);
  *out = acc;
  ctx.stage_result(board_.slot(index(key)), acc);
}

void RandomChainProblem::all_tasks(std::vector<TaskKey>& out) const {
  for (std::size_t t = 0; t < preds_.size(); ++t)
    out.push_back(static_cast<TaskKey>(t));
}

void RandomChainProblem::outputs(TaskKey key, OutputList& out) const {
  if (key == sink_key_) return;
  out.push_back({block_ids_[block_of(key)],
                 static_cast<Version>(version_of(key)),
                 static_cast<Version>(spec_.versions - 1)});
}

void RandomChainProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t RandomChainProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  const int B = spec_.blocks, V = spec_.versions;
  std::vector<std::uint64_t> prev(B), cur(B);
  DigestBoard ref;
  ref.resize(board_.size());
  for (int v = 0; v < V; ++v) {
    for (int b = 0; b < B; ++b) {
      const TaskKey key = key_of(b, v);
      std::uint64_t acc = mix64(spec_.seed ^ static_cast<std::uint64_t>(key));
      if (v > 0) {
        acc = mix64(acc ^ prev[b]);
        for (TaskKey r : reads_[index(key)])
          acc = mix64(acc ^ prev[block_of(r)]);
      }
      for (int it = 0; it < spec_.work_iters; ++it) acc = mix64(acc);
      cur[b] = acc;
      ref.set(index(key), acc);
    }
    prev = cur;
  }
  ref.set(ref.size() - 1, 1);
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

}  // namespace ftdag
