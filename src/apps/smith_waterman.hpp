#pragma once
// Smith-Waterman local alignment, blocked dynamic programming with the
// paper's *memory reuse* strategy.
//
//   H[i][j] = max(0, H[i-1][j-1] + score(a_i, b_j),
//                    H[i-1][j] - gap, H[i][j-1] - gap)
//
// Block (bi, bj) publishes its boundary (last row, last column, running
// maximum). Reuse scheme: a block's boundary is dead once its three
// consumers (down/right/diagonal) finish, all of which are ancestors of
// block (bi+2, bj+2) — so storage is recycled along diagonal chains with
// stride two. Chain id = (bi - bj, min(bi,bj) mod 2); version along the
// chain = min(bi,bj) / 2; retention 1. This creates the deep version chains
// whose failure behaviour the paper reports for SW in Table II (v=last
// faults re-execute thousands of tasks).
//
// The running maximum threaded through every block makes the sink's
// boundary carry the global best alignment score.

#include <cstdint>
#include <string>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/app_config.hpp"
#include "apps/digest_board.hpp"
#include "apps/wavefront_grid.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

// Boundary layout: [last_row (B), last_col (B), running_max (1)].
// Null neighbour pointers mean matrix edge (zero border, zero max).
void sw_block_kernel(int b, const std::uint8_t* a_seg,
                     const std::uint8_t* b_seg, const std::int32_t* up,
                     const std::int32_t* left, const std::int32_t* diag,
                     std::int32_t* out);

class SmithWatermanProblem final : public TaskGraphProblem {
 public:
  explicit SmithWatermanProblem(const AppConfig& cfg);

  std::string name() const override { return "sw"; }
  TaskKey sink() const override { return grid_.sink(); }
  void predecessors(TaskKey key, KeyList& out) const override {
    grid_.predecessors(key, out);
  }
  void successors(TaskKey key, KeyList& out) const override {
    grid_.successors(key, out);
  }
  void compute(TaskKey key, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override {
    grid_.all_tasks(out);
  }
  void outputs(TaskKey key, OutputList& out) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

  // Global best local-alignment score; valid after a run.
  std::int32_t best_score() const {
    return static_cast<std::int32_t>(board_.get(board_.size() - 1));
  }

 private:
  std::size_t task_index(TaskKey key) const {
    return static_cast<std::size_t>(key);
  }
  // Chain-relative placement of a block's boundary.
  ProducedVersion placement(int bi, int bj) const;

  AppConfig cfg_;
  WavefrontGrid grid_;
  int b_;
  std::size_t bnd_;  // boundary length in int32 (2B + 1)
  std::vector<std::uint8_t> seq_a_, seq_b_;
  std::vector<BlockId> chain_block_;  // per chain index
  DigestBoard board_;                 // T task digests + 1 best-score slot
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
