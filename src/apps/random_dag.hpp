#pragma once
// RandomDagProblem: seeded random layered DAG for property testing.
//
// L layers of W nodes; node (l, p) always depends on (l-1, p) (so every node
// is an ancestor of the sink) plus up to `extra_degree` random nodes of the
// previous layer. An extra sink node depends on the whole last layer. Values
// are 64-bit hashes mixed from predecessor values, so any mis-notification,
// lost recovery or premature execution changes the final checksum. Blocks
// are single assignment (one per node): the reuse/overwrite chains are
// exercised by the five paper benchmarks; this app stress-tests the recovery
// protocol itself under arbitrary fault storms on irregular topologies.

#include <cstdint>
#include <string>
#include <vector>

#include "check/sync_shim.hpp"
#include "apps/digest_board.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

struct RandomDagSpec {
  int layers = 16;
  int width = 16;
  int extra_degree = 3;   // random extra predecessors per node
  int work_iters = 200;   // hash iterations per task (work knob)
  std::uint64_t seed = 7;
};

class RandomDagProblem final : public TaskGraphProblem {
 public:
  explicit RandomDagProblem(const RandomDagSpec& spec);

  std::string name() const override { return "rand"; }
  TaskKey sink() const override { return sink_key_; }
  void predecessors(TaskKey key, KeyList& out) const override;
  void successors(TaskKey key, KeyList& out) const override;
  void compute(TaskKey key, ComputeContext& ctx) override;
  void all_tasks(std::vector<TaskKey>& out) const override;
  void outputs(TaskKey key, OutputList& out) const override;
  void reset_data() override;
  std::uint64_t result_checksum() const override { return board_.combined(); }
  // Durable restart: the digest board is the resilient result range the
  // persistence layer journals and re-applies (src/persist/).
  Atomic<std::uint64_t>* result_slots() override {
    return board_.size() > 0 ? board_.slot(0) : nullptr;
  }
  std::size_t result_slot_count() const override { return board_.size(); }
  std::uint64_t reference_checksum() override;

  std::size_t node_count() const { return preds_.size(); }

 private:
  std::size_t index(TaskKey key) const { return static_cast<std::size_t>(key); }

  RandomDagSpec spec_;
  TaskKey sink_key_ = 0;
  std::vector<KeyList> preds_;  // adjacency, fixed at construction
  std::vector<KeyList> succs_;
  std::vector<BlockId> blocks_;  // one single-assignment block per node
  DigestBoard board_;
  std::uint64_t reference_ = 0;
  bool reference_cached_ = false;
};

}  // namespace ftdag
