#include "apps/lcs.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

void lcs_block_kernel(int b, const std::uint8_t* a_seg,
                      const std::uint8_t* b_seg, const std::int32_t* up_row,
                      const std::int32_t* left_col, std::int32_t diag_corner,
                      std::int32_t* out) {
  // Rolling two-row DP. prev/cur have b+1 entries; index 0 is the left
  // border cell of the current row.
  std::vector<std::int32_t> prev(b + 1), cur(b + 1);
  prev[0] = diag_corner;
  for (int j = 0; j < b; ++j) prev[j + 1] = up_row ? up_row[j] : 0;

  std::int32_t* out_row = out;      // last row, filled after the sweep
  std::int32_t* out_col = out + b;  // last column, collected per row

  for (int i = 0; i < b; ++i) {
    cur[0] = left_col ? left_col[i] : 0;
    for (int j = 0; j < b; ++j) {
      cur[j + 1] = (a_seg[i] == b_seg[j])
                       ? prev[j] + 1
                       : std::max(prev[j + 1], cur[j]);
    }
    out_col[i] = cur[b];
    std::swap(prev, cur);
  }
  for (int j = 0; j < b; ++j) out_row[j] = prev[j + 1];
}

LcsProblem::LcsProblem(const AppConfig& cfg)
    : cfg_(cfg), grid_(static_cast<int>(cfg.grid())), b_(static_cast<int>(cfg.block)) {
  FTDAG_ASSERT(cfg.n % cfg.block == 0, "n must be a multiple of block");
  const int w = grid_.width();

  // Random 4-letter inputs (DNA-like alphabet keeps matches frequent).
  Xoshiro256 rng(cfg.seed);
  seq_a_.resize(cfg.n);
  seq_b_.resize(cfg.n);
  for (auto& c : seq_a_) c = static_cast<std::uint8_t>(rng.below(4));
  for (auto& c : seq_b_) c = static_cast<std::uint8_t>(rng.below(4));

  // Single assignment: retain every version (exactly one per block). The
  // paper notes memory reuse is not applicable to LCS - each task's output
  // is part of the final output.
  FTDAG_ASSERT(cfg.retention <= 0, "LCS is inherently single assignment");
  store_.set_retention(0);
  block_ids_.resize(static_cast<std::size_t>(w) * w);
  for (int bi = 0; bi < w; ++bi) {
    for (int bj = 0; bj < w; ++bj) {
      const TaskKey key = grid_.key(bi, bj);
      const BlockId id =
          store_.add_block(sizeof(std::int32_t) * 2 * b_, /*versions=*/1);
      block_ids_[task_index(key)] = id;
      store_.set_producer(id, 0, key);
    }
  }
  board_.resize(static_cast<std::size_t>(w) * w);
}

void LcsProblem::compute(TaskKey key, ComputeContext& ctx) {
  const int bi = grid_.row(key), bj = grid_.col(key);

  const std::int32_t* up_row = nullptr;
  const std::int32_t* left_col = nullptr;
  std::int32_t corner = 0;
  if (bi > 0)
    up_row = ctx.read<std::int32_t>(block_ids_[task_index(grid_.key(bi - 1, bj))], 0);
  if (bj > 0)
    left_col =
        ctx.read<std::int32_t>(block_ids_[task_index(grid_.key(bi, bj - 1))], 0) +
        b_;
  if (bi > 0 && bj > 0) {
    const std::int32_t* diag = ctx.read<std::int32_t>(
        block_ids_[task_index(grid_.key(bi - 1, bj - 1))], 0);
    corner = diag[b_ - 1];  // last element of the diagonal's row boundary
  }

  std::int32_t* out = ctx.write<std::int32_t>(block_ids_[task_index(key)], 0);
  lcs_block_kernel(b_, seq_a_.data() + static_cast<std::size_t>(bi) * b_,
                   seq_b_.data() + static_cast<std::size_t>(bj) * b_, up_row,
                   left_col, corner, out);
  ctx.stage_result(board_.slot(task_index(key)),
                   digest_array(out, static_cast<std::size_t>(2) * b_));
}

void LcsProblem::outputs(TaskKey key, OutputList& out) const {
  out.push_back({block_ids_[task_index(key)], 0, 0});
}

void LcsProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t LcsProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  const int w = grid_.width();
  // Sequential execution of the same kernels in row-major (topological)
  // order against plain full-boundary storage.
  std::vector<std::int32_t> bounds(static_cast<std::size_t>(w) * w * 2 * b_);
  DigestBoard ref;
  ref.resize(static_cast<std::size_t>(w) * w);
  for (int bi = 0; bi < w; ++bi) {
    for (int bj = 0; bj < w; ++bj) {
      const std::size_t idx = task_index(grid_.key(bi, bj));
      std::int32_t* out = bounds.data() + idx * 2 * b_;
      const std::int32_t* up =
          bi > 0 ? bounds.data() + task_index(grid_.key(bi - 1, bj)) * 2 * b_
                 : nullptr;
      const std::int32_t* left =
          bj > 0
              ? bounds.data() + task_index(grid_.key(bi, bj - 1)) * 2 * b_ + b_
              : nullptr;
      std::int32_t corner = 0;
      if (bi > 0 && bj > 0)
        corner = bounds[task_index(grid_.key(bi - 1, bj - 1)) * 2 * b_ + b_ - 1];
      lcs_block_kernel(b_, seq_a_.data() + static_cast<std::size_t>(bi) * b_,
                       seq_b_.data() + static_cast<std::size_t>(bj) * b_, up,
                       left, corner, out);
      ref.set(idx, digest_array(out, static_cast<std::size_t>(2) * b_));
    }
  }
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

std::int32_t LcsProblem::lcs_length() const {
  const BlockId last = block_ids_[task_index(grid_.sink())];
  const auto* data = static_cast<const std::int32_t*>(store_.read(last, 0));
  return data[b_ - 1];  // bottom-right cell = last element of the row boundary
}

}  // namespace ftdag
