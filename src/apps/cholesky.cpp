#include "apps/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

void cholesky_potrf_kernel(int b, double* out) {
  for (int t = 0; t < b; ++t) {
    out[t * b + t] = std::sqrt(out[t * b + t]);
    const double d = out[t * b + t];
    for (int r = t + 1; r < b; ++r) out[r * b + t] /= d;
    for (int c = t + 1; c < b; ++c) {
      const double l = out[c * b + t];
      for (int r = c; r < b; ++r) out[r * b + c] -= out[r * b + t] * l;
    }
  }
}

void cholesky_trsm_kernel(int b, const double* in, double* out,
                          const double* diag) {
  // out = in * (L^T)^-1 with L = lower factor in `diag`. Column order:
  // column t reads only already-written columns < t, so in/out may alias.
  for (int t = 0; t < b; ++t) {
    for (int r = 0; r < b; ++r) {
      double v = in[r * b + t];
      for (int s = 0; s < t; ++s) v -= out[r * b + s] * diag[t * b + s];
      out[r * b + t] = v / diag[t * b + t];
    }
  }
}

void cholesky_gemm_kernel(int b, const double* in, double* out,
                          const double* li, const double* lj) {
  for (int r = 0; r < b; ++r) {
    for (int c = 0; c < b; ++c) {
      double v = in[r * b + c];
      for (int t = 0; t < b; ++t) v -= li[r * b + t] * lj[c * b + t];
      out[r * b + c] = v;
    }
  }
}

CholeskyProblem::CholeskyProblem(const AppConfig& cfg)
    : cfg_(cfg),
      w_(static_cast<int>(cfg.grid())),
      b_(static_cast<int>(cfg.block)) {
  FTDAG_ASSERT(cfg.n % cfg.block == 0, "n must be a multiple of block");

  // Symmetric diagonally dominant matrix: positive definite.
  Xoshiro256 rng(cfg.seed);
  const std::size_t n = static_cast<std::size_t>(cfg.n);
  input_.resize(n * n);
  auto cell = [&](std::size_t u, std::size_t v) -> double& {
    // Blocked layout: block (u/b, v/b), element (u%b, v%b).
    const std::size_t bi = u / b_, bj = v / b_;
    return input_[(bi * w_ + bj) * b_ * b_ + (u % b_) * b_ + (v % b_)];
  };
  for (std::size_t u = 0; u < n; ++u) {
    cell(u, u) = static_cast<double>(cfg.n) + 1.0 + rng.uniform01();
    for (std::size_t v = u + 1; v < n; ++v) {
      const double val = rng.uniform01() * 2.0 - 1.0;
      cell(u, v) = val;
      cell(v, u) = val;
    }
  }

  // Same retention flexibility as LU.
  const Version keep =
      cfg.retention < 0 ? 1 : static_cast<Version>(cfg.retention);
  FTDAG_ASSERT(keep <= 2, "Cholesky supports retention 0, 1 or 2");
  store_.set_retention(keep);
  block_ids_.resize(static_cast<std::size_t>(w_) * (w_ + 1) / 2);
  for (int i = 0; i < w_; ++i)
    for (int j = 0; j <= i; ++j)
      block_ids_[static_cast<std::size_t>(i) * (i + 1) / 2 + j] =
          store_.add_block(sizeof(double) * b_ * b_,
                           static_cast<Version>(j + 1));

  all_tasks(tasks_);
  task_index_.reserve(tasks_.size());
  for (std::size_t idx = 0; idx < tasks_.size(); ++idx) {
    task_index_.emplace(tasks_[idx], idx);
    int k, i, j;
    decode(tasks_[idx], k, i, j);
    store_.set_producer(blk(i, j), static_cast<Version>(k), tasks_[idx]);
  }
  board_.resize(tasks_.size());
}

void CholeskyProblem::predecessors(TaskKey t, KeyList& out) const {
  int k, i, j;
  decode(t, k, i, j);
  if (k < j) {  // GEMM / SYRK
    out.push_back(key(k, i, k));
    if (j != i) out.push_back(key(k, j, k));
    if (k > 0) out.push_back(key(k - 1, i, j));
    return;
  }
  if (i == j) {  // POTRF
    if (k > 0) out.push_back(key(k - 1, k, k));
  } else {  // TRSM
    out.push_back(key(k, k, k));
    if (k > 0) out.push_back(key(k - 1, i, k));
  }
}

void CholeskyProblem::successors(TaskKey t, KeyList& out) const {
  int k, i, j;
  decode(t, k, i, j);
  if (k < j) {
    out.push_back(key(k + 1, i, j));
    return;
  }
  if (i == j) {  // POTRF(k) feeds the step-k TRSMs
    for (int i2 = k + 1; i2 < w_; ++i2) out.push_back(key(k, i2, k));
  } else {  // TRSM L(i,k) feeds updates in row i and column i
    for (int j2 = k + 1; j2 <= i; ++j2) out.push_back(key(k, i, j2));
    for (int i2 = i + 1; i2 < w_; ++i2) out.push_back(key(k, i2, i));
  }
}

void CholeskyProblem::compute(TaskKey t, ComputeContext& ctx) {
  int k, i, j;
  decode(t, k, i, j);
  const BlockId id = blk(i, j);
  const Version ver = static_cast<Version>(k);

  const double* in;
  double* out;
  if (k == 0) {
    in = input_block(i, j);
    out = ctx.write<double>(id, 0);
  } else {
    UpdateRef<double> ref = ctx.update<double>(id, ver - 1, ver);
    in = ref.in;
    out = ref.out;
  }

  if (k < j) {
    const double* li = ctx.read<double>(blk(i, k), static_cast<Version>(k));
    const double* lj =
        j == i ? li : ctx.read<double>(blk(j, k), static_cast<Version>(k));
    cholesky_gemm_kernel(b_, in, out, li, lj);
  } else if (i == j) {
    if (out != in) std::copy(in, in + static_cast<std::size_t>(b_) * b_, out);
    cholesky_potrf_kernel(b_, out);
  } else {
    const double* diag = ctx.read<double>(blk(k, k), static_cast<Version>(k));
    cholesky_trsm_kernel(b_, in, out, diag);
  }
  ctx.stage_result(board_.slot(task_index(t)),
                   digest_array(out, static_cast<std::size_t>(b_) * b_));
}

void CholeskyProblem::all_tasks(std::vector<TaskKey>& out) const {
  for (int k = 0; k < w_; ++k)
    for (int i = k; i < w_; ++i)
      for (int j = k; j <= i; ++j) out.push_back(key(k, i, j));
}

void CholeskyProblem::outputs(TaskKey t, OutputList& out) const {
  int k, i, j;
  decode(t, k, i, j);
  out.push_back({blk(i, j), static_cast<Version>(k), static_cast<Version>(j)});
}

void CholeskyProblem::reset_data() {
  store_.reset_states();
  board_.reset();
}

std::uint64_t CholeskyProblem::reference_checksum() {
  if (reference_cached_) return reference_;
  // Sequential blocked Cholesky on a copy of the lower-triangle blocks.
  std::vector<double> d(block_ids_.size() * static_cast<std::size_t>(b_) * b_);
  auto at = [&](int i, int j) {
    return d.data() +
           (static_cast<std::size_t>(i) * (i + 1) / 2 + j) * b_ * b_;
  };
  for (int i = 0; i < w_; ++i)
    for (int j = 0; j <= i; ++j)
      std::copy(input_block(i, j),
                input_block(i, j) + static_cast<std::size_t>(b_) * b_,
                at(i, j));

  DigestBoard ref;
  ref.resize(board_.size());
  auto dig = [&](int k, int i, int j) {
    ref.set(task_index(key(k, i, j)),
            digest_array(at(i, j), static_cast<std::size_t>(b_) * b_));
  };
  for (int k = 0; k < w_; ++k) {
    cholesky_potrf_kernel(b_, at(k, k));
    dig(k, k, k);
    for (int i = k + 1; i < w_; ++i) {
      cholesky_trsm_kernel(b_, at(i, k), at(i, k), at(k, k));
      dig(k, i, k);
    }
    for (int i = k + 1; i < w_; ++i)
      for (int j = k + 1; j <= i; ++j) {
        cholesky_gemm_kernel(b_, at(i, j), at(i, j), at(i, k), at(j, k));
        dig(k, i, j);
      }
  }
  reference_ = ref.combined();
  reference_cached_ = true;
  return reference_;
}

}  // namespace ftdag
