#include "check/sync_shim.hpp"
#include "trace/trace.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/table.hpp"

namespace ftdag {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCompute:
      return "compute";
    case TraceKind::kRecovery:
      return "recovery";
    case TraceKind::kReset:
      return "reset";
    case TraceKind::kFault:
      return "fault";
    case TraceKind::kReplica:
      return "replica";
  }
  return "?";
}

ExecutionTrace::ExecutionTrace(unsigned workers) : worker_buffers_(workers) {}

void ExecutionTrace::record(int worker, TraceKind kind, TaskKey key,
                            std::uint64_t life, double begin, double end) {
  TraceRecord r{begin, end, key, life, kind, worker};
  if (worker >= 0 &&
      static_cast<std::size_t>(worker) < worker_buffers_.size()) {
    worker_buffers_[static_cast<std::size_t>(worker)]->records.push_back(r);
  } else {
    CheckMutexGuard guard(overflow_lock_);
    overflow_.records.push_back(r);
  }
}

std::size_t ExecutionTrace::size() const {
  std::size_t n;
  {
    CheckMutexGuard guard(overflow_lock_);
    n = overflow_.records.size();
  }
  for (const auto& b : worker_buffers_) n += b->records.size();
  return n;
}

std::size_t ExecutionTrace::count(TraceKind kind) const {
  std::size_t n = 0;
  auto tally = [&](const Buffer& b) {
    for (const TraceRecord& r : b.records) n += (r.kind == kind);
  };
  {
    CheckMutexGuard guard(overflow_lock_);
    tally(overflow_);
  }
  for (const auto& b : worker_buffers_) tally(*b);
  return n;
}

std::vector<TraceRecord> ExecutionTrace::merged() const {
  std::vector<TraceRecord> out;
  out.reserve(size());
  {
    CheckMutexGuard guard(overflow_lock_);
    out.insert(out.end(), overflow_.records.begin(), overflow_.records.end());
  }
  for (const auto& b : worker_buffers_)
    out.insert(out.end(), b->records.begin(), b->records.end());
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.begin < b.begin;
            });
  return out;
}

std::string ExecutionTrace::chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceRecord& r : merged()) {
    if (!first) out += ",\n";
    first = false;
    const double us = r.begin * 1e6;
    const double dur = (r.end - r.begin) * 1e6;
    const bool span = r.kind == TraceKind::kCompute ||
                      r.kind == TraceKind::kRecovery ||
                      r.kind == TraceKind::kReplica;
    if (span) {
      out += strf(
          "{\"name\":\"%s k%lld\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
          "\"pid\":0,\"tid\":%d,\"args\":{\"key\":%lld,\"life\":%llu}}",
          trace_kind_name(r.kind), (long long)r.key, us, dur, r.worker,
          (long long)r.key, (unsigned long long)r.life);
    } else {
      out += strf(
          "{\"name\":\"%s k%lld\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\","
          "\"pid\":0,\"tid\":%d,\"args\":{\"key\":%lld,\"life\":%llu}}",
          trace_kind_name(r.kind), (long long)r.key, us, r.worker,
          (long long)r.key, (unsigned long long)r.life);
    }
  }
  out += "\n]}\n";
  return out;
}

void ExecutionTrace::clear() {
  {
    CheckMutexGuard guard(overflow_lock_);
    overflow_.records.clear();
  }
  for (auto& b : worker_buffers_) b->records.clear();
}

}  // namespace ftdag
