#pragma once
// ExecutionTrace: low-overhead per-worker event recording for the
// fault-tolerant executor, exportable to the Chrome trace-event JSON format
// (chrome://tracing, Perfetto) for visual inspection of recovery behaviour:
// compute spans, recoveries, resets and fault observations per worker.
//
// Recording is lock-free in the steady state: each worker appends to its
// own buffer; events from non-worker threads go to a shared overflow buffer
// under a spin lock. Merging/exporting happens after quiescence.

#include <cstdint>
#include <string>
#include <vector>

#include "check/sync_shim.hpp"
#include "graph/task_key.hpp"
#include "support/cache.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"
#include "support/timer.hpp"

namespace ftdag {

enum class TraceKind : std::uint8_t {
  kCompute,   // span: one execution of a task's compute function
  kRecovery,  // span: RecoverTask (replace + notify-array reconstruction)
  kReset,     // instant: ResetNode re-arming a task
  kFault,     // instant: a FaultException observed by the runtime
  kReplica,   // span: a shadow replica run for digest voting
};

const char* trace_kind_name(TraceKind kind);

struct TraceRecord {
  double begin = 0.0;  // seconds since trace construction
  double end = 0.0;    // == begin for instant events
  TaskKey key = 0;
  std::uint64_t life = 0;
  TraceKind kind = TraceKind::kCompute;
  int worker = -1;  // -1: recorded off the worker pool
};

class ExecutionTrace {
 public:
  explicit ExecutionTrace(unsigned workers);

  ExecutionTrace(const ExecutionTrace&) = delete;
  ExecutionTrace& operator=(const ExecutionTrace&) = delete;

  // Seconds since construction; use to bracket spans.
  double now() const { return clock_.seconds(); }

  // Appends an event. `worker` is the pool worker index or -1.
  void record(int worker, TraceKind kind, TaskKey key, std::uint64_t life,
              double begin, double end);

  // --- post-quiescence queries ------------------------------------------------

  std::size_t size() const;
  std::size_t count(TraceKind kind) const;

  // All records merged and sorted by begin time.
  std::vector<TraceRecord> merged() const;

  // Chrome trace-event JSON (the "traceEvents" array form).
  std::string chrome_json() const;

  void clear();

 private:
  struct Buffer {
    std::vector<TraceRecord> records;
  };

  Timer clock_;
  // Per-worker buffers are single-writer (each worker appends to its own);
  // the post-quiescence queries below read them unguarded by contract.
  std::vector<CachePadded<Buffer>> worker_buffers_;
  mutable CheckMutex overflow_lock_;
  Buffer overflow_ FTDAG_GUARDED_BY(overflow_lock_);
};

}  // namespace ftdag
