#include "persist/commit_pipeline.hpp"

#include <algorithm>
#include <csignal>

#include "support/assert.hpp"

namespace ftdag::persist {
namespace {

// Records coalesced per drain batch. The ring capacity (default 256) is
// the practical bound; this only caps the transient buffer.
constexpr std::size_t kMaxBatch = 1024;

// Bounded spins before a waiter parks on the condvar. Short on purpose:
// the waits here end with file I/O (a write or an fsync), which takes far
// longer than a futex round trip, so burning a core rarely pays.
constexpr int kPublishSpin = 128;
constexpr int kAckSpin = 256;

}  // namespace

CommitPipeline::CommitPipeline(const DurabilityOptions& options,
                               std::uint64_t layout, const BlockStore& store,
                               const RestartState& restart)
    : options_(options), layout_(layout) {
  std::uint64_t cap = 2;
  while (cap < options_.ring_capacity) cap <<= 1;
  capacity_ = cap;
  mask_ = cap - 1;
  cells_ = std::make_unique<Cell[]>(capacity_);
  for (std::uint64_t i = 0; i < capacity_; ++i)
    cells_[i].stamp.store(i, std::memory_order_relaxed);

  checkpoint_.prime(store, restart.committed, restart.staged, restart.seq);
  std::string error;
  bool ok;
  if (restart.wal_valid_bytes > 0)
    ok = writer_.open_append(wal_path(options_.dir, restart.seq),
                             restart.wal_valid_bytes, &error);
  else
    ok = writer_.open_fresh(wal_path(options_.dir, restart.seq), layout_,
                            restart.seq, &error);
  FTDAG_ASSERT(ok, "cannot open WAL segment in persist dir");
  (void)ok;

  last_flush_ = std::chrono::steady_clock::now();
  journal_ = std::thread([this] { journal_main(); });
}

CommitPipeline::~CommitPipeline() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    work_cv_.notify_one();
  }
  if (journal_.joinable()) journal_.join();
  // Final group commit for the drained tail, mirroring the synchronous
  // path's destructor: kNone keeps its write(2)-only contract.
  if (options_.sync != WalSync::kNone) writer_.sync();
  writer_.close();
}

std::uint64_t CommitPipeline::publish(CommitEntry entry) {
  // The global sequence number. fetch_add's total order plus the engine's
  // publish-before-status rule is what keeps the on-disk order a
  // dependency-closed prefix (see the header derivation).
  const std::uint64_t pos =
      enqueue_pos_.fetch_add(1, std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];

  // Ring-full backpressure: wait until the journal has freed this slot.
  // pairs: wal-ring-free
  if (cell.stamp.load(std::memory_order_acquire) != pos) {
    bool free = false;
    for (int spin = 0; spin < kPublishSpin && !free; ++spin) {
      // pairs: wal-ring-free
      free = cell.stamp.load(std::memory_order_acquire) == pos;
      if (!free && (spin & 15) == 15) std::this_thread::yield();
    }
    if (!free) {
      std::unique_lock<std::mutex> lk(mu_);
      state_cv_.wait(lk, [&] {
        // pairs: wal-ring-free
        return cell.stamp.load(std::memory_order_acquire) == pos;
      });
    }
  }

  cell.entry = std::move(entry);
  // Hand the slot to the journal; the release publishes the entry payload.
  // pairs: wal-ring-slot
  cell.stamp.store(pos + 1, std::memory_order_release);

  // Wake the journal only when it parked; taking mu_ makes the wakeup
  // race-free against the park (the flag read may miss a concurrent park,
  // which the journal's timed wait bounds to one flush interval).
  if (journal_idle_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lk(mu_);
    work_cv_.notify_one();
  }
  return pos;
}

std::uint64_t CommitPipeline::wait_durable(std::uint64_t pos) {
  // Fast path: a group fsync already covered this record.
  // pairs: wal-durable-seq
  if (durable_seq_.load(std::memory_order_acquire) > pos) return 0;
  const auto t0 = std::chrono::steady_clock::now();
  bool covered = false;
  for (int spin = 0; spin < kAckSpin && !covered; ++spin) {
    // pairs: wal-durable-seq
    covered = durable_seq_.load(std::memory_order_acquire) > pos;
    if (!covered && (spin & 15) == 15) std::this_thread::yield();
  }
  if (!covered) {
    std::unique_lock<std::mutex> lk(mu_);
    state_cv_.wait(lk, [&] {
      // pairs: wal-durable-seq
      return durable_seq_.load(std::memory_order_acquire) > pos;
    });
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ack_wait_ns_.fetch_add(static_cast<std::uint64_t>(ns),
                         std::memory_order_relaxed);
  return static_cast<std::uint64_t>(ns);
}

void CommitPipeline::quiesce() {
  // Callers (fill, tests) run after every publisher has returned, so a
  // relaxed read of the publish count is the true total. Waiting on the
  // folded stats_ counter — not written_seq_ — is deliberate: the journal
  // advances written_seq_ mid-batch and folds stats_ only at batch end, so
  // a written_seq_ barrier could return with the counters still unfolded.
  const std::uint64_t target = enqueue_pos_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(mu_);
  if (stats_.records >= target) return;
  work_cv_.notify_one();  // cut the park timeout short
  state_cv_.wait(lk, [&] { return stats_.records >= target; });
}

CommitPipelineStats CommitPipeline::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CommitPipeline::journal_main() {
  std::vector<CommitEntry> batch;
  batch.reserve(kMaxBatch);
  for (;;) {
    // Drain the contiguous ready run in sequence order.
    batch.clear();
    std::uint64_t n = 0;
    const std::uint64_t first = written_seq_.load(std::memory_order_relaxed);
    while (n < kMaxBatch) {
      Cell& cell = cells_[(first + n) & mask_];
      // pairs: wal-ring-slot
      if (cell.stamp.load(std::memory_order_acquire) != first + n + 1) break;
      batch.push_back(std::move(cell.entry));
      cell.entry = CommitEntry{};
      // Free the slot for the producer one lap ahead.
      // pairs: wal-ring-free
      cell.stamp.store(first + n + capacity_, std::memory_order_release);
      ++n;
    }

    if (n == 0) {
      // Flush-interval expiry: fsync an unsynced kBatch tail even when
      // batch_records never accumulated.
      if (options_.sync == WalSync::kBatch && unsynced_ > 0 &&
          std::chrono::steady_clock::now() - last_flush_ >=
              std::chrono::microseconds(options_.flush_interval_us)) {
        CommitPipelineStats delta;
        fsync_now(first, delta);
        std::lock_guard<std::mutex> lk(mu_);
        stats_.fsyncs += delta.fsyncs;
        state_cv_.notify_all();
        continue;
      }
      std::unique_lock<std::mutex> lk(mu_);
      if (stop_ && enqueue_pos_.load(std::memory_order_relaxed) == first)
        break;
      journal_idle_.store(true, std::memory_order_relaxed);
      work_cv_.wait_for(
          lk,
          std::chrono::microseconds(
              std::max<std::uint64_t>(options_.flush_interval_us, 50)),
          [&] {
            if (stop_) return true;
            return cells_[first & mask_].stamp.load(
                       std::memory_order_acquire) ==  // pairs: wal-ring-slot
                   first + 1;
          });
      journal_idle_.store(false, std::memory_order_relaxed);
      continue;
    }

    // Free space is worth a wakeup before the (possibly millisecond-long)
    // file I/O: producers blocked on a full ring can refill immediately.
    {
      std::lock_guard<std::mutex> lk(mu_);
      state_cv_.notify_all();
    }
    write_batch(batch, first);
  }
}

void CommitPipeline::write_batch(std::vector<CommitEntry>& batch,
                                 std::uint64_t first) {
  const bool crash_hooks =
      options_.crash_after_records > 0 || options_.crash_torn_tail;
  CommitPipelineStats delta;
  std::vector<const std::string*> chunk_records;

  std::size_t i = 0;
  while (i < batch.size()) {
    // Chunk up to the next snapshot boundary so the rotation cadence stays
    // exact under batching.
    std::size_t chunk = batch.size() - i;
    if (options_.snapshot_every > 0)
      chunk = static_cast<std::size_t>(std::min<std::uint64_t>(
          chunk, options_.snapshot_every - since_snapshot_));

    if (crash_hooks) {
      // Record-at-a-time so the injected SIGKILL lands at an exact on-disk
      // record count: after the write(2), before any fsync, with the rest
      // of the batch (and the ring) unwritten — the journal-thread crash
      // window the restart tests aim at.
      for (std::size_t j = 0; j < chunk; ++j) {
        const CommitEntry& e = batch[i + j];
        if (options_.crash_torn_tail &&
            records_written_ == options_.crash_after_records) {
          (void)writer_.append_prefix(e.record, e.record.size() / 2);
          std::raise(SIGKILL);
        }
        FTDAG_ASSERT(writer_.append(e.record), "WAL append failed");
        ++records_written_;
        delta.bytes += e.record.size();
        if (!options_.crash_torn_tail &&
            records_written_ >= options_.crash_after_records) {
          // SIGKILL on purpose: no destructors, no flushes — only what
          // write(2)/fsync(2) already made durable survives, which is
          // exactly the guarantee under test.
          std::raise(SIGKILL);
        }
      }
    } else {
      chunk_records.clear();
      for (std::size_t j = 0; j < chunk; ++j) {
        chunk_records.push_back(&batch[i + j].record);
        delta.bytes += batch[i + j].record.size();
      }
      FTDAG_ASSERT(
          writer_.append_batch(chunk_records.data(), chunk_records.size()),
          "WAL batch append failed");
      records_written_ += chunk;
    }

    // Fold into the snapshot shadow in sequence order (the shadow must
    // always equal "what replaying the log so far would produce").
    for (std::size_t j = 0; j < chunk; ++j) {
      const CommitEntry& e = batch[i + j];
      checkpoint_.apply(e.key, e.staged, e.outputs);
    }
    delta.records += chunk;
    unsynced_ += static_cast<std::uint32_t>(chunk);
    // Journal-private drain cursor (no other thread reads it): relaxed.
    written_seq_.store(first + i + chunk, std::memory_order_relaxed);

    if (options_.snapshot_every > 0) {
      since_snapshot_ += chunk;
      if (since_snapshot_ >= options_.snapshot_every) {
        rotate(first + i + chunk, delta);
        since_snapshot_ = 0;
      }
    }
    i += chunk;
  }

  ++delta.flush_batches;
  switch (options_.sync) {
    case WalSync::kNone:
      break;
    case WalSync::kBatch:
      if (unsynced_ >= options_.batch_records)
        fsync_now(first + batch.size(), delta);
      break;
    case WalSync::kEvery:
      // Group commit: ONE fsync acknowledges every record in the batch.
      if (unsynced_ > 0) fsync_now(first + batch.size(), delta);
      break;
  }

  std::lock_guard<std::mutex> lk(mu_);
  stats_.records += delta.records;
  stats_.bytes += delta.bytes;
  stats_.fsyncs += delta.fsyncs;
  stats_.flush_batches += delta.flush_batches;
  stats_.snapshots += delta.snapshots;
  state_cv_.notify_all();
}

void CommitPipeline::fsync_now(std::uint64_t written,
                               CommitPipelineStats& delta) {
  writer_.sync();
  ++delta.fsyncs;
  unsynced_ = 0;
  last_flush_ = std::chrono::steady_clock::now();
  // Epoch publish: every wait_durable(pos < written) can return now.
  // pairs: wal-durable-seq
  durable_seq_.store(written, std::memory_order_release);
}

void CommitPipeline::rotate(std::uint64_t written, CommitPipelineStats& delta) {
  // Complete the current segment on disk first, so the fallback chain
  // (previous snapshot + this segment) is whole before its successor
  // snapshot appears.
  fsync_now(written, delta);
  std::string error;
  if (!checkpoint_.emit(options_.dir, layout_, &error)) {
    // Snapshot emission is an optimization (it only shortens replay); on
    // I/O failure keep appending to the current segment.
    return;
  }
  ++delta.snapshots;
  writer_.close();
  const bool ok = writer_.open_fresh(wal_path(options_.dir, checkpoint_.seq()),
                                     layout_, checkpoint_.seq(), &error);
  FTDAG_ASSERT(ok, "cannot rotate to a fresh WAL segment");
  (void)ok;
}

}  // namespace ftdag::persist
