#include "persist/checkpoint_writer.hpp"

#include <cstring>
#include <filesystem>

namespace ftdag::persist {

namespace {
constexpr std::uint64_t kNoResident = ~std::uint64_t{0};
}

void CheckpointWriter::prime(
    const BlockStore& store, std::vector<TaskKey> committed,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> staged,
    std::uint64_t seq) {
  layout_ = snapshot_layout(store);
  shadow_ = store.snapshot();
  committed_ = std::move(committed);
  committed_set_.clear();
  committed_set_.insert(committed_.begin(), committed_.end());
  staged_.clear();
  for (const auto& [index, value] : staged) staged_[index] = value;
  seq_ = seq;

  // Rebuild the per-slot resident index from the shadow states: at most one
  // version per slot can be Valid (displacement downgrades the rest).
  resident_offset_.clear();
  std::size_t total_slots = 0;
  for (const auto& b : layout_.blocks) {
    resident_offset_.push_back(total_slots);
    total_slots += b.slots;
  }
  resident_.assign(total_slots, kNoResident);
  for (std::size_t bi = 0; bi < layout_.blocks.size(); ++bi) {
    const auto& b = layout_.blocks[bi];
    for (Version v = 0; v < b.num_versions; ++v) {
      if (shadow_.states[b.state_offset + v] == VersionState::kValid)
        resident_[resident_offset_[bi] + v % b.slots] = v;
    }
  }
}

void CheckpointWriter::apply(
    TaskKey key,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& staged,
    const std::vector<WalOutputPayload>& outputs) {
  for (const WalOutputPayload& out : outputs) {
    const auto& b = layout_.blocks[out.block];
    const std::uint64_t slot = out.version % b.slots;
    // Displace the slot's previous occupant, as begin_write would.
    std::uint64_t& res = resident_[resident_offset_[out.block] + slot];
    if (res != kNoResident && res != out.version)
      shadow_.states[b.state_offset + res] = VersionState::kOverwritten;
    res = out.version;
    std::memcpy(shadow_.bytes.data() + b.byte_offset + slot * b.bytes,
                out.bytes.data(), b.bytes);
    shadow_.states[b.state_offset + out.version] = VersionState::kValid;
    shadow_.sums[b.state_offset + out.version] = out.digest;
  }
  for (const auto& [index, value] : staged) staged_[index] = value;
  if (committed_set_.insert(key).second) committed_.push_back(key);
}

bool CheckpointWriter::emit(const std::string& dir, std::uint64_t layout,
                            std::string* error) {
  SnapshotData data;
  data.seq = seq_ + 1;
  data.committed = committed_;
  data.staged.assign(staged_.begin(), staged_.end());
  data.store = shadow_;
  if (!write_snapshot(dir, layout, data, error)) return false;
  seq_ = data.seq;

  // Fallback chain: keep snap-seq and snap-(seq-1), plus every WAL segment
  // from seq-1 on (replaying wal-(seq-1) over snap-(seq-1) reproduces
  // snap-seq if the latter turns out damaged). Everything older goes.
  std::error_code ec;
  const DirListing listing = scan_dir(dir);
  for (std::uint64_t s : listing.snapshots)
    if (s + 1 < seq_) std::filesystem::remove(snapshot_path(dir, s), ec);
  for (std::uint64_t s : listing.wals)
    if (s + 1 < seq_) std::filesystem::remove(wal_path(dir, s), ec);
  return true;
}

}  // namespace ftdag::persist
