#pragma once
// Versioned, CRC-checked binary snapshot of the retained block frontier.
//
// A snapshot captures everything a restarted process needs to continue
// without replaying the full WAL history: the BlockStore frontier (slot
// bytes, version states, checksums), the set of committed task keys, and
// the staged app-result values ((slot index, value) pairs — see
// TaskGraphProblem::result_slots). Snapshot `seq` is the number of the WAL
// segment whose records are *not yet* reflected in it: restart loads
// snapshot S and replays wal-S, wal-(S+1), ... on top.
//
// File layout: the shared file header (format.hpp), the body, and a
// trailing CRC-32 over header + body. Writes go to a temp file that is
// fsync'd and then renamed into place, so a crash mid-write never damages
// an existing snapshot and a half-written new one fails its CRC and is
// rejected (the loader then falls back to the previous snapshot).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "blocks/block_store.hpp"
#include "graph/task_key.hpp"
#include "persist/format.hpp"

namespace ftdag::persist {

struct SnapshotData {
  std::uint64_t seq = 0;
  std::vector<TaskKey> committed;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;  // index,value
  BlockStore::Snapshot store;
};

// Serializes and atomically writes snap-<seq>.ftsnap into `dir`.
bool write_snapshot(const std::string& dir, std::uint64_t layout,
                    const SnapshotData& data, std::string* error);

// Loads and fully validates a snapshot file. On any mismatch (header, CRC,
// structure, or section sizes against `expect_layout_sizes`) fills
// `diagnostic` and returns false without touching `out`.
bool load_snapshot(const std::string& path, std::uint64_t layout,
                   const SnapshotLayout& expect, SnapshotData* out,
                   std::string* diagnostic);

}  // namespace ftdag::persist
