#include "persist/wal.hpp"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ftdag::persist {
namespace {

constexpr std::size_t kFrameBytes = 12;  // magic + length + crc

// iovecs per writev(2) call. POSIX guarantees IOV_MAX >= 16; 64 already
// amortizes the syscall across a full default commit batch.
constexpr std::size_t kMaxIov = 64;

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string encode_wal_record(
    TaskKey key,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& staged,
    const std::vector<WalOutputPayload>& outputs) {
  std::string payload;
  put_i64(payload, key);
  put_u32(payload, static_cast<std::uint32_t>(staged.size()));
  put_u32(payload, static_cast<std::uint32_t>(outputs.size()));
  for (const auto& [index, value] : staged) {
    put_u64(payload, index);
    put_u64(payload, value);
  }
  for (const WalOutputPayload& out : outputs) {
    put_u64(payload, out.block);
    put_u64(payload, out.version);
    put_u64(payload, out.digest);
    put_u64(payload, out.bytes.size());
    put_bytes(payload, out.bytes.data(), out.bytes.size());
  }

  std::string record;
  record.reserve(kFrameBytes + payload.size());
  put_u32(record, kRecordMagic);
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u32(record, crc32(payload.data(), payload.size()));
  record += payload;
  return record;
}

bool WalWriter::open_fresh(const std::string& path, std::uint64_t layout,
                           std::uint64_t seq, std::string* error) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    *error = errno_string("open");
    return false;
  }
  const std::string header = encode_file_header(kWalMagic, layout, seq);
  if (!write_all(fd_, header.data(), header.size())) {
    *error = errno_string("write header");
    close();
    return false;
  }
  size_ = header.size();
  dirty_ = true;
  return true;
}

bool WalWriter::open_append(const std::string& path, std::uint64_t valid_bytes,
                            std::string* error) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) {
    *error = errno_string("open");
    return false;
  }
  // Drop the torn tail a crash may have left so the next append starts at
  // the end of the last good record.
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
    *error = errno_string("ftruncate");
    close();
    return false;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    *error = errno_string("lseek");
    close();
    return false;
  }
  size_ = valid_bytes;
  dirty_ = true;  // the truncation itself should reach disk on next sync
  return true;
}

bool WalWriter::append(const std::string& record) {
  if (fd_ < 0) return false;
  if (!write_all(fd_, record.data(), record.size())) return false;
  size_ += record.size();
  dirty_ = true;
  return true;
}

bool WalWriter::append_batch(const std::string* const* records,
                             std::size_t n) {
  if (fd_ < 0) return false;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = std::min(n - done, kMaxIov);
    struct iovec iov[kMaxIov];
    std::size_t total = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::string& r = *records[done + i];
      iov[i].iov_base = const_cast<char*>(r.data());
      iov[i].iov_len = r.size();
      total += r.size();
    }
    const ssize_t w = ::writev(fd_, iov, static_cast<int>(m));
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    size_ += static_cast<std::uint64_t>(w);
    dirty_ = true;
    if (static_cast<std::size_t>(w) < total) {
      // Short writev (rare): finish the chunk record by record, skipping
      // the bytes the kernel already took.
      std::size_t skip = static_cast<std::size_t>(w);
      for (std::size_t i = 0; i < m; ++i) {
        const std::string& r = *records[done + i];
        if (skip >= r.size()) {
          skip -= r.size();
          continue;
        }
        if (!write_all(fd_, r.data() + skip, r.size() - skip)) return false;
        size_ += r.size() - skip;
        skip = 0;
      }
    }
    done += m;
  }
  return true;
}

bool WalWriter::append_prefix(const std::string& record, std::size_t bytes) {
  if (fd_ < 0) return false;
  const std::size_t n = std::min(bytes, record.size());
  if (!write_all(fd_, record.data(), n)) return false;
  size_ += n;
  dirty_ = true;
  return true;
}

void WalWriter::sync() {
  if (fd_ < 0 || !dirty_) return;
  ::fsync(fd_);
  dirty_ = false;
}

void WalWriter::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  size_ = 0;
  dirty_ = false;
}

WalScan read_wal_segment(const std::string& path, std::uint64_t expect_layout,
                         std::uint64_t expect_seq) {
  WalScan scan;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    scan.diagnostic = "cannot open segment";
    return scan;
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  scan.raw.resize(len > 0 ? static_cast<std::size_t>(len) : 0);
  if (!scan.raw.empty() &&
      std::fread(scan.raw.data(), 1, scan.raw.size(), f) != scan.raw.size()) {
    std::fclose(f);
    scan.diagnostic = "short read";
    return scan;
  }
  std::fclose(f);

  if (!decode_file_header(scan.raw.data(), scan.raw.size(), kWalMagic,
                          expect_layout, &scan.seq, &scan.diagnostic))
    return scan;
  if (scan.seq != expect_seq) {
    scan.diagnostic = "segment sequence number does not match its filename";
    return scan;
  }
  scan.header_ok = true;
  scan.valid_bytes = kFileHeaderBytes;

  std::size_t at = kFileHeaderBytes;
  while (at < scan.raw.size()) {
    if (scan.raw.size() - at < kFrameBytes) {
      scan.diagnostic = "torn record frame at end of segment";
      break;
    }
    ByteReader frame(scan.raw.data() + at, kFrameBytes);
    const std::uint32_t magic = frame.u32();
    const std::uint32_t length = frame.u32();
    const std::uint32_t crc = frame.u32();
    if (magic != kRecordMagic) {
      scan.diagnostic = "bad record magic (corrupted frame)";
      break;
    }
    if (scan.raw.size() - at - kFrameBytes < length) {
      scan.diagnostic = "torn record payload at end of segment";
      break;
    }
    const char* payload = scan.raw.data() + at + kFrameBytes;
    if (crc32(payload, length) != crc) {
      scan.diagnostic = "record CRC mismatch";
      break;
    }

    WalRecord rec;
    ByteReader r(payload, length);
    rec.key = r.i64();
    const std::uint32_t n_staged = r.u32();
    const std::uint32_t n_outputs = r.u32();
    for (std::uint32_t i = 0; r.ok() && i < n_staged; ++i) {
      const std::uint64_t index = r.u64();
      const std::uint64_t value = r.u64();
      rec.staged.emplace_back(index, value);
    }
    for (std::uint32_t i = 0; r.ok() && i < n_outputs; ++i) {
      WalRecord::Output out;
      out.block = r.u64();
      out.version = r.u64();
      out.digest = r.u64();
      const std::uint64_t n = r.u64();
      out.payload_size = static_cast<std::size_t>(n);
      out.payload_offset =
          at + kFrameBytes + r.skip(out.payload_size);
      rec.outputs.push_back(out);
    }
    if (!r.done()) {
      // CRC passed but the fields don't fill the payload: an encoder/decoder
      // disagreement, treated like corruption (prefix rule).
      scan.diagnostic = "record payload has malformed structure";
      break;
    }
    rec.end_offset = at + kFrameBytes + length;
    scan.records.push_back(std::move(rec));
    at += kFrameBytes + length;
    scan.valid_bytes = at;
  }
  scan.discarded_bytes = scan.raw.size() - scan.valid_bytes;
  if (scan.discarded_bytes == 0) scan.diagnostic.clear();
  return scan;
}

}  // namespace ftdag::persist
