#include "check/sync_shim.hpp"
#include "persist/durability.hpp"

#include <cstring>
#include <filesystem>

#include "support/assert.hpp"

namespace ftdag::persist {

bool parse_wal_sync(const std::string& text, WalSync* out) {
  if (text == "none") {
    *out = WalSync::kNone;
    return true;
  }
  if (text == "batch") {
    *out = WalSync::kBatch;
    return true;
  }
  if (text == "every") {
    *out = WalSync::kEvery;
    return true;
  }
  return false;
}

const char* wal_sync_name(WalSync sync) {
  switch (sync) {
    case WalSync::kNone:
      return "none";
    case WalSync::kBatch:
      return "batch";
    case WalSync::kEvery:
      return "every";
  }
  return "?";
}

WalDurability::WalDurability(TaskGraphProblem& problem,
                             const DurabilityOptions& options)
    : problem_(problem), options_(options) {
  FTDAG_ASSERT(options_.enabled(), "WalDurability requires a persist dir");
  BlockStore& store = problem.block_store();
  layout_ = layout_signature(store);

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (!options_.resume) remove_persist_files(options_.dir);

  restart_ = load_restart_state(options_.dir, problem);
  restored_.insert(restart_.committed.begin(), restart_.committed.end());

  // The pipeline primes the snapshot shadow, opens the active WAL segment
  // and starts the journal thread.
  pipeline_.emplace(options_, layout_, store, restart_);
}

WalDurability::~WalDurability() = default;

void WalDurability::on_committed(TaskGraphProblem& problem, BlockStore& store,
                                 TaskKey key, const Pending& pending) {
  // Translate staged result pointers into indices against the app's
  // declared slot range. A task staging outside the range cannot be
  // journaled pointer-free; it gets no record and is recomputed on restart
  // (its successors' records still replay fine: record application is
  // idempotent and ordered).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;
  Atomic<std::uint64_t>* base = problem.result_slots();
  const std::size_t n_slots = problem.result_slot_count();
  for (const auto& [slot, value] : pending.staged) {
    if (base == nullptr) return;
    const auto index = static_cast<std::uint64_t>(slot - base);
    if (index >= n_slots) return;
    staged.emplace_back(index, value);
  }

  // Copy the committed outputs back out of the store. read() throws
  // DataBlockFault when the version is no longer Valid (displaced by a
  // concurrent recovery chain, or corrupted by the injector) and
  // revalidate() rejects a copy torn by a concurrent displacement — either
  // way the engine's recovery path re-executes the task and journaling
  // happens on the re-execution instead.
  OutputList outs;
  problem.outputs(key, outs);
  std::vector<WalOutputPayload> payloads;
  payloads.reserve(outs.size());
  for (const ProducedVersion& pv : outs) {
    WalOutputPayload p;
    p.block = pv.block;
    p.version = pv.version;
    const void* data = store.read(pv.block, pv.version);
    p.bytes.assign(static_cast<const char*>(data),
                   store.block_bytes(pv.block));
    store.revalidate(pv.block, pv.version);
    p.digest = BlockStore::hash_bytes(
        reinterpret_cast<const std::byte*>(p.bytes.data()), p.bytes.size());
    payloads.push_back(std::move(p));
  }

  // Serialization happens here, on the worker, outside any shared state;
  // the publish itself is one fetch_add plus one release store.
  CommitEntry entry;
  entry.key = key;
  entry.staged = std::move(staged);
  entry.outputs = std::move(payloads);
  entry.record = encode_wal_record(key, entry.staged, entry.outputs);

  const std::uint64_t pos = pipeline_->publish(std::move(entry));

  // kEvery ack point: the commit hook returns — and the engine publishes
  // the Computed status — only once a group fsync covered this record.
  if (options_.sync == WalSync::kEvery) pipeline_->wait_durable(pos);
}

void WalDurability::fill(ExecReport& report) {
  pipeline_->quiesce();
  const CommitPipelineStats s = pipeline_->stats();
  report.wal_records = s.records;
  report.wal_bytes = s.bytes;
  report.snapshots_written = s.snapshots;
  report.wal_fsyncs = s.fsyncs;
  report.wal_flush_batches = s.flush_batches;
  report.wal_ack_wait_ns = pipeline_->ack_wait_ns();
  report.tasks_skipped_on_restart = skipped_.load(std::memory_order_relaxed);
}

}  // namespace ftdag::persist
