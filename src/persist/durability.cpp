#include "check/sync_shim.hpp"
#include "persist/durability.hpp"

#include <csignal>
#include <cstring>
#include <filesystem>

#include "support/assert.hpp"

namespace ftdag::persist {

bool parse_wal_sync(const std::string& text, WalSync* out) {
  if (text == "none") {
    *out = WalSync::kNone;
    return true;
  }
  if (text == "batch") {
    *out = WalSync::kBatch;
    return true;
  }
  if (text == "every") {
    *out = WalSync::kEvery;
    return true;
  }
  return false;
}

const char* wal_sync_name(WalSync sync) {
  switch (sync) {
    case WalSync::kNone:
      return "none";
    case WalSync::kBatch:
      return "batch";
    case WalSync::kEvery:
      return "every";
  }
  return "?";
}

WalDurability::WalDurability(TaskGraphProblem& problem,
                             const DurabilityOptions& options)
    : problem_(problem), options_(options) {
  FTDAG_ASSERT(options_.enabled(), "WalDurability requires a persist dir");
  BlockStore& store = problem.block_store();
  layout_ = layout_signature(store);

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (!options_.resume) remove_persist_files(options_.dir);

  restart_ = load_restart_state(options_.dir, problem);
  restored_.insert(restart_.committed.begin(), restart_.committed.end());

  WalMutexGuard guard(lock_);
  checkpoint_.prime(store, restart_.committed, restart_.staged, restart_.seq);
  std::string error;
  bool ok;
  if (restart_.wal_valid_bytes > 0)
    ok = writer_.open_append(wal_path(options_.dir, restart_.seq),
                             restart_.wal_valid_bytes, &error);
  else
    ok = writer_.open_fresh(wal_path(options_.dir, restart_.seq), layout_,
                            restart_.seq, &error);
  FTDAG_ASSERT(ok, "cannot open WAL segment in persist dir");
  (void)ok;
}

WalDurability::~WalDurability() {
  WalMutexGuard guard(lock_);
  if (options_.sync != WalSync::kNone) writer_.sync();
  writer_.close();
}

void WalDurability::on_committed(TaskGraphProblem& problem, BlockStore& store,
                                 TaskKey key, const Pending& pending) {
  // Translate staged result pointers into indices against the app's
  // declared slot range. A task staging outside the range cannot be
  // journaled pointer-free; it gets no record and is recomputed on restart
  // (its successors' records still replay fine: record application is
  // idempotent and ordered).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;
  Atomic<std::uint64_t>* base = problem.result_slots();
  const std::size_t n_slots = problem.result_slot_count();
  for (const auto& [slot, value] : pending.staged) {
    if (base == nullptr) return;
    const auto index = static_cast<std::uint64_t>(slot - base);
    if (index >= n_slots) return;
    staged.emplace_back(index, value);
  }

  // Copy the committed outputs back out of the store. read() throws
  // DataBlockFault when the version is no longer Valid (displaced by a
  // concurrent recovery chain, or corrupted by the injector) and
  // revalidate() rejects a copy torn by a concurrent displacement — either
  // way the engine's recovery path re-executes the task and journaling
  // happens on the re-execution instead.
  OutputList outs;
  problem.outputs(key, outs);
  std::vector<WalOutputPayload> payloads;
  payloads.reserve(outs.size());
  for (const ProducedVersion& pv : outs) {
    WalOutputPayload p;
    p.block = pv.block;
    p.version = pv.version;
    const void* data = store.read(pv.block, pv.version);
    p.bytes.assign(static_cast<const char*>(data),
                   store.block_bytes(pv.block));
    store.revalidate(pv.block, pv.version);
    p.digest = BlockStore::hash_bytes(
        reinterpret_cast<const std::byte*>(p.bytes.data()), p.bytes.size());
    payloads.push_back(std::move(p));
  }

  const std::string record = encode_wal_record(key, staged, payloads);

  WalMutexGuard guard(lock_);
  FTDAG_ASSERT(writer_.append(record), "WAL append failed");
  ++wal_records_;
  wal_bytes_ += record.size();
  checkpoint_.apply(key, staged, payloads);

  switch (options_.sync) {
    case WalSync::kNone:
      break;
    case WalSync::kBatch:
      if (++unsynced_ >= options_.batch_records) {
        writer_.sync();
        unsynced_ = 0;
      }
      break;
    case WalSync::kEvery:
      writer_.sync();
      break;
  }

  if (options_.snapshot_every > 0 &&
      ++since_snapshot_ >= options_.snapshot_every) {
    rotate();
    since_snapshot_ = 0;
  }

  if (options_.crash_after_records > 0 &&
      wal_records_ >= options_.crash_after_records) {
    // The injected death is SIGKILL on purpose: no destructors, no flushes
    // — only what write(2)/fsync(2) already made durable survives, which
    // is exactly the guarantee under test.
    std::raise(SIGKILL);
  }
}

void WalDurability::rotate() {
  // Complete the current segment on disk first, so the fallback chain
  // (previous snapshot + this segment) is whole before its successor
  // snapshot appears.
  writer_.sync();
  std::string error;
  if (!checkpoint_.emit(options_.dir, layout_, &error)) {
    // Snapshot emission is an optimization (it only shortens replay); on
    // I/O failure keep appending to the current segment.
    return;
  }
  ++snapshots_written_;
  writer_.close();
  const bool ok = writer_.open_fresh(wal_path(options_.dir, checkpoint_.seq()),
                                     layout_, checkpoint_.seq(), &error);
  FTDAG_ASSERT(ok, "cannot rotate to a fresh WAL segment");
  (void)ok;
  unsynced_ = 0;
}

void WalDurability::fill(ExecReport& report) {
  WalMutexGuard guard(lock_);
  report.wal_records = wal_records_;
  report.wal_bytes = wal_bytes_;
  report.snapshots_written = snapshots_written_;
  report.tasks_skipped_on_restart = skipped_.load(std::memory_order_relaxed);
}

}  // namespace ftdag::persist
