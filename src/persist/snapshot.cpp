#include "persist/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace ftdag::persist {
namespace {

bool write_file_synced(const std::string& path, const std::string& bytes,
                       std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = std::string("open: ") + std::strerror(errno);
    return false;
  }
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      *error = std::string("write: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

}  // namespace

bool write_snapshot(const std::string& dir, std::uint64_t layout,
                    const SnapshotData& data, std::string* error) {
  std::string buf = encode_file_header(kSnapshotMagic, layout, data.seq);
  put_u64(buf, data.committed.size());
  for (TaskKey k : data.committed) put_i64(buf, k);
  put_u64(buf, data.staged.size());
  for (const auto& [index, value] : data.staged) {
    put_u64(buf, index);
    put_u64(buf, value);
  }
  put_u64(buf, data.store.states.size());
  for (VersionState s : data.store.states)
    buf.push_back(static_cast<char>(s));
  put_u64(buf, data.store.sums.size());
  for (std::uint64_t s : data.store.sums) put_u64(buf, s);
  put_u64(buf, data.store.bytes.size());
  put_bytes(buf, data.store.bytes.data(), data.store.bytes.size());
  put_u32(buf, crc32(buf.data(), buf.size()));

  const std::string path = snapshot_path(dir, data.seq);
  const std::string tmp = path + ".tmp";
  if (!write_file_synced(tmp, buf, error)) return false;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    *error = "rename: " + ec.message();
    return false;
  }
  return true;
}

bool load_snapshot(const std::string& path, std::uint64_t layout,
                   const SnapshotLayout& expect, SnapshotData* out,
                   std::string* diagnostic) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *diagnostic = "cannot open snapshot";
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string raw(len > 0 ? static_cast<std::size_t>(len) : 0, '\0');
  if (!raw.empty() &&
      std::fread(raw.data(), 1, raw.size(), f) != raw.size()) {
    std::fclose(f);
    *diagnostic = "short read";
    return false;
  }
  std::fclose(f);

  if (raw.size() < kFileHeaderBytes + 4) {
    *diagnostic = "snapshot truncated below minimum size";
    return false;
  }
  // Trailing CRC covers header + body.
  ByteReader crc_reader(raw.data() + raw.size() - 4, 4);
  const std::uint32_t stored_crc = crc_reader.u32();
  if (crc32(raw.data(), raw.size() - 4) != stored_crc) {
    *diagnostic = "snapshot CRC mismatch (bit rot or truncated write)";
    return false;
  }

  SnapshotData data;
  if (!decode_file_header(raw.data(), raw.size(), kSnapshotMagic, layout,
                          &data.seq, diagnostic))
    return false;

  ByteReader r(raw.data() + kFileHeaderBytes,
               raw.size() - kFileHeaderBytes - 4);
  const std::uint64_t n_committed = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < n_committed; ++i)
    data.committed.push_back(r.i64());
  const std::uint64_t n_staged = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < n_staged; ++i) {
    const std::uint64_t index = r.u64();
    const std::uint64_t value = r.u64();
    data.staged.emplace_back(index, value);
  }
  const std::uint64_t n_states = r.u64();
  if (r.ok() && n_states == expect.total_versions) {
    data.store.states.resize(n_states);
    for (std::uint64_t i = 0; r.ok() && i < n_states; ++i) {
      std::uint8_t s = 0;
      r.bytes(&s, 1);
      if (s > static_cast<std::uint8_t>(VersionState::kOverwritten)) {
        *diagnostic = "snapshot contains an invalid version state";
        return false;
      }
      data.store.states[i] = static_cast<VersionState>(s);
    }
  } else if (r.ok()) {
    *diagnostic = "snapshot state section does not match the store layout";
    return false;
  }
  const std::uint64_t n_sums = r.u64();
  if (r.ok() && n_sums == expect.total_versions) {
    data.store.sums.resize(n_sums);
    for (std::uint64_t i = 0; r.ok() && i < n_sums; ++i)
      data.store.sums[i] = r.u64();
  } else if (r.ok()) {
    *diagnostic = "snapshot checksum section does not match the store layout";
    return false;
  }
  const std::uint64_t n_bytes = r.u64();
  if (r.ok() && n_bytes == expect.total_bytes) {
    data.store.bytes.resize(n_bytes);
    r.bytes(data.store.bytes.data(), n_bytes);
  } else if (r.ok()) {
    *diagnostic = "snapshot byte section does not match the store layout";
    return false;
  }
  if (!r.done()) {
    *diagnostic = "snapshot has malformed structure";
    return false;
  }
  *out = std::move(data);
  return true;
}

}  // namespace ftdag::persist
