#pragma once
// CheckpointWriter: periodic snapshots of the committed frontier, without
// stopping the walk.
//
// The collective checkpoint comparator (CheckpointRetention) needs a
// globally quiescent store to snapshot, which is why it runs a BSP
// schedule. The durability subsystem cannot afford a barrier, so it keeps
// an in-memory *shadow* of the frontier instead: every WAL record is
// folded into the shadow in WAL order, under the same writer lock that
// serializes appends. The shadow therefore always equals "the store state
// a crash-free replay of the WAL so far would produce" — exactly the
// state a snapshot must capture — even while worker threads keep
// committing into the live BlockStore. Emitting a snapshot is then a pure
// serialization of the shadow, and rotation (new WAL segment + pruning of
// segments older than the fallback chain) is the WAL-truncation story.
//
// Thread safety: all methods are called with WalDurability's writer lock
// held (the class itself has no lock; see durability.hpp for the
// capability annotation).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocks/block_store.hpp"
#include "graph/task_key.hpp"
#include "persist/format.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace ftdag::persist {

class CheckpointWriter {
 public:
  // Initializes the shadow from the (quiescent) post-restore store plus the
  // committed/staged state the RestartLoader recovered. `seq` is the active
  // WAL segment.
  void prime(const BlockStore& store, std::vector<TaskKey> committed,
             std::vector<std::pair<std::uint64_t, std::uint64_t>> staged,
             std::uint64_t seq);

  // Folds one committed record into the shadow, mirroring what replaying
  // the record would do to the store: write the payload into the version's
  // slot, mark it Valid, record its digest, and displace whatever version
  // previously occupied the slot.
  void apply(TaskKey key,
             const std::vector<std::pair<std::uint64_t, std::uint64_t>>& staged,
             const std::vector<WalOutputPayload>& outputs);

  // Writes snapshot seq+1 from the shadow and advances the active segment;
  // the caller opens wal-(seq+1) next. Prunes artifacts older than the
  // fallback chain (the previous snapshot and its segment are kept so a
  // torn new snapshot still leaves a recoverable state). Returns false and
  // fills `error` on I/O failure, leaving the sequence unchanged.
  bool emit(const std::string& dir, std::uint64_t layout, std::string* error);

  std::uint64_t seq() const { return seq_; }

 private:
  SnapshotLayout layout_;
  BlockStore::Snapshot shadow_;
  // Per (block, slot) resident version, for O(1) displacement in apply().
  std::vector<std::uint64_t> resident_;
  std::vector<std::size_t> resident_offset_;  // per block, into resident_
  std::vector<TaskKey> committed_;
  std::unordered_set<TaskKey> committed_set_;
  std::unordered_map<std::uint64_t, std::uint64_t> staged_;
  std::uint64_t seq_ = 0;
};

}  // namespace ftdag::persist
