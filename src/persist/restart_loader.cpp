#include "check/sync_shim.hpp"
#include "persist/restart_loader.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace ftdag::persist {
namespace {

bool contains(const std::vector<std::uint64_t>& sorted, std::uint64_t v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

// Replays one record into the store through the ordinary write protocol
// (single-threaded here, so begin_write/commit never contend). Structural
// mismatches — out-of-range block/version/slot-index, wrong payload size,
// payload not matching its digest — reject the record like corruption.
bool apply_record(BlockStore& store, const SnapshotLayout& layout,
                  const WalRecord& rec, const std::string& raw,
                  std::size_t n_result_slots, std::string* diagnostic) {
  for (const WalRecord::Output& out : rec.outputs) {
    if (out.block >= layout.blocks.size()) {
      *diagnostic = "record references a block the store does not have";
      return false;
    }
    const auto& b = layout.blocks[out.block];
    if (out.version >= b.num_versions) {
      *diagnostic = "record references a version past the block's range";
      return false;
    }
    if (out.payload_size != b.bytes) {
      *diagnostic = "record payload size does not match the block size";
      return false;
    }
    const auto* payload =
        reinterpret_cast<const std::byte*>(raw.data() + out.payload_offset);
    if (BlockStore::hash_bytes(payload, out.payload_size) != out.digest) {
      *diagnostic = "record payload does not match its digest";
      return false;
    }
  }
  for (const auto& [index, value] : rec.staged) {
    (void)value;
    if (index >= n_result_slots) {
      *diagnostic = "record stages a result outside the app's slot range";
      return false;
    }
  }
  for (const WalRecord::Output& out : rec.outputs) {
    WriteTicket t = store.begin_write(static_cast<BlockId>(out.block),
                                      static_cast<Version>(out.version));
    std::memcpy(t.data, raw.data() + out.payload_offset, out.payload_size);
    store.commit(t);
  }
  return true;
}

}  // namespace

RestartState load_restart_state(const std::string& dir,
                                TaskGraphProblem& problem) {
  RestartState st;
  BlockStore& store = problem.block_store();
  const std::uint64_t layout = layout_signature(store);
  const SnapshotLayout slayout = snapshot_layout(store);
  const std::size_t n_result_slots = problem.result_slot_count();
  DirListing listing = scan_dir(dir);
  if (listing.snapshots.empty() && listing.wals.empty()) return st;

  // Newest snapshot that validates seeds the state; rejected snapshots are
  // deleted (they can never become useful again) with a diagnostic.
  SnapshotData base;
  bool have_base = false;
  std::error_code ec;
  for (auto it = listing.snapshots.rbegin(); it != listing.snapshots.rend();
       ++it) {
    const std::string path = snapshot_path(dir, *it);
    std::string diag;
    if (load_snapshot(path, layout, slayout, &base, &diag)) {
      have_base = true;
      break;
    }
    st.diagnostics.push_back(path + ": rejected: " + diag);
    std::filesystem::remove(path, ec);
  }

  if (!have_base && (listing.wals.empty() || listing.wals.front() != 0)) {
    // No usable snapshot and no complete segment chain from the beginning:
    // the surviving files cannot reproduce any consistent cut. Start fresh.
    st.diagnostics.push_back(
        dir + ": no valid snapshot and the WAL chain does not start at "
              "segment 0; discarding unrecoverable state");
    remove_persist_files(dir);
    return st;
  }

  std::unordered_set<TaskKey> committed_set;
  if (have_base) {
    store.restore(base.store);
    st.committed = std::move(base.committed);
    st.staged = std::move(base.staged);
    st.snapshot_loaded = 1;
    committed_set.insert(st.committed.begin(), st.committed.end());
  }

  // Replay the segment chain from the base. Any stop — bad header, bad
  // record, gap in the chain — fixes the resume point; later artifacts
  // describe history past the cut and are deleted below.
  std::uint64_t seq = have_base ? base.seq : 0;
  st.seq = seq;
  st.wal_valid_bytes = 0;
  for (;; ++seq) {
    st.seq = seq;
    if (!contains(listing.wals, seq)) {
      st.wal_valid_bytes = 0;  // appends start a fresh segment
      break;
    }
    const std::string path = wal_path(dir, seq);
    WalScan scan = read_wal_segment(path, layout, seq);
    if (!scan.header_ok) {
      st.diagnostics.push_back(path + ": rejected: " + scan.diagnostic);
      st.wal_valid_bytes = 0;  // segment is rewritten from scratch
      break;
    }
    bool stopped = false;
    std::uint64_t good_end = kFileHeaderBytes;
    for (const WalRecord& rec : scan.records) {
      std::string diag;
      if (!apply_record(store, slayout, rec, scan.raw, n_result_slots,
                        &diag)) {
        st.diagnostics.push_back(path + ": replay stopped: " + diag);
        stopped = true;
        break;
      }
      for (const auto& [index, value] : rec.staged)
        st.staged.emplace_back(index, value);
      if (committed_set.insert(rec.key).second) st.committed.push_back(rec.key);
      ++st.replayed_records;
      good_end = rec.end_offset;
    }
    if (stopped) {
      st.wal_valid_bytes = good_end;
      break;
    }
    if (scan.discarded_bytes > 0) {
      st.diagnostics.push_back(
          path + ": discarded torn/corrupt tail (" +
          std::to_string(scan.discarded_bytes) + " bytes): " +
          scan.diagnostic);
      st.wal_valid_bytes = scan.valid_bytes;
      break;
    }
    if (!contains(listing.wals, seq + 1)) {
      st.wal_valid_bytes = scan.valid_bytes;  // keep appending here
      break;
    }
  }

  // Drop artifacts describing history past the resume cut: later WAL
  // segments assume records we rejected, and a snapshot numbered past the
  // cut claims segments we did not fully replay.
  for (std::uint64_t s : listing.wals)
    if (s > st.seq) std::filesystem::remove(wal_path(dir, s), ec);
  for (std::uint64_t s : listing.snapshots)
    if (s > st.seq) std::filesystem::remove(snapshot_path(dir, s), ec);

  st.resumed = st.snapshot_loaded != 0 || st.replayed_records > 0;

  // Re-apply staged app results (digest-board values) into the restarted
  // process's slots; indices were validated against the declared range.
  Atomic<std::uint64_t>* slots = problem.result_slots();
  if (slots != nullptr) {
    for (const auto& [index, value] : st.staged)
      if (index < n_result_slots)
        slots[index].store(value, std::memory_order_relaxed);
  }
  return st;
}

}  // namespace ftdag::persist
