#pragma once
// CommitPipeline: the pipelined group-commit WAL behind WalDurability.
//
// PR 5 journaled every completion synchronously under one writer mutex, so
// workers serialized on serialization + write(2) and, under `--wal-sync
// every`, paid a full fsync per task. The pipeline takes all of that off
// the worker hot path:
//
//   worker:  serialize the record           (no shared state touched)
//            publish to the commit ring     (one relaxed fetch_add + one
//                                            release store)
//            [kEvery only] wait until the durable epoch covers the record
//
//   journal: drain the ring in sequence order, coalesce contiguous records
//            into large writev(2) batches, fold each into the snapshot
//            shadow, issue ONE fsync per batch (group commit), then
//            release-publish `durable_seq` — a single fsync acknowledges
//            every worker whose record the batch covered.
//
// Ordering invariant (the §9 prefix rule, re-derived for the ring): the
// global sequence number is assigned by `enqueue_pos_.fetch_add` inside
// publish(), which the engine calls BEFORE it release-publishes the task's
// Computed status; a consumer task only reaches its own publish() after
// acquire-loading that status. fetch_add on a single atomic is totally
// ordered, and producer-publish -> status-release -> consumer-acquire ->
// consumer-publish chains happens-before through it — so a consumer's
// sequence number is always strictly greater than each flow producer's.
// The journal writes records to disk in sequence order, therefore every
// on-disk prefix is still a dependency-closed consistent cut, and a crash
// loses only a sequence-suffix (the unflushed tail).
//
// Backpressure: the ring is bounded; a producer that laps the journal
// spins briefly on its slot's stamp and then blocks on a condvar until the
// journal frees the slot, so memory stays bounded under any publish rate.
//
// Sync policies over the same pipeline:
//   kEvery  publish, then wait_durable(seq): the commit hook returns only
//           after a group fsync covered the record. The published status
//           still implies "on stable storage", at ~1/batch the fsync cost.
//   kBatch  fire-and-forget publish; the journal fsyncs when
//           `batch_records` records accumulate or `flush_interval_us`
//           elapses with an unsynced tail, whichever comes first.
//   kNone   fire-and-forget publish; write(2) only, no fsync.
// Under every policy a crash can now lose the suffix still in the ring
// (user-space memory) — see DESIGN.md §9 for the rewritten durable-when
// table; kNone/kBatch no longer get the "process death loses nothing"
// guarantee the synchronous path gave them for free.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blocks/block_store.hpp"
#include "check/sync_shim.hpp"
#include "graph/task_key.hpp"
#include "persist/checkpoint_writer.hpp"
#include "persist/restart_loader.hpp"
#include "persist/wal.hpp"

namespace ftdag::persist {

// When committed records are forced to stable storage (see the policy
// table above; parse/name helpers live in durability.cpp).
enum class WalSync {
  kNone = 0,   // write(2) only, no fsync
  kBatch = 1,  // group fsync per batch_records / flush_interval_us
  kEvery = 2,  // commit hook acks only after a group fsync covers the record
};

// Returns true and fills `out` for "none"/"batch"/"every".
bool parse_wal_sync(const std::string& text, WalSync* out);
const char* wal_sync_name(WalSync sync);

struct DurabilityOptions {
  // Directory for snapshots and WAL segments. Empty disables durability
  // entirely (the executor then instantiates the NoDurability engine).
  std::string dir;

  WalSync sync = WalSync::kBatch;
  std::uint32_t batch_records = 32;  // group-commit threshold under kBatch

  // Journal flush cadence under kBatch: an unsynced tail older than this
  // is fsynced even when batch_records has not accumulated, bounding the
  // machine-death loss window in time as well as in records.
  std::uint64_t flush_interval_us = 500;

  // Commit-ring slots (rounded up to a power of two). Bounds how far the
  // workers can run ahead of the journal thread before backpressure.
  std::uint32_t ring_capacity = 256;

  // Emit a snapshot (and rotate the WAL) every N committed records; 0
  // disables snapshots, leaving a single ever-growing WAL segment.
  std::uint64_t snapshot_every = 0;

  // Load persisted state on construction. When false, existing persist
  // artifacts in `dir` are deleted and the run starts fresh.
  bool resume = true;

  // Crash-test hook: SIGKILL the process from inside the journal thread
  // immediately after it appends this many records — after the write(2),
  // before any fsync, with the rest of the drained batch (and whatever is
  // still in the ring) unwritten. 0 disables. Used by the crash-restart
  // harness to stop at exact on-disk record counts.
  std::uint64_t crash_after_records = 0;

  // Crash-test hook: after crash_after_records full records, append only
  // the first half of the next record's bytes before the SIGKILL, leaving
  // a deliberately torn tail the restart scan must discard.
  bool crash_torn_tail = false;

  bool enabled() const { return !dir.empty(); }
};

// One publishable completion. The worker serializes the record (framing
// included) before publish; the structured parts ride along so the journal
// thread can fold the record into the snapshot shadow without decoding.
struct CommitEntry {
  TaskKey key = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;
  std::vector<WalOutputPayload> outputs;
  std::string record;  // encode_wal_record bytes, ready for writev
};

// Journal-side counters, exported into ExecReport by WalDurability::fill.
struct CommitPipelineStats {
  std::uint64_t records = 0;        // records appended this run
  std::uint64_t bytes = 0;          // bytes appended this run
  std::uint64_t fsyncs = 0;         // fsync(2) calls issued
  std::uint64_t flush_batches = 0;  // non-empty drain batches written
  std::uint64_t snapshots = 0;      // snapshot rotations completed
};

class CommitPipeline {
 public:
  // Primes the snapshot shadow from the restart state, opens (or reopens)
  // the active WAL segment, and starts the journal thread. The store must
  // be quiescent (WalDurability constructs this before the walk starts).
  CommitPipeline(const DurabilityOptions& options, std::uint64_t layout,
                 const BlockStore& store, const RestartState& restart);

  // Drains every published record, issues a final sync (unless kNone) and
  // joins the journal thread.
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  // --- worker side -----------------------------------------------------------

  // Publishes one completion to the commit ring and returns its global
  // sequence position (0-based). Blocks only when the ring is full
  // (bounded spin, then condvar).
  std::uint64_t publish(CommitEntry entry);

  // Blocks until the durable epoch covers `pos` (a record is durable once
  // a group fsync covered it). Returns nanoseconds spent waiting; the fast
  // path — epoch already past `pos` — costs one acquire load and returns 0.
  std::uint64_t wait_durable(std::uint64_t pos);

  // Drain barrier: every record published before the call is on disk (in
  // the page cache at least) when it returns. Used by fill() so reported
  // counters cover the whole run, and by tests.
  void quiesce();

  // Counter snapshot; call quiesce() first for end-of-run totals.
  CommitPipelineStats stats() const;

  // Total nanoseconds workers spent blocked in wait_durable.
  std::uint64_t ack_wait_ns() const {
    return ack_wait_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    // Vyukov-style slot stamp: `pos` = free for the producer of sequence
    // `pos`; `pos + 1` = occupied, ready for the journal; `pos + capacity`
    // = consumed, free for the producer of `pos + capacity`.
    Atomic<std::uint64_t> stamp{0};
    CommitEntry entry;
  };

  void journal_main();
  // Appends `batch` (first sequence position `first`), folds it into the
  // snapshot shadow, honours the crash hooks and snapshot cadence, then
  // runs the sync policy. Journal thread only.
  void write_batch(std::vector<CommitEntry>& batch, std::uint64_t first);
  // Group fsync covering the first `written` records + epoch publish.
  void fsync_now(std::uint64_t written, CommitPipelineStats& delta);
  // Snapshot emission + fresh WAL segment (journal thread only).
  void rotate(std::uint64_t written, CommitPipelineStats& delta);

  DurabilityOptions options_;
  std::uint64_t layout_ = 0;
  std::uint64_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;

  Atomic<std::uint64_t> enqueue_pos_{0};  // next sequence position
  Atomic<std::uint64_t> written_seq_{0};  // journal-private drain cursor
  Atomic<std::uint64_t> durable_seq_{0};  // records covered by a fsync
  Atomic<std::uint64_t> ack_wait_ns_{0};
  Atomic<bool> journal_idle_{false};

  // Handshake lock for the condvars only: the parked journal, producers
  // blocked on a full ring, kEvery ack waiters, and quiesce(). The data
  // path (publish/drain) never takes it. `stats_` is folded under it once
  // per batch so stats() readers never see torn counters.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // journal parks here
  std::condition_variable state_cv_;  // waiters for space/epoch progress
  bool stop_ = false;
  CommitPipelineStats stats_;

  // Journal-thread-owned after construction (no lock: single owner).
  WalWriter writer_;
  CheckpointWriter checkpoint_;
  std::uint64_t records_written_ = 0;  // appends this process (crash hooks)
  std::uint32_t unsynced_ = 0;
  std::uint64_t since_snapshot_ = 0;
  std::chrono::steady_clock::time_point last_flush_;

  std::thread journal_;
};

}  // namespace ftdag::persist
