#pragma once
// Append-only write-ahead log of committed task completions.
//
// One record per committed compute: the task key, the staged result values
// (as app-slot indices, pointer-free), and every output block version with
// its full payload and content digest. A record is appended *before* the
// task's Computed status is published, and a consumer only reads outputs
// after observing that status — so a record always follows the records of
// all its flow producers, and therefore every prefix of the log is a
// dependency-closed consistent cut of the computation. Replay that stops
// at the first bad record (torn tail after a crash, or a flipped bit)
// yields exactly such a prefix; the traversal engine then re-executes the
// suffix like any other recovery.
//
// Framing: a fixed file header (format.hpp), then records of
//   [record magic u32][payload length u32][payload CRC-32 u32][payload]
// The CRC covers the payload only; the magic + length let the reader
// resynchronize its diagnostics (not its state — replay never skips over
// a bad record, by the prefix rule above).
//
// Durability knobs (WalSync, see durability.hpp): records are written with
// plain write(2), which survives *process* death in the page cache; fsync
// policy `every`/`batch` additionally bounds what machine death can lose.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/task_key.hpp"
#include "persist/format.hpp"

namespace ftdag::persist {

// Decoded WAL record.
struct WalRecord {
  struct Output {
    std::uint64_t block = 0;
    std::uint64_t version = 0;
    std::uint64_t digest = 0;  // BlockStore::hash_bytes of the payload
    std::size_t payload_offset = 0;  // into the segment's raw bytes
    std::size_t payload_size = 0;
  };
  TaskKey key = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;  // index,value
  std::vector<Output> outputs;
  std::size_t end_offset = 0;  // file offset just past this record
};

// One output payload captured for journaling.
struct WalOutputPayload {
  std::uint64_t block = 0;
  std::uint64_t version = 0;
  std::uint64_t digest = 0;
  std::string bytes;
};

// Serializes one record (framing included) ready for WalWriter::append.
std::string encode_wal_record(
    TaskKey key,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& staged,
    const std::vector<WalOutputPayload>& outputs);

// Appender over one WAL segment file. Not thread-safe; a single owner
// serializes appends (the commit pipeline's journal thread is the sole
// writer after construction).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates/overwrites the segment and writes its header.
  bool open_fresh(const std::string& path, std::uint64_t layout,
                  std::uint64_t seq, std::string* error);

  // Reopens an existing segment for appending, discarding everything past
  // `valid_bytes` (the torn tail a prior crash may have left).
  bool open_append(const std::string& path, std::uint64_t valid_bytes,
                   std::string* error);

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t size_bytes() const { return size_; }

  // Appends one encoded record. Returns false on I/O error.
  bool append(const std::string& record);

  // Appends a contiguous run of encoded records, coalescing them into as
  // few writev(2) calls as the iovec limit allows (the group-commit batch
  // path). Returns false on I/O error.
  bool append_batch(const std::string* const* records, std::size_t n);

  // Crash-test hook: appends only the first `bytes` bytes of `record`,
  // leaving a deliberately torn tail for the restart scan to discard.
  bool append_prefix(const std::string& record, std::size_t bytes);

  // fsync(2) on the segment; a no-op when nothing was appended since the
  // last sync.
  void sync();

  void close();

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  bool dirty_ = false;
};

// Result of scanning one WAL segment.
struct WalScan {
  bool header_ok = false;
  std::uint64_t seq = 0;
  std::vector<WalRecord> records;
  std::string raw;                  // backing bytes for Output payload views
  std::uint64_t valid_bytes = 0;    // prefix length ending at the last good
                                    // record (>= header size when header_ok)
  std::uint64_t discarded_bytes = 0;
  std::string diagnostic;           // why the scan stopped early, if it did
};

// Reads a whole segment, validating header, framing, and per-record CRC.
// Stops at the first bad record; everything before it is returned.
WalScan read_wal_segment(const std::string& path, std::uint64_t expect_layout,
                         std::uint64_t expect_seq);

}  // namespace ftdag::persist
