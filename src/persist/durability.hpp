#pragma once
// WalDurability: the engine's Durability policy backed by src/persist/.
//
// Hooks (called by TraversalEngine under `if constexpr (kDurable)`):
//   try_skip(key, life)   first incarnations of tasks recovered from disk
//                         skip their compute body entirely — outputs and
//                         staged results were already restored. Recovery
//                         incarnations (life > 0) always recompute: a
//                         restored task whose outputs were displaced by
//                         memory reuse re-enters the ordinary
//                         re-execution-chain machinery.
//   is_restored(key)      lets register_or_skip waive the output-liveness
//                         check for restored consumers (they will not read
//                         their inputs, so a displaced-but-committed
//                         predecessor must not trigger spurious recovery).
//   capture(ctx, pending) copies the compute's staged result values out of
//                         the ComputeContext before it dies.
//   on_committed(...)     serializes the completion and publishes it to
//                         the group-commit pipeline *before* the Computed
//                         status is published; the pipeline's sequence
//                         numbering keeps every WAL prefix a
//                         dependency-closed cut (commit_pipeline.hpp).
//                         Under WalSync::kEvery the hook additionally
//                         waits for the durable epoch to cover the record,
//                         so a published status still implies "on stable
//                         storage" — at a group-commit fsync rate instead
//                         of one fsync per task.
//
// The PR 5 writer mutex is gone: workers never touch the WAL file or the
// snapshot shadow. All file I/O, shadow folds and rotation belong to the
// pipeline's journal thread; the skip-path lookups stay lock-free against
// the immutable restored set.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/sync_shim.hpp"
#include "graph/compute_context.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "persist/commit_pipeline.hpp"
#include "persist/restart_loader.hpp"
#include "persist/wal.hpp"

namespace ftdag::persist {

class WalDurability {
 public:
  static constexpr bool kEnabled = true;

  // Staged result values captured from the ComputeContext before it is
  // destroyed; journaled alongside the outputs.
  struct Pending {
    ComputeContext::StagedResults staged;
  };

  // Loads persisted state (unless options.resume is false), restores the
  // problem's BlockStore and result slots, and starts the journal thread.
  // The store must be in its reset state (the executor constructs this
  // after reset_data()).
  WalDurability(TaskGraphProblem& problem, const DurabilityOptions& options);

  // Drains the pipeline (every published record reaches the file, with a
  // final fsync unless WalSync::kNone) and joins the journal thread.
  ~WalDurability();

  WalDurability(const WalDurability&) = delete;
  WalDurability& operator=(const WalDurability&) = delete;

  // --- engine hooks ----------------------------------------------------------

  bool try_skip(TaskKey key, std::uint64_t life) {
    if (life != 0 || restored_.empty()) return false;
    if (restored_.find(key) == restored_.end()) return false;
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool is_restored(TaskKey key) const {
    return !restored_.empty() && restored_.find(key) != restored_.end();
  }

  void capture(const ComputeContext& ctx, Pending& pending) {
    pending.staged = ctx.staged_results();
  }

  // Journals one committed task. Reads the committed outputs back from the
  // store (throwing DataBlockFault into the engine's recovery path if a
  // concurrent recovery displaced or an injector corrupted them — such
  // outputs must not be persisted), serializes the record, publishes it to
  // the commit ring, and — under WalSync::kEvery — waits for the durable
  // epoch to cover it.
  void on_committed(TaskGraphProblem& problem, BlockStore& store, TaskKey key,
                    const Pending& pending);

  // Quiesces the pipeline (all published records written) and exports the
  // journal counters, so reported totals always cover the whole run.
  void fill(ExecReport& report);

  // Restart outcome of this instance's construction (diagnostics included).
  const RestartState& restart() const { return restart_; }

 private:
  TaskGraphProblem& problem_;
  DurabilityOptions options_;
  std::uint64_t layout_ = 0;
  RestartState restart_;
  // Immutable after construction; lock-free reads from every worker.
  std::unordered_set<TaskKey> restored_;
  Atomic<std::uint64_t> skipped_{0};

  // Constructed after the restart state is loaded (engaged for the whole
  // object lifetime thereafter).
  std::optional<CommitPipeline> pipeline_;
};

}  // namespace ftdag::persist
