#pragma once
// WalDurability: the engine's Durability policy backed by src/persist/.
//
// Hooks (called by TraversalEngine under `if constexpr (kDurable)`):
//   try_skip(key, life)   first incarnations of tasks recovered from disk
//                         skip their compute body entirely — outputs and
//                         staged results were already restored. Recovery
//                         incarnations (life > 0) always recompute: a
//                         restored task whose outputs were displaced by
//                         memory reuse re-enters the ordinary
//                         re-execution-chain machinery.
//   is_restored(key)      lets register_or_skip waive the output-liveness
//                         check for restored consumers (they will not read
//                         their inputs, so a displaced-but-committed
//                         predecessor must not trigger spurious recovery).
//   capture(ctx, pending) copies the compute's staged result values out of
//                         the ComputeContext before it dies.
//   on_committed(...)     journals the completion to the WAL *before* the
//                         Computed status is published — the ordering that
//                         makes every WAL prefix a dependency-closed cut
//                         (see wal.hpp).
//
// Locking: one writer mutex serializes WAL appends, fsyncs, shadow-frontier
// folds, and snapshot rotation. File I/O can block for milliseconds, so
// this is a real (annotated) mutex, not a spin lock; the skip-path lookups
// stay lock-free against the immutable restored set.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/sync_shim.hpp"
#include "graph/compute_context.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "persist/checkpoint_writer.hpp"
#include "persist/restart_loader.hpp"
#include "persist/wal.hpp"
#include "support/thread_safety.hpp"

namespace ftdag::persist {

// When committed records are forced to stable storage.
enum class WalSync {
  kNone = 0,   // write(2) only: survives process death via the page cache
  kBatch = 1,  // fsync every batch_records appends (bounded machine-death loss)
  kEvery = 2,  // fsync per record: a published task is always on disk
};

// Returns true and fills `out` for "none"/"batch"/"every".
bool parse_wal_sync(const std::string& text, WalSync* out);
const char* wal_sync_name(WalSync sync);

struct DurabilityOptions {
  // Directory for snapshots and WAL segments. Empty disables durability
  // entirely (the executor then instantiates the NoDurability engine).
  std::string dir;

  WalSync sync = WalSync::kBatch;
  std::uint32_t batch_records = 32;  // fsync cadence under WalSync::kBatch

  // Emit a snapshot (and rotate the WAL) every N committed records; 0
  // disables snapshots, leaving a single ever-growing WAL segment.
  std::uint64_t snapshot_every = 0;

  // Load persisted state on construction. When false, existing persist
  // artifacts in `dir` are deleted and the run starts fresh.
  bool resume = true;

  // Crash-test hook: SIGKILL the process from inside on_committed once this
  // many records were appended by this process. 0 disables. Used by the
  // crash-restart harness to stop at exact commit points.
  std::uint64_t crash_after_records = 0;

  bool enabled() const { return !dir.empty(); }
};

// std::mutex with clang thread-safety capability annotations (the repo's
// CheckMutexGuard pattern, but blocking — WAL appends hold it across file
// I/O, where spinning would burn a core per waiter).
class FTDAG_CAPABILITY("mutex") WalMutex {
 public:
  void lock() FTDAG_ACQUIRE() { m_.lock(); }
  void unlock() FTDAG_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

class FTDAG_SCOPED_CAPABILITY WalMutexGuard {
 public:
  explicit WalMutexGuard(WalMutex& m) FTDAG_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~WalMutexGuard() FTDAG_RELEASE() { m_.unlock(); }
  WalMutexGuard(const WalMutexGuard&) = delete;
  WalMutexGuard& operator=(const WalMutexGuard&) = delete;

 private:
  WalMutex& m_;
};

class WalDurability {
 public:
  static constexpr bool kEnabled = true;

  // Staged result values captured from the ComputeContext before it is
  // destroyed; journaled alongside the outputs.
  struct Pending {
    ComputeContext::StagedResults staged;
  };

  // Loads persisted state (unless options.resume is false) and restores
  // the problem's BlockStore and result slots. The store must be in its
  // reset state (the executor constructs this after reset_data()).
  WalDurability(TaskGraphProblem& problem, const DurabilityOptions& options);
  ~WalDurability();

  WalDurability(const WalDurability&) = delete;
  WalDurability& operator=(const WalDurability&) = delete;

  // --- engine hooks ----------------------------------------------------------

  bool try_skip(TaskKey key, std::uint64_t life) {
    if (life != 0 || restored_.empty()) return false;
    if (restored_.find(key) == restored_.end()) return false;
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool is_restored(TaskKey key) const {
    return !restored_.empty() && restored_.find(key) != restored_.end();
  }

  void capture(const ComputeContext& ctx, Pending& pending) {
    pending.staged = ctx.staged_results();
  }

  // Journals one committed task. Reads the committed outputs back from the
  // store (throwing DataBlockFault into the engine's recovery path if a
  // concurrent recovery displaced or an injector corrupted them — such
  // outputs must not be persisted), then appends + syncs + folds into the
  // snapshot shadow under the writer lock.
  void on_committed(TaskGraphProblem& problem, BlockStore& store, TaskKey key,
                    const Pending& pending) FTDAG_EXCLUDES(lock_);

  void fill(ExecReport& report) FTDAG_EXCLUDES(lock_);

  // Restart outcome of this instance's construction (diagnostics included).
  const RestartState& restart() const { return restart_; }

 private:
  void rotate() FTDAG_REQUIRES(lock_);

  TaskGraphProblem& problem_;
  DurabilityOptions options_;
  std::uint64_t layout_ = 0;
  RestartState restart_;
  // Immutable after construction; lock-free reads from every worker.
  std::unordered_set<TaskKey> restored_;
  Atomic<std::uint64_t> skipped_{0};

  WalMutex lock_;
  WalWriter writer_ FTDAG_GUARDED_BY(lock_);
  CheckpointWriter checkpoint_ FTDAG_GUARDED_BY(lock_);
  std::uint64_t wal_records_ FTDAG_GUARDED_BY(lock_) = 0;
  std::uint64_t wal_bytes_ FTDAG_GUARDED_BY(lock_) = 0;
  std::uint64_t snapshots_written_ FTDAG_GUARDED_BY(lock_) = 0;
  std::uint32_t unsynced_ FTDAG_GUARDED_BY(lock_) = 0;
  std::uint64_t since_snapshot_ FTDAG_GUARDED_BY(lock_) = 0;
};

}  // namespace ftdag::persist
