#pragma once
// RestartLoader: reconstructs the committed frontier from disk.
//
// Picks the newest snapshot that validates (falling back to older ones,
// then to an empty base, when validation fails), replays the WAL segment
// chain on top of it through the ordinary BlockStore write protocol, and
// stops at the first bad record — the torn tail a crash left, a flipped
// bit, or a structural mismatch. Because every WAL prefix is a
// dependency-closed cut (see wal.hpp), the resulting store state plus
// committed-key set is always a state the original process passed
// through; the traversal engine re-executes everything after the cut.
//
// Every rejected artifact produces a human-readable diagnostic; nothing
// is ever silently resumed from bad state.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/task_graph_problem.hpp"

namespace ftdag::persist {

struct RestartState {
  // True when any committed state was recovered (snapshot or WAL records).
  bool resumed = false;

  // Active WAL segment and the byte offset appends must continue at. A
  // valid_bytes of 0 means the segment must be (re)created fresh.
  std::uint64_t seq = 0;
  std::uint64_t wal_valid_bytes = 0;

  // Committed tasks, in replay order, and the staged app-result values
  // ((slot index, value) pairs) their records carried.
  std::vector<TaskKey> committed;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> staged;

  std::uint64_t replayed_records = 0;
  std::uint64_t snapshot_loaded = 0;  // 1 when a snapshot seeded the state
  std::vector<std::string> diagnostics;  // one per rejected/limited artifact
};

// Loads persisted state from `dir` into the problem's BlockStore (which
// must be reset — all states Absent) and applies recovered staged values
// to the problem's result slots. Stale artifacts past the replay stop
// point are deleted so the resumed process appends a single linear
// history.
RestartState load_restart_state(const std::string& dir,
                                TaskGraphProblem& problem);

}  // namespace ftdag::persist
