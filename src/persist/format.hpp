#pragma once
// On-disk format primitives shared by the durability subsystem
// (src/persist/): CRC-32 integrity codes, little-endian serialization
// helpers, file naming, and the store-layout signature that ties every
// persisted artifact to the block layout it was taken from.
//
// Both persisted artifacts — snapshots (snapshot.hpp) and write-ahead-log
// segments (wal.hpp) — are sequences of bytes produced through these
// helpers, so torn or bit-flipped files are detected by construction:
// every record and every snapshot carries a CRC over its content, and
// every file header carries the format version plus the layout signature
// of the producing BlockStore. A reader that observes any mismatch
// rejects the artifact with a diagnostic instead of resuming from it.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "blocks/block_store.hpp"

namespace ftdag::persist {

// File magics ("FTSN", "FTWL") and the per-record magic ("FTRC"), read as
// little-endian u32 so a hexdump of the first bytes is self-describing.
inline constexpr std::uint32_t kSnapshotMagic = 0x4E535446u;  // "FTSN"
inline constexpr std::uint32_t kWalMagic = 0x4C575446u;       // "FTWL"
inline constexpr std::uint32_t kRecordMagic = 0x43525446u;    // "FTRC"

// Bumped on any incompatible change to the snapshot or WAL layout.
inline constexpr std::uint32_t kFormatVersion = 1;

// Fixed size of the file header shared by snapshots and WAL segments:
// magic u32, format version u32, layout signature u64, sequence u64.
inline constexpr std::size_t kFileHeaderBytes = 24;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` allows
// incremental computation over discontiguous pieces.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

// --- little-endian serialization -------------------------------------------

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
void put_bytes(std::string& out, const void* p, std::size_t n);

// Bounds-checked reader over a byte range. Any out-of-range read clears
// `ok` and returns zeroes; callers check ok once at the end, which keeps
// record-decoding loops free of per-field error handling.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : p_(data), size_(size) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool bytes(void* dst, std::size_t n);
  // Skips `n` bytes, exposing the region's offset for zero-copy access.
  std::size_t skip(std::size_t n);

  bool ok() const { return ok_; }
  bool done() const { return ok_ && at_ == size_; }
  std::size_t at() const { return at_; }
  std::size_t remaining() const { return ok_ ? size_ - at_ : 0; }

 private:
  const char* p_;
  std::size_t size_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

// --- file naming & directory scan ------------------------------------------

std::string snapshot_path(const std::string& dir, std::uint64_t seq);
std::string wal_path(const std::string& dir, std::uint64_t seq);

// Sequence numbers of the persist artifacts present in `dir`, each sorted
// ascending. Files not matching the snap-/wal- naming are ignored, which
// also makes remove_persist_files below safe to point at a shared tmpdir.
struct DirListing {
  std::vector<std::uint64_t> snapshots;
  std::vector<std::uint64_t> wals;
};
DirListing scan_dir(const std::string& dir);

// Deletes every artifact matching the persist naming scheme (and nothing
// else). Used by resume=false runs to guarantee a fresh start.
void remove_persist_files(const std::string& dir);

// --- layout signature -------------------------------------------------------

// Hash over everything the persisted byte layout depends on: retention,
// checksum mode, and each block's size/version-count/slot-count. A restart
// against a differently-shaped problem (or different store settings) fails
// this check and starts fresh instead of replaying bytes into the wrong
// slots.
std::uint64_t layout_signature(const BlockStore& store);

// Precomputed offsets of each block's region inside a BlockStore::Snapshot,
// in store block order. Lets the checkpoint writer fold WAL records into an
// in-memory shadow snapshot without re-deriving the layout per record.
struct SnapshotLayout {
  struct BlockInfo {
    std::size_t bytes = 0;       // payload bytes per slot
    Version num_versions = 0;
    Version slots = 0;
    std::size_t byte_offset = 0;   // into Snapshot::bytes (slot-indexed)
    std::size_t state_offset = 0;  // into Snapshot::states (version-indexed)
  };
  std::vector<BlockInfo> blocks;
  std::size_t total_bytes = 0;
  std::size_t total_versions = 0;
};
SnapshotLayout snapshot_layout(const BlockStore& store);

// Serialized file header shared by snapshots and WAL segments.
std::string encode_file_header(std::uint32_t magic, std::uint64_t layout,
                               std::uint64_t seq);
// Decodes and validates a header; on failure fills `diagnostic` and
// returns false. `seq_out` receives the stored sequence number.
bool decode_file_header(const char* data, std::size_t size,
                        std::uint32_t expect_magic,
                        std::uint64_t expect_layout, std::uint64_t* seq_out,
                        std::string* diagnostic);

}  // namespace ftdag::persist
