#include "persist/format.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace ftdag::persist {
namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entries[i] = c;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc32Table& t = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = t.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out.append(b, 8);
}

void put_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

std::uint32_t ByteReader::u32() {
  if (!ok_ || size_ - at_ < 4) {
    ok_ = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[at_ + i]))
         << (8 * i);
  at_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!ok_ || size_ - at_ < 8) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[at_ + i]))
         << (8 * i);
  at_ += 8;
  return v;
}

bool ByteReader::bytes(void* dst, std::size_t n) {
  if (!ok_ || size_ - at_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(dst, p_ + at_, n);
  at_ += n;
  return true;
}

std::size_t ByteReader::skip(std::size_t n) {
  if (!ok_ || size_ - at_ < n) {
    ok_ = false;
    return 0;
  }
  const std::size_t off = at_;
  at_ += n;
  return off;
}

namespace {

std::string numbered(const std::string& dir, const char* stem,
                     std::uint64_t seq, const char* ext) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%06llu.%s", stem,
                static_cast<unsigned long long>(seq), ext);
  return dir + "/" + buf;
}

// Parses "<stem>-NNNNNN.<ext>"; returns false for anything else.
bool parse_numbered(const std::string& name, const char* stem,
                    const char* ext, std::uint64_t* seq) {
  const std::string prefix = std::string(stem) + "-";
  const std::string suffix = std::string(".") + ext;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  std::uint64_t v = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

}  // namespace

std::string snapshot_path(const std::string& dir, std::uint64_t seq) {
  return numbered(dir, "snap", seq, "ftsnap");
}

std::string wal_path(const std::string& dir, std::uint64_t seq) {
  return numbered(dir, "wal", seq, "ftwal");
}

DirListing scan_dir(const std::string& dir) {
  DirListing out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t seq = 0;
    if (parse_numbered(name, "snap", "ftsnap", &seq))
      out.snapshots.push_back(seq);
    else if (parse_numbered(name, "wal", "ftwal", &seq))
      out.wals.push_back(seq);
  }
  std::sort(out.snapshots.begin(), out.snapshots.end());
  std::sort(out.wals.begin(), out.wals.end());
  return out;
}

void remove_persist_files(const std::string& dir) {
  const DirListing listing = scan_dir(dir);
  std::error_code ec;
  for (std::uint64_t s : listing.snapshots)
    std::filesystem::remove(snapshot_path(dir, s), ec);
  for (std::uint64_t s : listing.wals)
    std::filesystem::remove(wal_path(dir, s), ec);
}

std::uint64_t layout_signature(const BlockStore& store) {
  std::string buf;
  put_u32(buf, kFormatVersion);
  put_u32(buf, store.retention());
  put_u32(buf, store.checksum_mode() ? 1u : 0u);
  put_u64(buf, store.block_count());
  for (BlockId b = 0; b < store.block_count(); ++b) {
    put_u64(buf, store.block_bytes(b));
    put_u32(buf, store.num_versions(b));
    put_u32(buf, store.slot_count(b));
  }
  // Two independent CRCs widen the signature to 64 bits; collisions would
  // require both to collide simultaneously.
  const std::uint32_t lo = crc32(buf.data(), buf.size());
  const std::uint32_t hi = crc32(buf.data(), buf.size(), 0xA5A5A5A5u);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

SnapshotLayout snapshot_layout(const BlockStore& store) {
  SnapshotLayout out;
  out.blocks.reserve(store.block_count());
  for (BlockId b = 0; b < store.block_count(); ++b) {
    SnapshotLayout::BlockInfo info;
    info.bytes = store.block_bytes(b);
    info.num_versions = store.num_versions(b);
    info.slots = store.slot_count(b);
    info.byte_offset = out.total_bytes;
    info.state_offset = out.total_versions;
    out.total_bytes += info.bytes * info.slots;
    out.total_versions += info.num_versions;
    out.blocks.push_back(info);
  }
  return out;
}

std::string encode_file_header(std::uint32_t magic, std::uint64_t layout,
                               std::uint64_t seq) {
  std::string out;
  put_u32(out, magic);
  put_u32(out, kFormatVersion);
  put_u64(out, layout);
  put_u64(out, seq);
  return out;
}

bool decode_file_header(const char* data, std::size_t size,
                        std::uint32_t expect_magic,
                        std::uint64_t expect_layout, std::uint64_t* seq_out,
                        std::string* diagnostic) {
  if (size < kFileHeaderBytes) {
    *diagnostic = "file shorter than its header";
    return false;
  }
  ByteReader r(data, size);
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const std::uint64_t layout = r.u64();
  const std::uint64_t seq = r.u64();
  if (magic != expect_magic) {
    *diagnostic = "bad magic (not a persist artifact or corrupted header)";
    return false;
  }
  if (version != kFormatVersion) {
    *diagnostic = "unsupported format version";
    return false;
  }
  if (layout != expect_layout) {
    *diagnostic =
        "layout signature mismatch (artifact from a different problem shape "
        "or store configuration)";
    return false;
  }
  *seq_out = seq;
  return true;
}

}  // namespace ftdag::persist
