#include "graph/graph_metrics.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/assert.hpp"

namespace ftdag {

GraphMetrics analyze_graph(const TaskGraphProblem& problem) {
  GraphMetrics m;

  // Reverse-reachability sweep from the sink, mirroring how the dynamic
  // scheduler discovers the graph. Iterative to survive deep DP chains.
  std::unordered_map<TaskKey, std::size_t> depth;  // longest path ending here
  std::vector<TaskKey> order;                      // reverse topological
  depth.reserve(1 << 16);

  struct Frame {
    TaskKey key;
    KeyList preds;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::unordered_map<TaskKey, bool> done;  // false = on stack (grey)

  stack.push_back({problem.sink(), {}, 0});
  problem.predecessors(problem.sink(), stack.back().preds);
  done[problem.sink()] = false;

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < f.preds.size()) {
      TaskKey p = f.preds[f.next++];
      auto it = done.find(p);
      if (it == done.end()) {
        done[p] = false;
        stack.push_back({p, {}, 0});
        problem.predecessors(p, stack.back().preds);
      } else {
        FTDAG_ASSERT(it->second, "cycle detected in task graph");
      }
      continue;
    }
    // Post-order: all predecessors finished.
    std::size_t longest = 0;
    for (TaskKey p : f.preds) longest = std::max(longest, depth[p]);
    depth[f.key] = longest + 1;
    m.edges += f.preds.size();
    m.max_in_degree = std::max(m.max_in_degree, f.preds.size());
    if (f.preds.empty()) ++m.sources;
    done[f.key] = true;
    order.push_back(f.key);
    stack.pop_back();
  }

  m.tasks = order.size();
  m.span = depth[problem.sink()];

  // Out-degrees, plus predecessor/successor consistency checks.
  for (TaskKey key : order) {
    KeyList succs;
    problem.successors(key, succs);
    m.max_out_degree = std::max(m.max_out_degree, succs.size());
#ifndef NDEBUG
    for (TaskKey s : succs) {
      KeyList back;
      problem.predecessors(s, back);
      FTDAG_ASSERT(back.contains(key),
                   "successor list inconsistent with predecessor list");
    }
#endif
  }
  return m;
}

}  // namespace ftdag
