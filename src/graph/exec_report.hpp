#pragma once
// ExecReport: the uniform per-run outcome and counter record shared by
// every executor. All fields are zero-initialized, and every engine
// instantiation populates them through the same ObservationPolicy
// (src/engine/observation.hpp), so counters a given configuration never
// touches read as real zeroes — never as unset memory.

#include <cstdint>

#include "runtime/sched_stats.hpp"

namespace ftdag {

// Task execution status (Section III). Ordering matters: the scheduler
// compares `status < kComputed`.
enum class TaskStatus : std::uint8_t {
  kVisited = 0,    // inserted into the hash map, not yet computed
  kComputed = 1,   // compute function finished
  kCompleted = 2,  // all enqueued successors notified
};

struct ExecReport {
  double seconds = 0.0;

  std::uint64_t tasks_discovered = 0;  // distinct keys inserted
  std::uint64_t computes = 0;          // compute-body completions
  std::uint64_t re_executed = 0;       // computes beyond the first, per key

  // Fault-tolerant executor only:
  std::uint64_t faults_caught = 0;  // exceptions observed by the runtime
  std::uint64_t recoveries = 0;     // task replacements (RecoverTask)
  std::uint64_t resets = 0;         // ResetNode invocations
  std::uint64_t injected = 0;       // faults the injector actually fired

  // Replication subsystem (src/replication/), all zero with policy off:
  std::uint64_t replicated = 0;         // shadow replica runs
  std::uint64_t digest_mismatches = 0;  // votes where replica != published
  std::uint64_t votes_resolved = 0;     // mismatches a third run settled in
                                        // the primary's favour (no recovery)

  // Durability subsystem (src/persist/), all zero with the policy off:
  std::uint64_t wal_records = 0;     // completions journaled this run
  std::uint64_t wal_bytes = 0;       // bytes appended to the WAL this run
  std::uint64_t snapshots_written = 0;  // frontier snapshots emitted
  std::uint64_t tasks_skipped_on_restart = 0;  // computes skipped because
                                               // the task was restored
  // Group-commit pipeline (commit_pipeline.hpp) — the observability knobs
  // for fsync coalescing: fsyncs << records means group commit is working.
  std::uint64_t wal_fsyncs = 0;         // fsync(2) calls the journal issued
  std::uint64_t wal_flush_batches = 0;  // non-empty drain batches written
  std::uint64_t wal_ack_wait_ns = 0;    // total ns workers waited for the
                                        // durable epoch (WalSync::kEvery)

  // Checkpoint/restart comparator only (the CheckpointRetention policy):
  std::uint64_t levels = 0;       // topological levels in the BSP schedule
  std::uint64_t checkpoints = 0;  // coordinated snapshots taken
  std::uint64_t rollbacks = 0;    // global rollbacks triggered by faults
  double checkpoint_seconds = 0.0;  // time spent writing checkpoints
};

}  // namespace ftdag
