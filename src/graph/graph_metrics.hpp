#pragma once
// Static analysis of a task graph: the quantities of the paper's Table I
// (total tasks T, total dependence edges E, critical path length S in tasks)
// plus the degree bound d that appears in the Theorem 2 completion-time
// bound.

#include <cstddef>

#include "graph/task_graph_problem.hpp"

namespace ftdag {

struct GraphMetrics {
  std::size_t tasks = 0;           // T
  std::size_t edges = 0;           // E (sum of in-degrees)
  std::size_t span = 0;            // S: tasks on the longest root->sink path
  std::size_t max_in_degree = 0;   // contributes to d
  std::size_t max_out_degree = 0;  // contributes to d
  std::size_t sources = 0;         // tasks with no predecessors
};

// Expands the graph from the sink via the predecessor function (the same
// reachability the dynamic scheduler performs) and computes the metrics.
// Verifies predecessor/successor consistency in debug builds.
GraphMetrics analyze_graph(const TaskGraphProblem& problem);

}  // namespace ftdag
