#pragma once
// ComputeContext: the window through which a task body touches data blocks.
//
// Besides typed access, it gives the executors three correctness levers:
//  - every plain read is recorded so the executor can *re-validate* all
//    inputs after the body returns; a version displaced or corrupted
//    mid-compute makes finalize() throw and the (possibly garbage) outputs
//    are never published. This closes the read-while-overwritten race the
//    paper's recovery chains create.
//  - writes are staged through BlockStore write tickets: storage is handed
//    out immediately (displacing prior versions, as the reuse model
//    requires, and holding the slot's writer lock) but versions only become
//    Valid in finalize(), after input re-validation succeeds.
//  - in-place read-modify-write updates (LU/Cholesky trailing updates, FW
//    stages under retention 1) go through update(), which validates the
//    input version *under the slot lock* so a recovery-chain rewrite can
//    never tear the bytes mid-update.
//
// If the body throws, the context's destructor aborts all uncommitted
// tickets: slot locks are released and nothing is published.
//
// The raw storage operations behind the typed accessors are virtual so the
// replication subsystem can substitute a ShadowContext that runs the same
// compute body against scratch buffers (never publishing, never consuming
// inputs) for dual-execution digest voting. Task bodies are written against
// this interface and never observe which concrete context runs them.

#include <atomic>
#include <cstdint>
#include <utility>

#include "check/sync_shim.hpp"
#include "blocks/block_store.hpp"
#include "graph/task_key.hpp"
#include "support/small_vector.hpp"

namespace ftdag {

// Pointer pair returned by update(): `in` is the previous version's data,
// `out` the storage for the new version. They alias when the versions share
// a slot, so the body must only ever derive out[i] from in[i] (plus data
// from other blocks), never from in[j] with j != i after writing out[j].
template <typename T>
struct UpdateRef {
  const T* in;
  T* out;
};

class ComputeContext {
 public:
  ComputeContext(BlockStore& store, TaskKey key) : store_(store), key_(key) {}

  ComputeContext(const ComputeContext&) = delete;
  ComputeContext& operator=(const ComputeContext&) = delete;

  virtual ~ComputeContext() {
    for (WriteTicket& t : tickets_)
      if (t.active) store_.abort(t);
  }

  TaskKey key() const { return key_; }
  BlockStore& store() { return store_; }

  // Read-only view of a Valid block version. Throws DataBlockFault when the
  // version is corrupted, overwritten or missing.
  template <typename T>
  const T* read(BlockId block, Version version) {
    return static_cast<const T*>(raw_read(block, version));
  }

  // Writable storage for (block, version). The version becomes Valid only
  // when finalize() runs.
  template <typename T>
  T* write(BlockId block, Version version) {
    return static_cast<T*>(raw_write(block, version));
  }

  // Read version `from` of a block and produce version `to`. Handles both
  // storage layouts: aliased in-place update when the versions share a slot
  // (validated and consumed under the slot lock), plain read + fresh write
  // otherwise (the read is re-validated at finalize like any other).
  template <typename T>
  UpdateRef<T> update(BlockId block, Version from, Version to) {
    const RawUpdate u = raw_update(block, from, to);
    return {static_cast<const T*>(u.in), static_cast<T*>(u.out)};
  }

  // Stages a result value into app-owned (resilient) memory. Applied only
  // if finalize() succeeds, so a compute that read displaced inputs can
  // never publish a digest derived from torn data. Values must be a pure
  // function of the task's inputs: re-executions then rewrite identical
  // bytes, making concurrent duplicate stores benign.
  void stage_result(Atomic<std::uint64_t>* slot, std::uint64_t value) {
    staged_results_.push_back({slot, value});
  }

  // Executor-side. Re-validates every recorded read (throwing on any input
  // that went bad mid-compute), then commits every staged write and applies
  // staged result stores.
  virtual void finalize() {
    revalidate_reads();
    for (WriteTicket& t : tickets_) store_.commit(t);
    for (const auto& [slot, value] : staged_results_)
      slot->store(value, std::memory_order_relaxed);
  }

  std::size_t reads_recorded() const { return reads_.size(); }
  std::size_t writes_staged() const { return tickets_.size(); }

  // Did any update() consume its input in place (aliased same-slot ticket)?
  // After such a compute the input bytes no longer exist, so a digest vote
  // cannot run a tie-breaking third replica.
  bool consumed_inputs() const { return in_place_updates_ > 0; }

  using StagedResults =
      SmallVector<std::pair<Atomic<std::uint64_t>*, std::uint64_t>, 2>;
  const StagedResults& staged_results() const { return staged_results_; }

 protected:
  // Untyped pointer pair backing update<T>().
  struct RawUpdate {
    const void* in;
    void* out;
  };

  virtual const void* raw_read(BlockId block, Version version) {
    const void* p = store_.read(block, version);
    reads_.push_back({block, version});
    return p;
  }

  virtual void* raw_write(BlockId block, Version version) {
    WriteTicket t = store_.begin_write(block, version);
    tickets_.push_back(t);
    return t.data;
  }

  virtual RawUpdate raw_update(BlockId block, Version from, Version to) {
    if (store_.same_slot(block, from, to)) {
      WriteTicket t = store_.begin_update(block, from, to);
      tickets_.push_back(t);
      ++in_place_updates_;
      return {t.data, t.data};
    }
    const void* in = raw_read(block, from);
    return {in, raw_write(block, to)};
  }

  void revalidate_reads() const {
    for (const auto& [block, version] : reads_)
      store_.revalidate(block, version);
  }

  using Ref = std::pair<BlockId, Version>;

  BlockStore& store_;
  TaskKey key_;
  SmallVector<Ref, 8> reads_;
  SmallVector<WriteTicket, 2> tickets_;
  StagedResults staged_results_;
  std::uint32_t in_place_updates_ = 0;
};

}  // namespace ftdag
