#pragma once
// TaskGraphProblem: the user-facing task graph description.
//
// Mirrors exactly what the paper elicits from users (Section III):
//   - task key           : unique 64-bit identifier per task
//   - sink task          : transitively depends on every other task
//   - predecessors(key)  : ordered list of immediate predecessors
//   - successors(key)    : ordered list of immediate successors (consumed by
//                          the *recovery* path when rebuilding notify arrays)
//   - compute(key)       : the task body, reading/writing versioned blocks
//
// plus the metadata the fault planner and Table I need: full task
// enumeration and the (block, version) outputs of each task.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/sync_shim.hpp"
#include "blocks/block_store.hpp"
#include "graph/task_key.hpp"
#include "support/small_vector.hpp"

namespace ftdag {

class ComputeContext;

// One output version a task produces. `last_version` is the final version
// number the containing block will ever reach; the planner uses it to
// classify tasks as v=0 / v=last / v=rand (Section VI, "Task type").
struct ProducedVersion {
  BlockId block = 0;
  Version version = 0;
  Version last_version = 0;
};

using OutputList = SmallVector<ProducedVersion, 2>;

class TaskGraphProblem {
 public:
  virtual ~TaskGraphProblem() = default;

  virtual std::string name() const = 0;

  // --- structure -----------------------------------------------------------
  virtual TaskKey sink() const = 0;
  virtual void predecessors(TaskKey key, KeyList& out) const = 0;
  virtual void successors(TaskKey key, KeyList& out) const = 0;

  // --- behaviour -----------------------------------------------------------
  // Executes the task body. Reads of corrupted or overwritten input versions
  // throw (the executor catches and recovers). Must be stateless: the same
  // inputs always produce the same outputs (Theorem 1's assumption).
  virtual void compute(TaskKey key, ComputeContext& ctx) = 0;

  // --- metadata ------------------------------------------------------------
  // Appends every task key in the graph (order unspecified).
  virtual void all_tasks(std::vector<TaskKey>& out) const = 0;

  // Block versions produced by `key`. Empty for pure control tasks.
  virtual void outputs(TaskKey key, OutputList& out) const = 0;

  // Distinguishes flow dependences (the consumer reads the producer's data)
  // from ordering-only anti-dependences (write-after-read edges that some
  // memory-reuse schemes need, e.g. Floyd-Warshall's two-version scheme).
  // Recovery treats a *flow* predecessor with overwritten/corrupted outputs
  // as failed and re-executes it; an anti-dependence predecessor's data is
  // expected to be dead by the time the consumer runs, so its block state
  // must not trigger recovery. Defaults to flow (all benchmarks except FW).
  virtual bool data_dependence(TaskKey consumer, TaskKey producer) const {
    (void)consumer;
    (void)producer;
    return true;
  }

  // --- durable restart (src/persist/) --------------------------------------
  // Contiguous range of app-owned resilient result slots (typically a
  // DigestBoard) that task bodies stage into via
  // ComputeContext::stage_result. The durability subsystem journals staged
  // values as (index, value) pairs against this range — raw pointers are
  // meaningless in a restarted process — and re-applies them on restart.
  // Problems without resilient results keep the defaults; tasks that stage
  // outside the declared range are simply never journaled (and therefore
  // recomputed after a restart).
  virtual Atomic<std::uint64_t>* result_slots() { return nullptr; }
  virtual std::size_t result_slot_count() const { return 0; }

  // --- data lifecycle ------------------------------------------------------
  BlockStore& block_store() { return store_; }
  const BlockStore& block_store() const { return store_; }

  // Re-initializes input data and clears all block version states so the
  // graph can be executed again.
  virtual void reset_data() = 0;

  // Checksum of the computed result, for validation against the reference.
  virtual std::uint64_t result_checksum() const = 0;

  // Checksum produced by a plain sequential implementation of the same
  // computation (computed once and cached by implementations).
  virtual std::uint64_t reference_checksum() = 0;

 protected:
  BlockStore store_;
};

// Order-insensitive checksum combiner usable by app implementations.
inline std::uint64_t checksum_accumulate(std::uint64_t acc, std::uint64_t v) {
  // Multiply-xor mix; commutative-free chaining keeps order significant,
  // which is what we want for comparing full result matrices.
  acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc;
}

}  // namespace ftdag
