#pragma once
// Task keys and key lists.
//
// Per the paper (Section III), tasks are referred to by 64-bit keys; the
// runtime relates all references to the same task through the key without
// pre-allocated task objects, which is what makes the task graph *dynamic*.

#include <cstdint>

#include "support/small_vector.hpp"

namespace ftdag {

using TaskKey = std::int64_t;

// Fan-in/out of the paper's benchmarks is a small constant except for a few
// high-degree LU/Cholesky rows, so 8 inline slots avoid the heap in practice.
using KeyList = SmallVector<TaskKey, 8>;

}  // namespace ftdag
