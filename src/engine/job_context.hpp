#pragma once
// JobContext: the per-job service bundle threaded through executor
// instantiations.
//
// Before the multi-job runtime, the per-run services — fault injector,
// trace sink, durability target — arrived as loose executor arguments and
// everything else (counters, recovery table) was constructed ambiently
// inside each execute() call. With many jobs sharing one pool, every piece
// of per-job state must be explicitly scoped to its job so nothing bleeds
// across concurrently running walks:
//
//   injector     the job's fault domain. Each injector instance carries its
//                own fault plan and injected-count; two jobs never share
//                one (a shared injector would fire one job's faults into
//                another job's tasks).
//   trace        the job's span sink. Per job, so concurrent jobs can each
//                export their own chrome://tracing file.
//   durability   the job's persist target, already resolved to a per-job
//                subdirectory (see RunSpec::job_tag) so two durable jobs
//                never append to the same WAL.
//   job_id       stable id for diagnostics and persist-path attribution.
//
// The remaining per-job state — ObservationPolicy counters, the recovery
// table inside SelectiveRecoveryPolicy, the engine's task map — is
// constructed fresh inside each execute() from this context, one instance
// per run, never shared. The WorkStealingPool is the only deliberately
// shared substrate; its per-job completion accounting is the JobGroup.

#include <cstdint>

#include "fault/fault_injector.hpp"
#include "persist/durability.hpp"
#include "trace/trace.hpp"

namespace ftdag::engine {

struct JobContext {
  std::uint64_t job_id = 0;
  FaultInjector* injector = nullptr;
  ExecutionTrace* trace = nullptr;
  persist::DurabilityOptions durability;
};

}  // namespace ftdag::engine
