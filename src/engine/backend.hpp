#pragma once
// ExecutionBackend seam: where the traversal engine's fire-and-forget jobs
// run. The engine only ever (a) spawns a job, (b) runs a root job to
// quiescence, and (c) asks which worker it is on (for trace attribution and
// per-worker scratch arenas) — so that is the whole interface.
//
// WorkStealingBackend forwards to the Cilk-style pool (the paper's
// substrate). InlineBackend is a single-threaded FIFO run queue: the same
// traversal code becomes the serial oracle, with task completion order
// doubling as a topological order of the reachable graph.

#include <deque>
#include <functional>
#include <utility>

#include "runtime/scheduler.hpp"

namespace ftdag::engine {

class WorkStealingBackend {
 public:
  explicit WorkStealingBackend(WorkStealingPool& pool) : pool_(pool) {}

  template <typename F>
  void spawn(F&& fn) {
    pool_.spawn(std::forward<F>(fn));
  }

  // Each engine run joins on its own JobGroup, not whole-pool quiescence:
  // workers tag nested spawns with the running node's group, so the group
  // covers exactly this walk's spawn tree and concurrent jobs sharing the
  // pool neither delay the join nor leak into this run's accounting.
  void run_to_quiescence(std::function<void()> root) {
    JobGroup group;
    pool_.run_group_to_quiescence(group, std::move(root));
  }

  int worker_index() const { return pool_.current_worker_index(); }
  unsigned concurrency() const { return pool_.thread_count(); }

 private:
  WorkStealingPool& pool_;
};

// Deterministic single-threaded backend. Jobs run in FIFO spawn order on
// the calling thread; quiescence is simply an empty queue. A job may spawn
// more jobs while running (the traversal does), which land at the back.
class InlineBackend {
 public:
  template <typename F>
  void spawn(F&& fn) {
    queue_.emplace_back(std::forward<F>(fn));
  }

  void run_to_quiescence(const std::function<void()>& root) {
    root();
    while (!queue_.empty()) {
      std::function<void()> job = std::move(queue_.front());
      queue_.pop_front();
      job();
    }
  }

  int worker_index() const { return -1; }
  unsigned concurrency() const { return 1; }

 private:
  std::deque<std::function<void()>> queue_;
};

}  // namespace ftdag::engine
