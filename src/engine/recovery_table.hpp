#pragma once
// RecoveryTable: the concurrent map R of Fig. 3 that deduplicates
// recoveries (Guarantee 1: each failure is recovered at most once).
//
// R maps a task key to the most recent life number for which recovery has
// been initiated. The first thread to *insert* the record — or, for
// subsequent failures, the one whose compare-and-swap advances the stored
// life from `life - 1` to `life` — performs the recovery; every other
// observer of the same (key, life) failure stands down.

#include <atomic>
#include <cstdint>

#include "check/sync_shim.hpp"
#include "concurrent/sharded_map.hpp"
#include "graph/task_key.hpp"

namespace ftdag {

class RecoveryTable {
 public:
  // ISRECOVERING(key, life): returns true when recovery of this incarnation
  // has already been claimed by another thread; false when the caller just
  // claimed it and must perform the recovery.
  bool is_recovering(TaskKey key, std::uint64_t life) {
    auto [record, inserted] =
        records_.insert_if_absent(key, [life] { return new Record(life); });
    if (inserted) return false;  // first failure of this key: we recover
    std::uint64_t expected = life - 1;
    // Exactly one caller advances life-1 -> life, so recovery of each
    // incarnation is initiated at most once (Guarantee 1); the winner
    // acquires the previous recoverer's published state.
    const bool claimed = record->life.compare_exchange_strong(
        expected, life, std::memory_order_acq_rel);  // pairs: recovery-life
    return !claimed;
  }

  // Number of keys that ever failed (for statistics).
  std::size_t keys_recovered() const { return records_.size(); }

  void clear() { records_.clear(); }

 private:
  struct Record {
    explicit Record(std::uint64_t l) : life(l) {}
    Atomic<std::uint64_t> life;
  };

  mutable ShardedMap<Record> records_;
};

}  // namespace ftdag
