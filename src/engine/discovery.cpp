#include "engine/discovery.hpp"

#include <string>

#include "engine/backend.hpp"
#include "engine/detection_policy.hpp"
#include "engine/fault_policy.hpp"
#include "engine/retention_policy.hpp"
#include "engine/traversal_engine.hpp"

namespace ftdag::engine {
namespace {

// Structure-only view of a problem: same graph, empty compute bodies, its
// own detached BlockStore (TaskGraphProblem::block_store is non-virtual),
// so running it cannot touch the real problem's data.
class DiscoveryProblem final : public TaskGraphProblem {
 public:
  explicit DiscoveryProblem(const TaskGraphProblem& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name() + "-discovery"; }
  TaskKey sink() const override { return inner_.sink(); }
  void predecessors(TaskKey key, KeyList& out) const override {
    inner_.predecessors(key, out);
  }
  void successors(TaskKey key, KeyList& out) const override {
    inner_.successors(key, out);
  }
  void compute(TaskKey, ComputeContext&) override {}  // structure only
  void all_tasks(std::vector<TaskKey>& out) const override {
    inner_.all_tasks(out);
  }
  void outputs(TaskKey key, OutputList& out) const override {
    inner_.outputs(key, out);
  }
  bool data_dependence(TaskKey consumer, TaskKey producer) const override {
    return inner_.data_dependence(consumer, producer);
  }
  void reset_data() override {}
  std::uint64_t result_checksum() const override { return 0; }
  std::uint64_t reference_checksum() override { return 0; }

 private:
  const TaskGraphProblem& inner_;
};

}  // namespace

std::vector<TaskKey> topological_order(const TaskGraphProblem& problem) {
  DiscoveryProblem shadow(problem);
  InlineBackend backend;
  ComputeTimeline timeline;
  ObservationPolicy obs(nullptr, &timeline);
  NoFaultPolicy fault;
  NoDetectionPolicy detection;
  NoRetention retention;
  NoDurability durability;
  TraversalEngine<NoFaultPolicy, NoDetectionPolicy, NoRetention, InlineBackend>
      eng(shadow, backend, fault, detection, retention, durability, obs);
  eng.run();

  std::vector<TaskKey> order;
  order.reserve(timeline.events.size());
  for (const auto& [key, seconds] : timeline.events) order.push_back(key);
  return order;
}

}  // namespace ftdag::engine
