#pragma once
// DetectionPolicy: silent-data-corruption detection layered over the walk.
//
// The paper assumes detection ("once an error is detected, all subsequent
// accesses ... observe the error"); this policy supplies it for errors that
// would otherwise stay silent. NoDetectionPolicy compiles to nothing — its
// Plan says `replicate` is a compile-time false, so every hook call folds
// away. ReplicationDetection is the dual-execution digest-voting subsystem
// (src/replication/): selected tasks run their compute body once more into
// shadow scratch buffers *before* the primary, output digests are voted
// after commit but before the Computed status is published, and an
// unresolved mismatch marks the outputs Corrupted and throws
// ReplicaMismatchFault — turning a silent corruption into exactly the
// detected fault the selective-recovery FaultPolicy consumes.

#include <cstdint>
#include <memory>
#include <vector>

#include "blocks/block_store.hpp"
#include "engine/observation.hpp"
#include "fault/fault.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"
#include "replication/digest_voter.hpp"
#include "replication/replication_policy.hpp"
#include "replication/shadow_context.hpp"

namespace ftdag::engine {

struct NoDetectionPolicy {
  struct Plan {
    static constexpr bool replicate = false;
  };

  static constexpr bool enabled() { return false; }
  template <class Engine>
  void pre_compute(Engine&, TaskKey, std::uint64_t, Plan&) {}
  void capture_primary(ComputeContext&, Plan&) {}
  template <class Engine>
  void vote_or_recover(Engine&, TaskKey, std::uint64_t, Plan&) {}
};

class ReplicationDetection {
 public:
  // Per-task voting state, stack-allocated in the engine's compute step.
  struct Plan {
    bool replicate = false;
    OutputList outs;  // filled by the replicate decision, reused by the vote
    DigestList replica_digests;
    ComputeContext::StagedResults replica_staged;
    ComputeContext::StagedResults primary_staged;
    bool primary_consumed_inputs = false;
  };

  // One replica scratch arena per worker (indexed by the backend's worker
  // index; external callers share arena 0 — the arena itself is
  // thread-safe). Empty when replication is off: the fast path allocates
  // nothing.
  ReplicationDetection(const ReplicationPolicy& policy, unsigned workers,
                       ObservationPolicy& obs)
      : policy_(policy), obs_(obs) {
    if (policy_.enabled()) {
      arenas_.resize(workers);
      for (auto& a : arenas_) a = std::make_unique<ShadowArena>();
    }
  }

  bool enabled() const { return policy_.enabled(); }

  // Decides replication for this task and, if selected, runs the replica.
  // Replica first: it must observe the same inputs as the primary, and with
  // memory reuse the primary consumes same-slot inputs.
  template <class Engine>
  void pre_compute(Engine& eng, TaskKey key, std::uint64_t life, Plan& plan) {
    plan.replicate = should_replicate(eng.problem(), eng.store(), key,
                                      plan.outs);
    if (plan.replicate)
      plan.replica_digests = run_replica(eng, key, life, plan.replica_staged);
  }

  void capture_primary(ComputeContext& ctx, Plan& plan) {
    plan.primary_staged = ctx.staged_results();
    plan.primary_consumed_inputs = ctx.consumed_inputs();
  }

  // Votes replica vs. published outputs after commit. On mismatch, tries a
  // tie-breaking third run (TMR) when the primary did not consume its
  // inputs in place; if the tie-breaker sides with the primary, execution
  // proceeds (the replica was the corrupted run). Otherwise the outputs are
  // marked Corrupted and ReplicaMismatchFault sends the task — a detected
  // fault now — through RECOVERTASK, whose re-execution (and, for consumed
  // inputs, the re-execution chain behind it) regenerates everything.
  template <class Engine>
  void vote_or_recover(Engine& eng, TaskKey key, std::uint64_t life,
                       Plan& plan) {
    BlockStore& store = eng.store();
    DigestList published;
    const bool readable =
        DigestVoter::committed_digests(store, plan.outs, published);
    if (readable && DigestVoter::agree(published, plan.replica_digests) &&
        DigestVoter::agree(plan.primary_staged, plan.replica_staged))
      return;

    obs_.count_digest_mismatch();
    if (readable && !plan.primary_consumed_inputs) {
      try {
        ComputeContext::StagedResults tie_staged;
        const DigestList tie = run_replica(eng, key, life, tie_staged);
        if (DigestVoter::agree(tie, published) &&
            DigestVoter::agree(tie_staged, plan.primary_staged)) {
          // Two against one for the published outputs: the shadow replica
          // was the corrupted execution. Nothing to repair.
          obs_.count_vote_resolved();
          return;
        }
      } catch (const FaultException&) {
        // An input vanished under the tie-breaker (displaced by unrelated
        // recovery): the vote stays unresolved, fall through to recovery.
      }
    }
    // Unresolved: turn the silent corruption into a detected one. Consumers
    // cannot have read these outputs yet — the task has not been marked
    // Computed nor notified anyone.
    for (const ProducedVersion& pv : plan.outs)
      store.corrupt(pv.block, pv.version);
    throw ReplicaMismatchFault(key);
  }

 private:
  // Replicate iff the policy selects this task; pure control tasks (no
  // outputs) are never replicated. `outs` is filled as a side effect for
  // the voter. Called only when replication is enabled.
  bool should_replicate(const TaskGraphProblem& problem,
                        const BlockStore& store, TaskKey key,
                        OutputList& outs) const {
    problem.outputs(key, outs);
    std::uint64_t bytes = 0;
    for (const ProducedVersion& pv : outs) bytes += store.block_bytes(pv.block);
    return policy_.should_replicate(key, bytes);
  }

  ShadowArena& arena(int worker) {
    return *arenas_[worker >= 0 ? static_cast<std::size_t>(worker) : 0];
  }

  // Runs the compute body once against shadow scratch buffers. Reads are
  // re-validated like a primary run's; a DataBlockFault propagates into the
  // ordinary recovery path of the caller. Returns the replica's digests.
  template <class Engine>
  DigestList run_replica(Engine& eng, TaskKey key, std::uint64_t life,
                         ComputeContext::StagedResults& staged) {
    const double begin = obs_.span_begin();
    ShadowContext sctx(eng.store(), key, arena(eng.worker_index()));
    eng.problem().compute(key, sctx);
    sctx.finalize();  // re-validate replica reads; publishes nothing
    obs_.count_replica();
    obs_.trace_span(eng.worker_index(), TraceKind::kReplica, key, life, begin);
    staged = sctx.staged_results();
    return sctx.output_digests();
  }

  const ReplicationPolicy policy_;
  ObservationPolicy& obs_;
  std::vector<std::unique_ptr<ShadowArena>> arenas_;
};

}  // namespace ftdag::engine
