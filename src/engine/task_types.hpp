#pragma once
// Task descriptors for the traversal engine.
//
// TaskCore is the baseline NABBIT descriptor of Section III: join counter
// (1 + |preds|, the extra slot released by the traversal's self-
// notification), status, and the notify array successors register in.
//
// PlainTask is TaskCore unchanged — the null-fault-policy instantiation.
//
// FtTask adds the shaded fields of the paper's Figure 2:
//   life       incarnation number; bumped each time REPLACETASK re-inserts
//              the task after a failure (Guarantee 1/2)
//   bits       notification bit vector, one bit per predecessor plus a
//              self slot at index |preds|; a join-counter decrement is
//              allowed only by the thread that clears the bit, so each
//              predecessor decrements exactly once per incarnation/epoch
//              even under re-notification (Guarantee 3)
//   corrupted  sticky detected-error flag; every runtime access calls
//              check() which throws TaskDescriptorFault when set
//   recovery   marks incarnations created by RecOVERTASK (stats only)
//
// Descriptors are fully initialized at construction (join = 1 + |preds|,
// all bits set), so publishing them in the hash map is safe without extra
// synchronization.

#include <atomic>
#include <cstdint>
#include <vector>

#include "check/sync_shim.hpp"
#include "concurrent/atomic_bitset.hpp"
#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_key.hpp"
#include "support/assert.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"

namespace ftdag::engine {

struct TaskCore {
  TaskCore(TaskKey k, KeyList predecessors)
      : key(k),
        preds(std::move(predecessors)),
        join(1 + static_cast<int>(preds.size())) {}

  const TaskKey key;
  const KeyList preds;  // ordered predecessor list, cached at creation

  Atomic<int> join;
  Atomic<TaskStatus> status{TaskStatus::kVisited};
  CheckMutex lock;
  // Successors awaiting notification. Registration (TRYINITCOMPUTE) and the
  // drain loop (COMPUTEANDNOTIFY) both run under `lock`; the drain re-checks
  // the array before publishing Completed so late registrations are not lost.
  std::vector<TaskKey> notify_array FTDAG_GUARDED_BY(lock);
};

// Baseline descriptor: no life numbers, no bit vector, no corruption flag.
// The life constant lets engine code thread incarnation numbers through
// uniformly; for the baseline they are compile-time zero.
struct PlainTask final : TaskCore {
  PlainTask(TaskKey k, std::uint64_t /*life*/, KeyList predecessors)
      : TaskCore(k, std::move(predecessors)) {}

  static constexpr std::uint64_t life = 0;
};

// Fault-tolerant descriptor (the shaded additions of Fig. 2).
struct FtTask final : TaskCore, CorruptibleTask {
  FtTask(TaskKey k, std::uint64_t life_number, KeyList predecessors)
      : TaskCore(k, std::move(predecessors)),
        life(life_number),
        bits(preds.size() + 1) {}

  const std::uint64_t life;
  AtomicBitset bits;  // |preds| + 1, all-ones at start
  Atomic<bool> corrupted{false};
  Atomic<bool> recovery{false};

  // --- CorruptibleTask -------------------------------------------------------
  TaskKey task_key() const override { return key; }
  void corrupt_descriptor() override {
    // pairs: task-poison
    corrupted.store(true, std::memory_order_release);
  }

  // Detected-error check: "once an error is detected, all subsequent
  // accesses to that object will observe the error" (Section II).
  void check() const {
    // pairs: task-poison — a thread that observes the poison also observes
    // every write the poisoner made before it (Section II error model).
    if (corrupted.load(std::memory_order_acquire)) [[unlikely]]
      throw TaskDescriptorFault(key, life);
  }

  // CONVERTPREDKEYTOINDEX: position of pkey in the ordered predecessor
  // list; the task's own key maps to the self slot.
  std::size_t pred_index(TaskKey pkey) const {
    if (pkey == key) return preds.size();
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == pkey) return i;
    FTDAG_ASSERT(false, "pkey is not a predecessor of this task");
    return 0;
  }
};

}  // namespace ftdag::engine
