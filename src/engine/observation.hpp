#pragma once
// ObservationPolicy: the single place run counters and trace events are
// recorded, and the single place an ExecReport is populated from. Every
// engine instantiation reports through this policy, so counters a given
// configuration never touches come back as real zeroes instead of
// meaningless unset fields.
//
// Optionally carries an ExecutionTrace (per-worker Chrome-trace spans) and
// a ComputeTimeline (completion-ordered per-task durations, used by the
// serial oracle to derive T1 / T_inf / topological order).

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "check/sync_shim.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_key.hpp"
#include "support/timer.hpp"
#include "trace/trace.hpp"

namespace ftdag::engine {

// Per-task compute durations in completion order. Single-threaded use only
// (the inline backend); the parallel backends leave it null.
struct ComputeTimeline {
  std::vector<std::pair<TaskKey, double>> events;
};

class ObservationPolicy {
 public:
  explicit ObservationPolicy(ExecutionTrace* trace = nullptr,
                             ComputeTimeline* timeline = nullptr)
      : trace_(trace), timeline_(timeline) {}

  // --- counters --------------------------------------------------------------

  void count_compute() { computes_.fetch_add(1, std::memory_order_relaxed); }
  void count_fault() { faults_caught_.fetch_add(1, std::memory_order_relaxed); }
  void count_recovery() { recoveries_.fetch_add(1, std::memory_order_relaxed); }
  void count_reset() { resets_.fetch_add(1, std::memory_order_relaxed); }
  void count_replica() { replicated_.fetch_add(1, std::memory_order_relaxed); }
  void count_digest_mismatch() {
    digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_vote_resolved() {
    votes_resolved_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t computes() const {
    return computes_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  std::uint64_t resets() const {
    return resets_.load(std::memory_order_relaxed);
  }

  // --- spans and instants ----------------------------------------------------

  // Timestamp opening a compute/replica/recovery span; 0.0 when nothing is
  // recording (the subtraction is then never observed).
  double span_begin() const {
    if (trace_ != nullptr) return trace_->now();
    if (timeline_ != nullptr) return clock_.seconds();
    return 0.0;
  }

  // Closes a compute span: traced like any span, and additionally appended
  // to the timeline when one is attached.
  void compute_span_end(int worker, TaskKey key, std::uint64_t life,
                        double begin) {
    if (trace_ != nullptr)
      trace_->record(worker, TraceKind::kCompute, key, life, begin,
                     trace_->now());
    if (timeline_ != nullptr)
      timeline_->events.emplace_back(key, clock_.seconds() - begin);
  }

  void trace_span(int worker, TraceKind kind, TaskKey key, std::uint64_t life,
                  double begin) {
    if (trace_ != nullptr)
      trace_->record(worker, kind, key, life, begin, trace_->now());
  }

  void trace_instant(int worker, TraceKind kind, TaskKey key,
                     std::uint64_t life) {
    if (trace_ != nullptr) {
      const double t = trace_->now();
      trace_->record(worker, kind, key, life, t, t);
    }
  }

  // --- uniform report population ---------------------------------------------

  void fill(ExecReport& report) const {
    report.computes = computes_.load(std::memory_order_relaxed);
    report.faults_caught = faults_caught_.load(std::memory_order_relaxed);
    report.recoveries = recoveries_.load(std::memory_order_relaxed);
    report.resets = resets_.load(std::memory_order_relaxed);
    report.replicated = replicated_.load(std::memory_order_relaxed);
    report.digest_mismatches =
        digest_mismatches_.load(std::memory_order_relaxed);
    report.votes_resolved = votes_resolved_.load(std::memory_order_relaxed);
  }

 private:
  ExecutionTrace* trace_;
  ComputeTimeline* timeline_;
  Timer clock_;  // timeline timestamps (trace has its own clock)

  Atomic<std::uint64_t> computes_{0};
  Atomic<std::uint64_t> faults_caught_{0};
  Atomic<std::uint64_t> recoveries_{0};
  Atomic<std::uint64_t> resets_{0};
  Atomic<std::uint64_t> replicated_{0};
  Atomic<std::uint64_t> digest_mismatches_{0};
  Atomic<std::uint64_t> votes_resolved_{0};
};

}  // namespace ftdag::engine
