#pragma once
// Graph discovery through the traversal engine: runs the NABBIT walk with
// no-op compute bodies on the inline backend, so the engine's completion
// order — every predecessor notified before its consumer fires — doubles as
// a topological order of the sink-reachable graph. This keeps the visit/
// notify/join-counter logic in exactly one place: drivers that need a
// static schedule (the bulk-synchronous checkpoint comparator) obtain it
// from the same walk the dynamic executors run.

#include <vector>

#include "graph/task_graph_problem.hpp"

namespace ftdag::engine {

// Topological order (sources first, sink last) of every task reachable from
// the sink. Touches no block data: computes run against a detached empty
// store and commit nothing.
std::vector<TaskKey> topological_order(const TaskGraphProblem& problem);

}  // namespace ftdag::engine
