#pragma once
// FaultPolicy: the fault-tolerance layer over the traversal engine.
//
// NoFaultPolicy is the baseline NABBIT configuration: no descriptor checks,
// no recovery table, Guarantee 3's claim-before-decrement degenerates to an
// unconditional decrement. All its hooks are empty and `kSelective` is
// false, so the engine's `if constexpr` gates compile the fault machinery
// (try/catch, bit vectors, output liveness checks) out of the baseline
// entirely.
//
// SelectiveRecoveryPolicy is the paper's contribution: the shaded additions
// of Figure 2 plus the Figure 3 recovery routines, expressed as hooks over
// the unchanged walk:
//   - claim()                  per-predecessor notification bits (G3)
//   - recover_task_once()      recovery table R dedup (G1)
//   - recover_task()           REPLACETASK fresh incarnations (G2), retry
//                              loop for failures during recovery (G6)
//   - reinit_notify_entry()    notify-array reconstruction from successor
//                              state, no backups (G4)
//   - reset_node()             re-arm and re-traverse after a predecessor's
//                              data failed (G5)
// The Figure 3 routines are templated on the engine so the policy stays
// independent of the backend/detection/retention choices it composes with.

#include <atomic>
#include <cstdint>

#include "check/sync_shim.hpp"
#include "blocks/block_store.hpp"
#include "concurrent/sharded_map.hpp"
#include "engine/observation.hpp"
#include "engine/recovery_table.hpp"
#include "engine/task_types.hpp"
#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag::engine {

struct NoFaultPolicy {
  using Task = PlainTask;
  static constexpr bool kSelective = false;

  void check(const Task*) const {}
  bool claim(Task*, TaskKey) const { return true; }
  void injection_point(FaultPhase, Task*, BlockStore&,
                       const TaskGraphProblem&) const {}
  void note_compute(TaskKey) const {}
  void fill(ExecReport&) const {}
};

class SelectiveRecoveryPolicy {
 public:
  using Task = FtTask;
  static constexpr bool kSelective = true;

  SelectiveRecoveryPolicy(ObservationPolicy& obs, FaultInjector* injector)
      : obs_(obs), injector_(injector) {}

  void check(const FtTask* t) const { t->check(); }

  // NOTIFYONCE's bit clearing: only the thread that clears the bit may
  // decrement the join counter (Guarantee 3).
  bool claim(FtTask* t, TaskKey pkey) const {
    return t->bits.fetch_unset(t->pred_index(pkey));
  }

  void injection_point(FaultPhase phase, FtTask* t, BlockStore& store,
                       const TaskGraphProblem& problem) const {
    if (injector_ != nullptr) injector_->at_point(phase, *t, store, problem);
  }

  // Per-key compute completions, for the re-execution statistics of Table II.
  void note_compute(TaskKey key) {
    auto [count, inserted] =
        compute_counts_.insert_if_absent(key, [] { return new ComputeCount; });
    (void)inserted;
    count->runs.fetch_add(1, std::memory_order_relaxed);
  }

  // Throws DataBlockFault if any output version of a task that claims to
  // have Computed is not Valid (the "B.overwritten" test of Fig. 2
  // TRYINITCOMPUTE, extended to corrupted outputs: a soft error matters iff
  // it hits the descriptor or an output). Absent outputs of a Computed task
  // are equally fatal - an aborted recovery rewrite leaves a version
  // Absent, and a consumer's compute observes that as a missing-input
  // fault. The traversal check must cover every state the compute can
  // throw on, or the reset-retraverse loop of Guarantee 5 cannot converge.
  void throw_if_outputs_unusable(const TaskGraphProblem& problem,
                                 const BlockStore& store, TaskKey key) const {
    OutputList outs;
    problem.outputs(key, outs);
    for (const ProducedVersion& pv : outs) {
      const VersionState st = store.state(pv.block, pv.version);
      if (st == VersionState::kValid) continue;
      BlockFaultReason reason;
      switch (st) {
        case VersionState::kCorrupted:
          reason = BlockFaultReason::kCorrupted;
          break;
        case VersionState::kOverwritten:
          reason = BlockFaultReason::kOverwritten;
          break;
        default:
          reason = BlockFaultReason::kMissing;
          break;
      }
      throw DataBlockFault(key, pv.block, pv.version, reason);
    }
  }

  // --- Figure 3 routines -----------------------------------------------------

  template <class Engine>
  void recover_task_once(Engine& eng, TaskKey key, std::uint64_t life) {
    if (!recovery_.is_recovering(key, life)) recover_task(eng, key);
  }

  // RESETNODE: re-arm the join counter and bit vector, then re-traverse the
  // predecessors; the traversal observes whichever predecessor failed and
  // recovers it (Guarantee 5). Resetting join *before* the bits keeps stale
  // duplicate notifications harmless: in the window between the two stores
  // all bits are clear, so stragglers cannot decrement.
  template <class Engine>
  void reset_node(Engine& eng, FtTask* a, TaskKey key, std::uint64_t life) {
    try {
      // Acquire pairs with the release transition into kVisited so the
      // debug assert reads a coherent status. pairs: task-status
      FTDAG_DASSERT(a->status.load(std::memory_order_acquire) ==
                        TaskStatus::kVisited,
                    "reset of a task that already computed");
      // Reset join before the bits (comment above); the release pairs with
      // claimants' acq_rel decrements.
      a->join.store(1 + static_cast<int>(a->preds.size()),
                    std::memory_order_release);  // pairs: task-join
      a->bits.set_all();
      obs_.count_reset();
      obs_.trace_instant(eng.worker_index(), TraceKind::kReset, key, life);
      eng.init_and_compute(a, key, life);
    } catch (const FaultException& e) {
      obs_.count_fault();
      obs_.trace_instant(eng.worker_index(), TraceKind::kFault, e.failed_key(),
                         life);
      recover_task_once(eng, key, life);
    }
  }

  // REINITNOTIFYENTRY: while recovering T, re-enqueue successor S iff S is
  // still Visited and has not yet been notified by T (its bit for T is still
  // set). Entries of the lost notify array are reconstructed from successor
  // state instead of from any backup (Guarantee 4).
  template <class Engine>
  void reinit_notify_entry(Engine& eng, FtTask* t, TaskKey key, FtTask* s,
                           TaskKey skey, std::uint64_t slife) {
    try {
      s->check();
      // pairs: task-status
      if (s->status.load(std::memory_order_acquire) != TaskStatus::kVisited)
        return;  // Computed/Completed successors need nothing from T
      const std::size_t ind = s->pred_index(key);
      if (s->bits.test(ind)) {
        CheckMutexGuard guard(t->lock);
        t->notify_array.push_back(skey);
      }
    } catch (const FaultException& e) {
      obs_.count_fault();
      obs_.trace_instant(eng.worker_index(), TraceKind::kFault, e.failed_key(),
                         slife);
      if (e.failed_key() == skey)
        recover_task_once(eng, skey, slife);
      else
        throw;  // fault on T itself: let RECOVERTASK's retry loop handle it
    }
  }

  // RECOVERTASK: replace the incarnation, rebuild its notify array from its
  // successors, and re-process it as a fresh task. Failures during recovery
  // restart the loop with yet another incarnation (Guarantee 6), unless a
  // different thread already claimed the newer recovery.
  template <class Engine>
  void recover_task(Engine& eng, TaskKey key) {
    for (;;) {
      bool success = true;
      std::uint64_t life = 0;
      const double begin = obs_.span_begin();
      try {
        FtTask* t = eng.replace_task(key);
        life = t->life;
        t->recovery.store(true, std::memory_order_relaxed);
        obs_.count_recovery();

        KeyList succs;
        eng.problem().successors(key, succs);
        for (TaskKey skey : succs) {
          FtTask* s = eng.find_task(skey);
          if (s == nullptr) continue;  // successor not yet created: it will
                                       // observe the fresh incarnation itself
          reinit_notify_entry(eng, t, key, s, skey, s->life);
        }
        eng.spawn_init_and_compute(t, key, life);
        obs_.trace_span(eng.worker_index(), TraceKind::kRecovery, key, life,
                        begin);
      } catch (const FaultException& e) {
        obs_.count_fault();
        obs_.trace_instant(eng.worker_index(), TraceKind::kFault,
                           e.failed_key(), life);
        if (!recovery_.is_recovering(key, life)) success = false;
      }
      if (success) return;
    }
  }

  void fill(ExecReport& report) const {
    compute_counts_.for_each([&report](MapKey, const ComputeCount& c) {
      const std::uint32_t n = c.runs.load(std::memory_order_relaxed);
      if (n > 1) report.re_executed += n - 1;
    });
    report.injected = injector_ != nullptr ? injector_->injected() : 0;
  }

 private:
  struct ComputeCount {
    Atomic<std::uint32_t> runs{0};
  };

  ObservationPolicy& obs_;
  FaultInjector* injector_;
  RecoveryTable recovery_;
  mutable ShardedMap<ComputeCount> compute_counts_;
};

}  // namespace ftdag::engine
