#pragma once
// RetentionPolicy: what happens to committed block state as execution
// proceeds.
//
// NoRetention — blocks live by the BlockStore's ordinary version rules;
// this is every dynamic-walk executor.
//
// CheckpointRetention — the coordinated snapshot/rollback machinery of the
// collective-recovery comparator (Section II's strawman). A *consistent*
// coordinated snapshot requires a point with no writers in flight, which
// the free-running walk never provides — that is the paper's own argument
// for why collective recovery pays a synchronization overhead even without
// faults. The policy therefore composes with the bulk-synchronous level
// driver in CheckpointRestartExecutor (which obtains its schedule from the
// engine's discovery walk) rather than hooking the walk itself: its
// entry points fire at level barriers, the one place a global snapshot is
// well-defined.

#include <cstddef>
#include <deque>

#include "blocks/block_store.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_key.hpp"
#include "support/timer.hpp"

namespace ftdag::engine {

struct NoRetention {
  // In-walk hook, fired after a task's outputs commit. Versioned blocks
  // already carry their own lifetime rules, so there is nothing to do.
  void on_committed(BlockStore&, TaskKey) const {}
};

class CheckpointRetention {
 public:
  CheckpointRetention(int interval_levels, int max_snapshots)
      : interval_levels_(interval_levels), max_snapshots_(max_snapshots) {}

  // Level barrier after `next_level` levels committed cleanly: snapshot the
  // whole store every `interval_levels` levels (stable-storage write,
  // modeled as an in-memory copy — generous to the comparator). The final
  // barrier never snapshots.
  void on_barrier(BlockStore& store, std::size_t next_level,
                  std::size_t total_levels, ExecReport& report) {
    if (++since_checkpoint_ >= interval_levels_ && next_level < total_levels) {
      Timer ck;
      checkpoints_.push_back({next_level, store.snapshot()});
      if (checkpoints_.size() > static_cast<std::size_t>(max_snapshots_))
        checkpoints_.pop_front();
      report.checkpoint_seconds += ck.seconds();
      ++report.checkpoints;
      since_checkpoint_ = 0;
    }
  }

  // Global rollback: restore the most recent *clean* checkpoint (a snapshot
  // can itself contain a latent corrupted version from an after-notify
  // fault; those are poisoned and discarded). Returns the level to resume
  // from — 0 with full state reset when no clean snapshot survives.
  std::size_t rollback(BlockStore& store, ExecReport& report) {
    ++report.rollbacks;
    while (!checkpoints_.empty() && !snapshot_is_clean(checkpoints_.back().snap))
      checkpoints_.pop_back();
    since_checkpoint_ = 0;
    if (checkpoints_.empty()) {
      store.reset_states();  // restart from the beginning
      return 0;
    }
    store.restore(checkpoints_.back().snap);
    return checkpoints_.back().level;
  }

 private:
  struct Checkpoint {
    std::size_t level;  // first level NOT contained in the snapshot
    BlockStore::Snapshot snap;
  };

  static bool snapshot_is_clean(const BlockStore::Snapshot& snap) {
    for (VersionState st : snap.states)
      if (st == VersionState::kCorrupted) return false;
    return true;
  }

  const int interval_levels_;  // checkpoint every N completed levels
  const int max_snapshots_;    // older checkpoints are discarded
  int since_checkpoint_ = 0;
  std::deque<Checkpoint> checkpoints_;
};

}  // namespace ftdag::engine
