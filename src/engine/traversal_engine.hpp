#pragma once
// TraversalEngine: the one home of NABBIT's dynamic task-graph walk.
//
// The walk is the paper's Figure 2 — visit from the sink toward the
// sources, join counters of 1 + |preds| (the extra slot released by the
// traversal's self-notification), notify arrays registered under the task
// lock, and ComputeAndNotify run by whichever thread drives a join counter
// to zero. Everything else is a *layer over* that walk, expressed as
// orthogonal policies the engine is parameterized on:
//
//   Fault      life numbers + recovery table + notify-array reconstruction
//              (SelectiveRecoveryPolicy), or nothing (NoFaultPolicy). When
//              Fault::kSelective is false the fault machinery — try/catch,
//              descriptor checks, notification-bit claims, output liveness
//              tests — compiles out of the walk entirely, so the baseline
//              instantiation pays none of it.
//   Detection  silent-corruption detection before successors are notified
//              (ReplicationDetection's dual-execution digest voting), or
//              nothing.
//   Retention  what happens to committed block state as tasks finish.
//              NoRetention for every dynamic-walk executor; the coordinated
//              checkpoint comparator composes CheckpointRetention with a
//              bulk-synchronous driver instead (see retention_policy.hpp
//              for why a consistent snapshot cannot be an in-walk hook).
//   Durability  whether committed completions outlive the process.
//               NoDurability (the default) compiles the whole subsystem out
//               of the walk; persist::WalDurability journals every commit
//               to a write-ahead log *before* kComputed is published and
//               lets a restarted process skip tasks recovered from disk
//               (see engine/durability_policy.hpp for the contract).
//   (Observation is a shared service rather than a template parameter: all
//   counters and trace events flow through one ObservationPolicy, which is
//   also the single place an ExecReport is populated from.)
//
// The Backend parameter picks where the walk's fire-and-forget jobs run:
// the work-stealing pool, or an inline FIFO queue that turns the same code
// into the serial oracle.

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/sync_shim.hpp"
#include "concurrent/sharded_map.hpp"
#include "engine/durability_policy.hpp"
#include "engine/observation.hpp"
#include "engine/task_types.hpp"
#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "graph/compute_context.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "support/assert.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"
#include "support/timer.hpp"
#include "trace/trace.hpp"

namespace ftdag::engine {

template <class Fault, class Detection, class Retention, class Backend,
          class Durability = NoDurability>
class TraversalEngine {
 public:
  using Task = typename Fault::Task;
  static constexpr bool kFT = Fault::kSelective;
  static constexpr bool kDurable = Durability::kEnabled;

  TraversalEngine(TaskGraphProblem& problem, Backend& backend, Fault& fault,
                  Detection& detection, Retention& retention,
                  Durability& durability, ObservationPolicy& obs)
      : problem_(problem),
        backend_(backend),
        fault_(fault),
        detection_(detection),
        retention_(retention),
        durability_(durability),
        obs_(obs),
        store_(problem.block_store()) {}

  ~TraversalEngine() {
    for (Task* t : garbage_) delete t;
  }

  TraversalEngine(const TraversalEngine&) = delete;
  TraversalEngine& operator=(const TraversalEngine&) = delete;

  // --- policy-facing surface -------------------------------------------------

  TaskGraphProblem& problem() { return problem_; }
  BlockStore& store() { return store_; }
  int worker_index() const { return backend_.worker_index(); }

  Task* find_task(TaskKey key) {
    if constexpr (kFT) {
      Slot* slot = tasks_.find(key);
      // pairs: task-slot — see replace_task's publication CAS.
      return slot != nullptr ? slot->task.load(std::memory_order_acquire)
                             : nullptr;
    } else {
      return tasks_.find(key);
    }
  }

  // REPLACETASK: publishes a fresh incarnation with life + 1. The superseded
  // descriptor is poisoned first so threads still holding it observe the
  // error on their next access and defer to the recovery table. Fault-
  // tolerant instantiations only.
  Task* replace_task(TaskKey key) {
    static_assert(kFT, "REPLACETASK requires the selective-recovery policy");
    Slot* slot = tasks_.find(key);
    FTDAG_ASSERT(slot != nullptr, "REPLACETASK on unknown key");
    // pairs: task-slot
    Task* old = slot->task.load(std::memory_order_acquire);
    Task* fresh = make_task(key, old->life + 1);
    old->corrupt_descriptor();
    // Release publishes the fresh incarnation's fields; acquire orders the
    // poisoned descriptor before the swap.
    const bool swapped = slot->task.compare_exchange_strong(
        old, fresh, std::memory_order_acq_rel);  // pairs: task-slot
    FTDAG_ASSERT(swapped, "concurrent REPLACETASK on the same incarnation");
    {
      CheckMutexGuard guard(garbage_lock_);
      garbage_.push_back(old);
    }
    return fresh;
  }

  void spawn_init_and_compute(Task* t, TaskKey key, std::uint64_t life) {
    backend_.spawn([this, t, key, life] { init_and_compute(t, key, life); });
  }

  // Post-quiescence inspection (watchdog, statistics). fn(key, const Task*).
  template <typename Fn>
  void for_each_task(Fn&& fn) {
    tasks_.for_each([&fn](MapKey key, MapValue& value) {
      if constexpr (kFT)
        // pairs: task-slot
        fn(key, value.task.load(std::memory_order_acquire));
      else
        fn(key, &value);
    });
  }

  std::size_t tasks_discovered() const { return tasks_.size(); }

  // --- Figure 2: the walk ----------------------------------------------------

  // INITANDCOMPUTE: traverse predecessors, then self-notify. The descriptor
  // itself was fully initialized at construction (INIT).
  void init_and_compute(Task* a, TaskKey key, std::uint64_t life) {
    for (TaskKey pkey : a->preds)
      backend_.spawn(
          [this, a, key, life, pkey] { try_init_compute(a, key, life, pkey); });
    notify_once(a, key, key, life);
  }

  // --- whole-graph execution -------------------------------------------------

  // Inserts the sink and runs the walk to quiescence; returns the uniform
  // report (every counter a real value, zero when the configuration never
  // touches it).
  ExecReport run() {
    const TaskKey sink = problem_.sink();
    Timer timer;
    backend_.run_to_quiescence([this, sink] {
      auto [t, inserted] = insert_task_if_absent(sink);
      FTDAG_ASSERT(inserted, "sink already present");
      init_and_compute(t, sink, t->life);
    });

    ExecReport report;
    report.seconds = timer.seconds();
    report.tasks_discovered = tasks_.size();
    obs_.fill(report);
    fault_.fill(report);
    if constexpr (kDurable) durability_.fill(report);

    Task* sink_task = find_task(sink);
    // Acquire pairs with the worker's release store of kCompleted so the
    // sink's outputs are visible to the caller reading the report.
    FTDAG_ASSERT(sink_task != nullptr &&
                     sink_task->status.load(
                         std::memory_order_acquire) ==  // pairs: task-status
                         TaskStatus::kCompleted,
                 "sink did not complete");
    return report;
  }

 private:
  // Hash-map entry for fault-tolerant instantiations: holds the *current
  // incarnation* of a task so REPLACETASK can swap the pointer; superseded
  // incarnations are retired to the garbage list (threads may still hold
  // them) and freed after quiescence. Baseline instantiations store the
  // descriptor directly — no indirection on the fast path.
  struct Slot {
    explicit Slot(Task* t) : task(t) {}
    ~Slot() { delete task.load(std::memory_order_relaxed); }
    Atomic<Task*> task;
  };
  using MapValue = std::conditional_t<kFT, Slot, Task>;

  Task* make_task(TaskKey key, std::uint64_t life) {
    KeyList preds;
    problem_.predecessors(key, preds);
    return new Task(key, life, std::move(preds));
  }

  // INSERTTASKIFABSENT + GETTASK fused: returns the current incarnation.
  std::pair<Task*, bool> insert_task_if_absent(TaskKey key) {
    if constexpr (kFT) {
      auto [slot, inserted] = tasks_.insert_if_absent(
          key, [this, key] { return new Slot(make_task(key, 0)); });
      // pairs: task-slot
      return {slot->task.load(std::memory_order_acquire), inserted};
    } else {
      return tasks_.insert_if_absent(key,
                                     [this, key] { return make_task(key, 0); });
    }
  }

  void note_fault(const FaultException& e, std::uint64_t life) {
    obs_.count_fault();
    obs_.trace_instant(worker_index(), TraceKind::kFault, e.failed_key(), life);
  }

  // TRYINITCOMPUTE: visit predecessor B of A; register A in B's notify array
  // unless B already computed (then A self-notifies for this edge).
  void try_init_compute(Task* a, TaskKey key, std::uint64_t life,
                        TaskKey pkey) {
    auto [b, inserted] = insert_task_if_absent(pkey);
    const std::uint64_t blife = b->life;
    if (inserted) spawn_init_and_compute(b, pkey, blife);

    bool finished = true;
    if constexpr (kFT) {
      try {
        finished = register_or_skip(b, key, pkey, life);
      } catch (const FaultException& e) {
        note_fault(e, blife);
        finished = false;
        fault_.recover_task_once(*this, pkey, blife);
      }
    } else {
      finished = register_or_skip(b, key, pkey, life);
    }
    if (finished) notify_once(a, key, pkey, life);
  }

  // Returns true when B is already computed and (for fault-tolerant
  // instantiations) its outputs are live, i.e. A may self-notify for the
  // edge; false when B will notify A itself once computed. `alife` is A's
  // incarnation (the consumer's), needed for the durability waiver below.
  bool register_or_skip(Task* b, TaskKey key, TaskKey pkey,
                        std::uint64_t alife) {
    fault_.check(b);
    {
      CheckMutexGuard guard(b->lock);
      // pairs: task-status — acquire makes B's committed outputs visible
      // when we skip registration and read them directly.
      if (b->status.load(std::memory_order_acquire) < TaskStatus::kComputed) {
        // B notifies A once computed (and will produce fresh outputs).
        b->notify_array.push_back(key);
        return false;
      }
    }
    if constexpr (kFT) {
      // B claims Computed: for *flow* predecessors its outputs must be
      // live. Anti-dependence predecessors' data is legitimately dead once
      // their readers ran, so it is never checked.
      bool need_live_outputs = problem_.data_dependence(key, pkey);
      if constexpr (kDurable) {
        // A restored consumer's first incarnation skips its compute and
        // never reads B's data, so a committed-but-displaced B (normal
        // under memory reuse, deep in the restored history) must not
        // trigger spurious recovery. Recovery incarnations (alife > 0)
        // recompute for real and need the check.
        if (need_live_outputs && alife == 0 && durability_.is_restored(key))
          need_live_outputs = false;
      }
      if (need_live_outputs)
        fault_.throw_if_outputs_unusable(problem_, store_, pkey);
    }
    (void)alife;
    return true;
  }

 public:
  // NOTIFYONCE: claim the notification for pkey (always granted in the
  // baseline; a bit-vector claim under selective recovery so each
  // predecessor decrements exactly once per incarnation — Guarantee 3), and
  // decrement the join counter. Public because the fault policy's reset and
  // recovery paths re-enter the walk here.
  void notify_once(Task* a, TaskKey key, TaskKey pkey, std::uint64_t life) {
    if constexpr (kFT) {
      try {
        notify_once_body(a, key, pkey, life);
      } catch (const FaultException& e) {
        note_fault(e, life);
        fault_.recover_task_once(*this, key, life);
      }
    } else {
      notify_once_body(a, key, pkey, life);
    }
  }

 private:
  void notify_once_body(Task* a, TaskKey key, TaskKey pkey,
                        std::uint64_t life) {
    fault_.check(a);
    if (fault_.claim(a, pkey)) {
      // pairs: task-join — the worker that takes the counter to zero
      // acquires every earlier predecessor's release decrement, so it sees
      // all inputs before computing A (Guarantee 3).
      const int val = a->join.fetch_sub(1, std::memory_order_acq_rel) - 1;
      FTDAG_ASSERT(val >= 0, "join counter went negative");
      if (val == 0) compute_and_notify(a, key, life);
    }
  }

  void notify_successor(TaskKey key, TaskKey skey) {
    Task* s = find_task(skey);
    FTDAG_ASSERT(s != nullptr, "notify target was never inserted");
    notify_once(s, skey, key, s->life);
  }

  // COMPUTEANDNOTIFY: run the compute body, publish Computed, drain the
  // notify array, publish Completed. Faults on A itself go to RECOVERTASK;
  // a predecessor's data failing mid-compute re-arms A via RESETNODE.
  void compute_and_notify(Task* a, TaskKey key, std::uint64_t life) {
    if constexpr (kFT) {
      try {
        compute_and_notify_body(a, key, life);
      } catch (const FaultException& e) {
        note_fault(e, life);
        if (e.failed_key() == key)
          fault_.recover_task_once(*this, key, life);  // error in A itself
        else
          fault_.reset_node(*this, a, key, life);  // a predecessor's data
                                                   // failed mid-compute
      }
    } else {
      compute_and_notify_body(a, key, life);
    }
  }

  void compute_and_notify_body(Task* a, TaskKey key, std::uint64_t life) {
    fault_.check(a);

    // A first incarnation recovered from disk skips the compute body — its
    // outputs, checksums and staged results were restored by the
    // RestartLoader — but still publishes Computed and drains its notify
    // array below, so the walk around it proceeds unchanged.
    bool restored = false;
    if constexpr (kDurable) restored = durability_.try_skip(key, life);

    if (!restored) {
      fault_.injection_point(FaultPhase::kBeforeCompute, a, store_, problem_);
      fault_.check(a);  // a before-compute fault is detected here, pre-COMPUTE

      // Replica first when the detection policy selects this task: the
      // replica must observe the same inputs as the primary, and with memory
      // reuse the primary consumes same-slot inputs.
      typename Detection::Plan plan;
      if (detection_.enabled()) detection_.pre_compute(*this, key, life, plan);

      typename Durability::Pending pending;
      {
        const double begin = obs_.span_begin();
        ComputeContext ctx(store_, key);
        problem_.compute(key, ctx);  // reads throw on corrupt/overwritten
                                     // input
        fault_.check(a);             // descriptor died mid-compute?
        ctx.finalize();              // re-validate reads, commit outputs
        obs_.compute_span_end(worker_index(), key, life, begin);
        if (plan.replicate) detection_.capture_primary(ctx, plan);
        if constexpr (kDurable) durability_.capture(ctx, pending);
      }
      obs_.count_compute();
      fault_.note_compute(key);
      retention_.on_committed(store_, key);
      // The injector fires before the digest vote and before the Computed
      // status is published: a bit flipped in the committed outputs here is
      // precisely the silent corruption the vote must catch, and no consumer
      // can read the outputs until the status flips below.
      fault_.injection_point(FaultPhase::kAfterCompute, a, store_, problem_);
      if (plan.replicate) detection_.vote_or_recover(*this, key, life, plan);
      // Publish/ack protocol of the group-commit pipeline, derived here
      // because this ordering is what makes it correct:
      //   1. on_committed runs only after detection accepted the outputs,
      //      and assigns the record's global WAL sequence number (one
      //      fetch_add inside CommitPipeline::publish) BEFORE the Computed
      //      status store below.
      //   2. A consumer reaches its own on_committed only after the
      //      acquire load of this producer's Computed status
      //      (register_or_skip / notify), so producer-seq -> status
      //      release -> consumer acquire -> consumer-seq chains
      //      happens-before through one atomic: the consumer's sequence
      //      number is strictly greater than every flow producer's.
      //   3. The journal thread writes records to disk in sequence order,
      //      so every on-disk prefix is a dependency-closed cut and a
      //      crash loses only the unflushed suffix.
      // Ack point: under WalSync::kEvery, on_committed returns only once
      // the pipeline's durable epoch covers the record (a group fsync) —
      // published status still implies "on stable storage". kBatch/kNone
      // return right after the ring publish: the status may be visible
      // before the record reaches the file, which trades the old
      // "process death loses nothing" guarantee for an unflushed-suffix
      // loss window (DESIGN.md §9). A DataBlockFault inside the hook
      // (outputs displaced/corrupted since commit) aborts the publish
      // into the ordinary recovery path; the re-execution journals
      // instead.
      if constexpr (kDurable)
        durability_.on_committed(problem_, store_, key, pending);
    }
    // pairs: task-status — publishes the committed outputs to consumers
    // that observe kComputed (Guarantee 2: read-after-commit only).
    a->status.store(TaskStatus::kComputed, std::memory_order_release);

    // Notify enqueued successors; re-check the array under the lock before
    // flipping to Completed so late registrations are not lost.
    std::size_t notified = 0;
    for (;;) {
      fault_.check(a);  // an after-compute fault on self is detected here
      KeyList batch;
      {
        CheckMutexGuard guard(a->lock);
        for (std::size_t i = notified; i < a->notify_array.size(); ++i)
          batch.push_back(a->notify_array[i]);
        if (batch.empty()) {
          // pairs: task-status
          a->status.store(TaskStatus::kCompleted, std::memory_order_release);
          break;
        }
        notified = a->notify_array.size();
      }
      for (TaskKey skey : batch)
        backend_.spawn([this, key, skey] { notify_successor(key, skey); });
    }
    fault_.injection_point(FaultPhase::kAfterNotify, a, store_, problem_);
    // After-notify faults stay latent until (and unless) a later access
    // observes them — matching the paper's after-notify scenarios.
  }

  TaskGraphProblem& problem_;
  Backend& backend_;
  Fault& fault_;
  Detection& detection_;
  Retention& retention_;
  Durability& durability_;
  ObservationPolicy& obs_;
  BlockStore& store_;

  ShardedMap<MapValue> tasks_;

  CheckMutex garbage_lock_;
  // Superseded incarnations, freed in the (single-threaded) destructor.
  std::vector<Task*> garbage_ FTDAG_GUARDED_BY(garbage_lock_);
};

}  // namespace ftdag::engine
