#pragma once
// Durability policy slot of the TraversalEngine.
//
// The policy decides whether committed task completions outlive the
// process: the real implementation (persist::WalDurability, in
// src/persist/durability.hpp) serializes every commit into a record,
// publishes it to a group-commit pipeline whose sequence numbering runs
// BEFORE the Computed status publish (the prefix-consistency ordering the
// engine documents at the on_committed call site), and lets a restarted
// process skip tasks recovered from disk. This header only provides the
// off switch, so the engine — and every executor that does not opt in —
// never depends on the persistence subsystem.
//
// Contract (all hooks invoked under `if constexpr (Durability::kEnabled)`,
// so NoDurability needs none of them and the walk compiles to exactly the
// pre-durability code):
//   struct Pending;                          per-compute carrier, engine-local
//   bool try_skip(key, life);                true = restored, skip compute
//   bool is_restored(key);                   waive input-liveness checks for
//                                            restored consumers
//   void capture(ctx, pending);              save staged results pre-publish
//   void on_committed(problem, store, key, pending);  serialize + publish
//                                            to the commit ring; blocks for
//                                            the durable epoch under
//                                            WalSync::kEvery (may throw
//                                            FaultException into recovery)
//   void fill(report);                       quiesce the pipeline, populate
//                                            the wal_*/skip counters

namespace ftdag::engine {

struct NoDurability {
  static constexpr bool kEnabled = false;
  struct Pending {};
};

}  // namespace ftdag::engine
