#pragma once
// Fault model: exceptions thrown when a detected error is observed.
//
// Section II of the paper: a soft error affecting a task matters only if it
// corrupts the task's *descriptor* or one of its *output data blocks*, and
// detection is assumed ("once an error is detected, all subsequent accesses
// to that object will observe the error"). We simulate exactly that: the
// injector sets sticky corruption flags, and every runtime access checks the
// flag and throws one of these exceptions, which the fault-tolerant executor
// catches to trigger recovery.

#include <cstdint>
#include <exception>

#include "blocks/block_types.hpp"
#include "graph/task_key.hpp"

namespace ftdag {

// Why an access to a block version failed.
enum class BlockFaultReason : std::uint8_t {
  kCorrupted,    // version flagged corrupt by the injector
  kOverwritten,  // version's storage was reused by a later version
  kMissing,      // version never produced (observable only mid-recovery)
};

// Base for all detected-fault exceptions. `failed_key` identifies the task
// whose descriptor or output is bad — the task that must be recovered.
class FaultException : public std::exception {
 public:
  explicit FaultException(TaskKey failed_key) : failed_key_(failed_key) {}
  TaskKey failed_key() const { return failed_key_; }
  const char* what() const noexcept override { return "ftdag fault"; }

 private:
  TaskKey failed_key_;
};

// A task descriptor was observed corrupted. Carries the life number of the
// incarnation the observer was working with, which RecoverTaskOnce uses to
// deduplicate recoveries (Guarantee 1).
class TaskDescriptorFault : public FaultException {
 public:
  TaskDescriptorFault(TaskKey key, std::uint64_t life)
      : FaultException(key), life_(life) {}
  std::uint64_t life() const { return life_; }
  const char* what() const noexcept override {
    return "ftdag task descriptor fault";
  }

 private:
  std::uint64_t life_;
};

// Dual-execution digest voting (src/replication/) found a task's published
// outputs disagreeing with an independent replica run and could not resolve
// the vote in the primary's favour. The failed key is the task itself: its
// outputs were marked Corrupted and it must be recovered — a silent data
// corruption turned into exactly the detected fault the recovery protocol
// consumes.
class ReplicaMismatchFault : public FaultException {
 public:
  explicit ReplicaMismatchFault(TaskKey key) : FaultException(key) {}
  const char* what() const noexcept override {
    return "ftdag replica digest mismatch";
  }
};

// A data block version was observed corrupted/overwritten/missing. The
// failed key is the *producer* of that version.
class DataBlockFault : public FaultException {
 public:
  DataBlockFault(TaskKey producer, BlockId block, Version version,
                 BlockFaultReason reason)
      : FaultException(producer),
        block_(block),
        version_(version),
        reason_(reason) {}

  BlockId block() const { return block_; }
  Version version() const { return version_; }
  BlockFaultReason reason() const { return reason_; }
  const char* what() const noexcept override {
    return "ftdag data block fault";
  }

 private:
  BlockId block_;
  Version version_;
  BlockFaultReason reason_;
};

}  // namespace ftdag
