#pragma once
// Fault injection: deterministic simulation of detected soft errors.
//
// Exactly the paper's methodology (Section VI): "To simulate faults, we a
// priori identify the tasks that would fail and the point in their lifetimes
// where they would fail. When a fault is injected, a flag is set to mark the
// fault, which is then observed by a thread accessing that task." A fault
// affects both the task descriptor and the data block versions it has
// computed.
//
// The executor calls `at_point` at the three lifetime points the paper
// distinguishes; a planned injector fires at most once per (key, plan entry)
// so recovered incarnations run clean unless the plan says otherwise.

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/sync_shim.hpp"
#include "blocks/block_store.hpp"
#include "graph/task_graph_problem.hpp"
#include "graph/task_key.hpp"

namespace ftdag {

// The three lifetime points of Section VI ("Time").
enum class FaultPhase : std::uint8_t {
  kBeforeCompute,  // traversed predecessors, waiting/about to be scheduled
  kAfterCompute,   // compute done, about to notify successors
  kAfterNotify,    // all successors notified (task Completed)
};

const char* fault_phase_name(FaultPhase phase);

// Minimal mutable view of a task the injector can corrupt. Implemented by
// the fault-tolerant executor's task descriptor.
class CorruptibleTask {
 public:
  virtual ~CorruptibleTask() = default;
  virtual TaskKey task_key() const = 0;
  virtual void corrupt_descriptor() = 0;
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Invoked by the executor at each lifetime point of each task execution.
  // Implementations mutate corruption flags only; detection happens later at
  // access sites.
  virtual void at_point(FaultPhase phase, CorruptibleTask& task,
                        BlockStore& store, const TaskGraphProblem& problem) = 0;

  // Number of faults actually fired so far.
  virtual std::uint64_t injected() const = 0;

  // Re-arms the injector for another run of the same plan.
  virtual void reset() = 0;
};

// One planned failure.
struct PlannedFault {
  TaskKey key = 0;
  FaultPhase phase = FaultPhase::kAfterCompute;
  // Planner's estimate of how many task executions recovering this fault
  // implies (see FaultPlanner for the model).
  std::uint64_t implied_reexecutions = 1;
};

// Injects *real* silent data corruptions: flips one bit in each output
// block version of the victim at the planned lifetime point. Requires the
// problem's BlockStore to run in checksum mode — detection then happens via
// the software error-detection code on the next access, end to end, instead
// of via simulated detector flags. (Without checksum mode the flip stays
// silent and the result is wrong: the paper's detectability assumption,
// demonstrated as a negative test.) Descriptors are never touched: this
// models pure data SDC.
class BitFlipInjector final : public FaultInjector {
 public:
  explicit BitFlipInjector(std::vector<PlannedFault> plan);

  void at_point(FaultPhase phase, CorruptibleTask& task, BlockStore& store,
                const TaskGraphProblem& problem) override;

  std::uint64_t injected() const override {
    return injected_.load(std::memory_order_relaxed);
  }
  void reset() override;

 private:
  struct Entry {
    FaultPhase phase;
    Atomic<bool> fired{false};
  };

  // Concurrency contract: the map itself is immutable after construction
  // (reset() rewrites entry *contents*, never the map, and runs only when
  // the pool is quiescent); workers race only on the atomic `fired` flags.
  std::unordered_map<TaskKey, std::unique_ptr<Entry>> entries_;
  Atomic<std::uint64_t> injected_{0};
};

// Injects the faults listed in a plan, each at most once per run.
class PlannedFaultInjector final : public FaultInjector {
 public:
  explicit PlannedFaultInjector(std::vector<PlannedFault> plan);

  void at_point(FaultPhase phase, CorruptibleTask& task, BlockStore& store,
                const TaskGraphProblem& problem) override;

  std::uint64_t injected() const override {
    return injected_.load(std::memory_order_relaxed);
  }

  void reset() override;

  std::uint64_t planned() const { return entries_.size(); }
  std::uint64_t intended_reexecutions() const { return intended_; }

 private:
  struct Entry {
    FaultPhase phase;
    Atomic<bool> fired{false};
  };

  // Immutable after construction; see BitFlipInjector::entries_.
  std::unordered_map<TaskKey, std::unique_ptr<Entry>> entries_;
  Atomic<std::uint64_t> injected_{0};
  std::uint64_t intended_ = 0;
};

}  // namespace ftdag
