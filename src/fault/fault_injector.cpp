#include "fault/fault_injector.hpp"

#include "support/xoshiro.hpp"

namespace ftdag {

const char* fault_phase_name(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::kBeforeCompute:
      return "before compute";
    case FaultPhase::kAfterCompute:
      return "after compute";
    case FaultPhase::kAfterNotify:
      return "after notify";
  }
  return "?";
}

BitFlipInjector::BitFlipInjector(std::vector<PlannedFault> plan) {
  entries_.reserve(plan.size());
  for (const PlannedFault& f : plan) {
    auto entry = std::make_unique<Entry>();
    entry->phase = f.phase;
    entries_.emplace(f.key, std::move(entry));
  }
}

void BitFlipInjector::at_point(FaultPhase phase, CorruptibleTask& task,
                               BlockStore& store,
                               const TaskGraphProblem& problem) {
  auto it = entries_.find(task.task_key());
  if (it == entries_.end()) return;
  Entry& e = *it->second;
  if (e.phase != phase) return;
  if (phase == FaultPhase::kBeforeCompute) return;  // no data exists yet
  // pairs: injector-fired — at most one worker fires each planned fault;
  // re-executions of the same task see fired==true and pass through.
  if (e.fired.exchange(true, std::memory_order_acq_rel)) return;

  OutputList outs;
  problem.outputs(task.task_key(), outs);
  bool any = false;
  for (const ProducedVersion& pv : outs) {
    // Deterministic bit position derived from the victim key.
    const std::size_t bit = static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(task.task_key()) ^ pv.block));
    any = store.flip_bit(pv.block, pv.version, bit) || any;
  }
  if (any) injected_.fetch_add(1, std::memory_order_relaxed);
}

void BitFlipInjector::reset() {
  for (auto& [key, entry] : entries_) {
    (void)key;
    entry->fired.store(false, std::memory_order_relaxed);
  }
  injected_.store(0, std::memory_order_relaxed);
}

PlannedFaultInjector::PlannedFaultInjector(std::vector<PlannedFault> plan) {
  entries_.reserve(plan.size());
  for (const PlannedFault& f : plan) {
    auto entry = std::make_unique<Entry>();
    entry->phase = f.phase;
    entries_.emplace(f.key, std::move(entry));
    intended_ += f.implied_reexecutions;
  }
}

void PlannedFaultInjector::at_point(FaultPhase phase, CorruptibleTask& task,
                                    BlockStore& store,
                                    const TaskGraphProblem& problem) {
  auto it = entries_.find(task.task_key());
  if (it == entries_.end()) return;
  Entry& e = *it->second;
  if (e.phase != phase) return;
  // pairs: injector-fired
  if (e.fired.exchange(true, std::memory_order_acq_rel)) return;

  // The fault hits the task descriptor and every data block version the
  // task has computed so far (Section VI: "A fault affects both a task and
  // the data blocks it has computed"). Before compute there are no computed
  // outputs, so only the descriptor is corrupted.
  task.corrupt_descriptor();
  if (phase != FaultPhase::kBeforeCompute) {
    OutputList outs;
    problem.outputs(task.task_key(), outs);
    for (const ProducedVersion& pv : outs) store.corrupt(pv.block, pv.version);
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
}

void PlannedFaultInjector::reset() {
  for (auto& [key, entry] : entries_) {
    (void)key;
    entry->fired.store(false, std::memory_order_relaxed);
  }
  injected_.store(0, std::memory_order_relaxed);
}

}  // namespace ftdag
