#pragma once
// FaultPlanner: a-priori victim selection replicating the paper's fault
// scenarios (Section VI).
//
//   Task type  v=0    victim produces the *first* version of a data block
//              v=last victim produces the *last* version of a data block
//              v=rand victim produces a uniformly random version
//
//   Time       before compute / after compute / after notify
//
//   Amount     an absolute task count (the paper's 1/8/64/512) or a fraction
//              of the total task count (the paper's 2% and 5%)
//
// The planner draws victims (seeded, reproducible) from the requested type
// class until the *implied* number of re-executed tasks reaches the target.
// Implied-cost model, mirroring the paper's discussion:
//   - before compute: 1 (the recovered execution; no computed work is lost)
//   - after compute / after notify, full reuse (retention 1): recovering the
//     producer of version i re-creates versions 0..i of its block, so
//     implied = i + 1 (the paper's v=last chains);
//   - retention >= 2 or single assignment: the needed input versions are
//     normally still resident, implied = 1.
// Actual re-execution counts are timing-dependent (especially after notify);
// the harness therefore reports intended vs. measured, exactly as the paper
// does in Table II.

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

enum class VictimType : std::uint8_t {
  kVersionZero,  // v=0
  kVersionLast,  // v=last
  kVersionRand,  // v=rand
};

const char* victim_type_name(VictimType type);

struct FaultPlanSpec {
  FaultPhase phase = FaultPhase::kAfterCompute;
  VictimType type = VictimType::kVersionRand;
  // Target implied re-executions: either absolute or a fraction of T.
  std::uint64_t target_count = 0;  // used when target_fraction == 0
  double target_fraction = 0.0;    // e.g. 0.05 for the paper's "5%"
  std::uint64_t seed = 1;
};

struct FaultPlan {
  std::vector<PlannedFault> faults;
  std::uint64_t intended_reexecutions = 0;
  std::uint64_t target = 0;  // resolved absolute target
};

class FaultPlanner {
 public:
  // Scans the problem's task/output metadata once; reusable across specs.
  explicit FaultPlanner(const TaskGraphProblem& problem);

  // Builds a plan for the spec. The returned plan's intended count is the
  // smallest achievable value >= target (or the maximum possible if the
  // candidate pool is exhausted, as the paper notes happens for v=0/v=last
  // pools at the 5% level).
  FaultPlan plan(const FaultPlanSpec& spec) const;

  std::uint64_t total_tasks() const { return candidates_.size(); }

  // Number of candidate victims available for a type.
  std::uint64_t candidate_count(VictimType type) const;

 private:
  struct Candidate {
    TaskKey key;
    BlockId block;         // block of the representative output
    Version version;       // version of the representative output
    Version last_version;  // last version of that output's block
    bool in_place_chain;   // victim consumed its own block's prior version
  };

  std::uint64_t implied_cost(const Candidate& c, FaultPhase phase) const;

  const TaskGraphProblem& problem_;
  std::vector<Candidate> candidates_;  // every task with >= 1 output
  std::vector<std::uint32_t> v0_;      // indices into candidates_
  std::vector<std::uint32_t> vlast_;
  Version retention_ = 1;
};

}  // namespace ftdag
