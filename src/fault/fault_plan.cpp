#include "fault/fault_plan.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

const char* victim_type_name(VictimType type) {
  switch (type) {
    case VictimType::kVersionZero:
      return "v=0";
    case VictimType::kVersionLast:
      return "v=last";
    case VictimType::kVersionRand:
      return "v=rand";
  }
  return "?";
}

FaultPlanner::FaultPlanner(const TaskGraphProblem& problem)
    : problem_(problem) {
  retention_ = problem.block_store().retention();

  std::vector<TaskKey> keys;
  problem.all_tasks(keys);
  candidates_.reserve(keys.size());

  // The sink is excluded: recovering it is trivially the tail of execution
  // and the paper's scenarios target interior tasks.
  const TaskKey sink = problem.sink();
  const BlockStore& store = problem.block_store();
  OutputList outs;
  KeyList preds;
  for (TaskKey key : keys) {
    if (key == sink) continue;
    outs.clear();
    problem.outputs(key, outs);
    if (outs.empty()) continue;
    // Representative output: the first (block, version). All benchmark tasks
    // produce exactly one version of one block.
    const ProducedVersion& pv = outs[0];
    bool in_place = false;
    if (retention_ == 1 && pv.version > 0) {
      preds.clear();
      problem.predecessors(key, preds);
      in_place = preds.contains(store.producer(pv.block, pv.version - 1));
    }
    const auto idx = static_cast<std::uint32_t>(candidates_.size());
    candidates_.push_back({key, pv.block, pv.version, pv.last_version,
                           in_place});
    // For single-assignment blocks (one version) a task is both v=0 and
    // v=last, matching the paper's LCS where all types behave alike.
    if (pv.version == 0) v0_.push_back(idx);
    if (pv.version == pv.last_version) vlast_.push_back(idx);
  }
}

std::uint64_t FaultPlanner::candidate_count(VictimType type) const {
  switch (type) {
    case VictimType::kVersionZero:
      return v0_.size();
    case VictimType::kVersionLast:
      return vlast_.size();
    case VictimType::kVersionRand:
      return candidates_.size();
  }
  return 0;
}

std::uint64_t FaultPlanner::implied_cost(const Candidate& c,
                                         FaultPhase phase) const {
  if (phase == FaultPhase::kBeforeCompute) return 1;
  // Re-executing the victim needs its inputs. The guaranteed chain arises
  // with in-place updates: the victim *consumed* version i-1 of its own
  // output block (same slot, producer is one of its flow predecessors), so
  // regenerating version i re-runs the producers of versions 0..i (LU,
  // Cholesky). Chains on other layouts (SW's diagonal reuse) are
  // timing-dependent and not planned, matching the paper's caveat that
  // intended counts "cannot be guaranteed in some scenarios".
  if (c.in_place_chain) return static_cast<std::uint64_t>(c.version) + 1;
  return 1;
}

FaultPlan FaultPlanner::plan(const FaultPlanSpec& spec) const {
  FaultPlan out;
  out.target = spec.target_fraction > 0.0
                   ? std::max<std::uint64_t>(
                         1, static_cast<std::uint64_t>(
                                spec.target_fraction *
                                static_cast<double>(candidates_.size())))
                   : spec.target_count;

  // Candidate index pool for the requested type, shuffled by the seed.
  std::vector<std::uint32_t> pool;
  switch (spec.type) {
    case VictimType::kVersionZero:
      pool = v0_;
      break;
    case VictimType::kVersionLast:
      pool = vlast_;
      break;
    case VictimType::kVersionRand:
      pool.resize(candidates_.size());
      for (std::uint32_t i = 0; i < pool.size(); ++i) pool[i] = i;
      break;
  }

  Xoshiro256 rng(mix64(spec.seed));
  for (std::size_t i = pool.size(); i > 1; --i)
    std::swap(pool[i - 1], pool[rng.below(i)]);

  for (std::uint32_t idx : pool) {
    if (out.intended_reexecutions >= out.target) break;
    const Candidate& c = candidates_[idx];
    const std::uint64_t cost = implied_cost(c, spec.phase);
    out.faults.push_back({c.key, spec.phase, cost});
    out.intended_reexecutions += cost;
  }
  return out;
}

}  // namespace ftdag
