#pragma once
// WorkStealingPool: a Cilk-style randomized work-stealing scheduler.
//
// This is the substrate the paper's NABBIT adaptation runs on (the original
// used the Cilk++ 8503 runtime). The structure follows the classic design
// whose bounds the paper cites ([12] Arora/Blumofe/Plaxton, [13]
// Blumofe/Leiserson): each worker owns a Chase-Lev deque, pushes spawned
// jobs at the bottom, and steals from the top of a uniformly random victim
// when idle.
//
// NABBIT's traversal routines are fire-and-forget spawns whose completion is
// observed through the task graph itself (the sink task completing), so the
// pool exposes *quiescence* as the join mechanism: `run_to_quiescence(root)`
// runs root and every transitively spawned job, returning when the global
// outstanding-job count drains to zero. The pool persists across runs; the
// executors reuse one pool for a whole experiment sweep.
//
// Hot-path tuning (measured by bench_hotpath against BENCH_hotpath.json):
// spawns that fit a 64-byte block come from a per-worker freelist instead
// of the heap; a successful steal probe takes up to half the victim's
// visible work in one batch; and failed probe rounds back off exponentially
// before the exhaustive pre-sleep scan.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "runtime/job.hpp"
#include "runtime/sched_stats.hpp"
#include "support/cache.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

class WorkStealingPool {
 public:
  // Creates `threads` workers. `seed` drives victim selection only.
  explicit WorkStealingPool(unsigned threads,
                            std::uint64_t seed = 0x9E3779B97F4A7C15ULL);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  // Schedules fn. From a worker thread: pushed onto its own deque (stealable
  // by others). From any other thread: placed on the injection queue.
  //
  // Fast path: a callable that fits kJobBlockBytes is placement-constructed
  // into a block from the spawning worker's freelist — no heap round-trip.
  // Oversized callables, non-worker spawns, and pool exhaustion fall back
  // to make_job's plain new (retired with delete).
  template <typename F>
  void spawn(F&& fn) {
    if constexpr (job_fits_block<F>) {
      if (void* block = alloc_job_block()) {
        auto* job = new (block) JobImpl<std::decay_t<F>>(std::forward<F>(fn));
        job->set_pool_block(block);
        enqueue(job);
        return;
      }
    }
    note_heap_job();
    enqueue(make_job(std::forward<F>(fn)));
  }

  // Runs `root` plus everything it transitively spawns; blocks the calling
  // (non-worker) thread until the pool is quiescent again. Only one
  // run_to_quiescence may be active at a time.
  void run_to_quiescence(std::function<void()> root);

  // Divide-and-conquer parallel for over [begin, end), splitting down to
  // `grain` iterations per leaf. Blocks until every iteration ran. Intended
  // for app reference kernels and examples, not the executor hot path.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  // True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

  // Index of the calling worker thread, or -1 for external threads.
  int current_worker_index() const;

  // Aggregated statistics since construction. Safe to call when quiescent.
  SchedStats stats() const;

 private:
  // Per-worker freelist sizing: kJobPoolBlocks blocks are pre-allocated per
  // worker; because blocks are recycled by the *executing* worker they
  // migrate between freelists, so each list accepts up to kJobPoolCap
  // before overflow blocks go back to the heap.
  static constexpr std::size_t kJobPoolBlocks = 256;
  static constexpr std::size_t kJobPoolCap = 2 * kJobPoolBlocks;
  // Cap on the extra jobs one successful steal may take from its victim.
  static constexpr std::size_t kMaxBatchSteal = 16;

  struct Worker {
    ChaseLevDeque<JobNode*> deque;
    Xoshiro256 rng;
    WorkStealingPool* pool = nullptr;
    unsigned index = 0;
    WorkerStats stats;
    // Job-block freelist: touched only by the owning worker thread (blocks
    // arrive via the deque handoff, which synchronizes the transfer).
    std::vector<void*> free_blocks;
  };

  void worker_main(Worker& self);
  void enqueue(JobNode* job);
  JobNode* find_work(Worker& self);
  JobNode* scan_all(Worker& self);
  JobNode* try_steal(Worker& self);
  void batch_steal(Worker& self, Worker& victim);
  JobNode* pop_injected();
  void finish_job();
  void signal_work();
  // Pool-block management for spawn/retire (see job.hpp for the contract).
  void* alloc_job_block();
  void note_heap_job();
  void retire_job(JobNode* job);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Jobs spawned from outside any worker (e.g. the root job).
  SpinLock injection_lock_;
  std::deque<JobNode*> injected_ FTDAG_GUARDED_BY(injection_lock_);

  // External-spawn statistics (non-worker threads have no WorkerStats).
  std::atomic<std::uint64_t> injections_{0};
  std::atomic<std::uint64_t> external_heap_jobs_{0};

  alignas(kCacheLine) std::atomic<std::int64_t> pending_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> signal_epoch_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> run_active_{false};

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;  // workers wait for work
  std::condition_variable done_cv_;   // run_to_quiescence waits for drain

  static thread_local Worker* tls_worker_;
};

}  // namespace ftdag
