#pragma once
// WorkStealingPool: a Cilk-style randomized work-stealing scheduler.
//
// This is the substrate the paper's NABBIT adaptation runs on (the original
// used the Cilk++ 8503 runtime). The structure follows the classic design
// whose bounds the paper cites ([12] Arora/Blumofe/Plaxton, [13]
// Blumofe/Leiserson): each worker owns a Chase-Lev deque, pushes spawned
// jobs at the bottom, and steals from the top of a uniformly random victim
// when idle.
//
// NABBIT's traversal routines are fire-and-forget spawns whose completion is
// observed through the task graph itself (the sink task completing), so the
// pool exposes *quiescence* as the join mechanism. Two granularities exist:
//
//  - `run_group_to_quiescence(group, root)` runs root and every job it
//    transitively spawns under a per-job completion group; any number of
//    groups may be in flight concurrently (this is what lets ftdag::Runtime
//    multiplex independent jobs over one pool). Workers propagate a node's
//    group tag to its nested spawns, so a group's pending count covers the
//    whole spawn tree and nothing else.
//  - `run_to_quiescence(root)` is the legacy whole-pool join: it returns
//    when the *global* outstanding-job count drains to zero, i.e. it also
//    waits for unrelated work (other groups, external spawns). Single-tenant
//    callers (benches, scheduler tests) keep using it unchanged.
//
// The pool persists across runs; the executors reuse one pool for a whole
// experiment sweep, and ftdag::Runtime keeps one alive across many jobs.
//
// Hot-path tuning (measured by bench_hotpath against BENCH_hotpath.json):
// spawns that fit a 64-byte block come from a per-worker freelist instead
// of the heap; a successful steal probe takes up to half the victim's
// visible work in one batch; and failed probe rounds back off exponentially
// before the exhaustive pre-sleep scan.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "check/sync_shim.hpp"
#include "concurrent/chase_lev_deque.hpp"
#include "runtime/job.hpp"
#include "runtime/sched_stats.hpp"
#include "support/cache.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

// Per-job completion group: counts the outstanding jobs of one spawn tree so
// independent jobs can share a pool and still join individually. A group is
// owned by its waiter (stack of run_group_to_quiescence, or a JobSession)
// and must outlive its run; the pool only ever touches `pending_`.
//
// Lifetime safety: the waiter cannot return before pending_ drains to zero,
// and the decrement that takes it to zero is the last access any worker
// makes through the group pointer — so destroying the group after the wait
// returns is sound even while other groups are still running.
class JobGroup {
 public:
  JobGroup() = default;
  JobGroup(const JobGroup&) = delete;
  JobGroup& operator=(const JobGroup&) = delete;

  // Outstanding jobs charged to this group. Exact only while no job of the
  // group can spawn (i.e. after the group's run returned).
  std::int64_t pending() const {
    return pending_.load(std::memory_order_acquire);  // pairs: group-pending
  }

 private:
  friend class WorkStealingPool;
  alignas(kCacheLine) Atomic<std::int64_t> pending_{0};
};

// JobNode packs the group pointer into its header word alongside the
// pooled-storage bit (see job.hpp); the cache-line alignment above is what
// keeps the pointer's low bits free for that.
static_assert(alignof(JobGroup) >= kCacheLine,
              "JobNode's tagged header steals low bits from group pointers");

class WorkStealingPool {
 public:
  // Creates `threads` workers. `seed` drives victim selection only.
  explicit WorkStealingPool(unsigned threads,
                            std::uint64_t seed = 0x9E3779B97F4A7C15ULL);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  // Schedules fn. From a worker thread: pushed onto its own deque (stealable
  // by others) and tagged with the group of the job the worker is currently
  // executing (nullptr outside any group run). From any other thread: placed
  // on the injection queue, untagged.
  //
  // Fast path: a callable that fits kJobBlockBytes is placement-constructed
  // into a block from the spawning worker's freelist — no heap round-trip.
  // Oversized callables, non-worker spawns, and pool exhaustion fall back
  // to make_job's plain new (retired with delete).
  // Tagging happens inside the out-of-line enqueue, NOT here: this template
  // body is inlined into every traversal call site, and keeping it at the
  // pre-group footprint preserves the callers' own inlining decisions (the
  // e2e rows of bench_hotpath are sensitive to this).
  template <typename F>
  void spawn(F&& fn) {
    if constexpr (job_fits_block<F>) {
      if (void* block = alloc_job_block()) {
        auto* job = new (block) JobImpl<std::decay_t<F>>(std::forward<F>(fn));
        job->set_pooled();
        enqueue(job);
        return;
      }
    }
    note_heap_job();
    enqueue(make_job(std::forward<F>(fn)));
  }

  // Runs `root` plus everything it transitively spawns; blocks the calling
  // (non-worker) thread until the *whole pool* is quiescent — including
  // jobs of other concurrent groups and external spawns. Any number of
  // runs (group or global) may be active concurrently; a global run simply
  // waits for all of them.
  void run_to_quiescence(std::function<void()> root);

  // Runs `root` plus everything it transitively spawns under `group`,
  // blocking the calling (non-worker) thread until the group's outstanding
  // count drains to zero. Concurrent group runs proceed independently: a
  // short job's wait returns as soon as *its* spawn tree finished, no matter
  // how much unrelated work the pool still holds. External (non-worker)
  // spawns made by other threads during the run are pool work, not group
  // work — a job owns exactly what it transitively spawned.
  void run_group_to_quiescence(JobGroup& group, std::function<void()> root);

  // Divide-and-conquer parallel for over [begin, end), splitting down to
  // `grain` iterations per leaf. Blocks until every iteration ran. Intended
  // for app reference kernels and examples, not the executor hot path.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  // True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

  // Index of the calling worker thread, or -1 for external threads.
  int current_worker_index() const;

  // Aggregated statistics since construction. Safe to call when quiescent.
  SchedStats stats() const;

 private:
  // Per-worker freelist sizing: kJobPoolBlocks blocks are pre-allocated per
  // worker; because blocks are recycled by the *executing* worker they
  // migrate between freelists, so each list accepts up to kJobPoolCap
  // before overflow blocks go back to the heap.
  static constexpr std::size_t kJobPoolBlocks = 256;
  static constexpr std::size_t kJobPoolCap = 2 * kJobPoolBlocks;
  // Cap on the extra jobs one successful steal may take from its victim.
  static constexpr std::size_t kMaxBatchSteal = 16;

  struct Worker {
    ChaseLevDeque<JobNode*> deque;
    Xoshiro256 rng;
    WorkStealingPool* pool = nullptr;
    unsigned index = 0;
    WorkerStats stats;
    // Group of the job this worker is currently executing; nested spawns
    // inherit it. Touched only by the owning worker thread.
    JobGroup* current_group = nullptr;
    // Job-block freelist: touched only by the owning worker thread (blocks
    // arrive via the deque handoff, which synchronizes the transfer).
    std::vector<void*> free_blocks;
  };

  // Group the next spawn from this thread is charged to: the executing
  // job's group on a worker thread, nullptr elsewhere.
  JobGroup* current_group() const {
    Worker* w = tls_worker_;
    return (w != nullptr && w->pool == this) ? w->current_group : nullptr;
  }

  void worker_main(Worker& self);
  // Tags the job with the calling thread's current group and hands it to
  // enqueue_tagged. Out-of-line on purpose — see spawn().
  void enqueue(JobNode* job);
  void enqueue_tagged(JobNode* job, JobGroup* group);
  // Heap-allocates a root job with an explicit group tag; used by the
  // quiescence entry points, which run on non-worker threads.
  void spawn_root(JobGroup* group, std::function<void()> root);
  // Runs one dequeued node on this worker: propagates its group tag to
  // nested spawns, retires it, and settles its completion counter.
  void execute_node(Worker& self, JobNode* job);
  JobNode* find_work(Worker& self);
  JobNode* scan_all(Worker& self);
  JobNode* try_steal(Worker& self);
  void batch_steal(Worker& self, Worker& victim);
  JobNode* pop_injected();
  void finish_job(JobGroup* group);
  void signal_work();
  // Pool-block management for spawn/retire (see job.hpp for the contract).
  void* alloc_job_block();
  void note_heap_job();
  void retire_job(JobNode* job);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Jobs spawned from outside any worker (e.g. the root job).
  CheckMutex injection_lock_;
  std::deque<JobNode*> injected_ FTDAG_GUARDED_BY(injection_lock_);

  // External-spawn statistics (non-worker threads have no WorkerStats).
  Atomic<std::uint64_t> injections_{0};
  Atomic<std::uint64_t> external_heap_jobs_{0};

  alignas(kCacheLine) Atomic<std::int64_t> pending_{0};
  alignas(kCacheLine) Atomic<std::uint64_t> signal_epoch_{0};
  Atomic<bool> stop_{false};
  Atomic<int> sleepers_{0};

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;  // workers wait for work
  std::condition_variable done_cv_;   // quiescence waiters (global + groups)

  static thread_local Worker* tls_worker_;
};

}  // namespace ftdag
