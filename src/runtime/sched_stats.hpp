#pragma once
// Aggregated scheduler statistics, sampled after quiescence.

#include <atomic>
#include <cstdint>

namespace ftdag {

struct SchedStats {
  std::uint64_t jobs_executed = 0;
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t injections = 0;  // jobs spawned from non-worker threads

  SchedStats& operator+=(const SchedStats& o) {
    jobs_executed += o.jobs_executed;
    steals_attempted += o.steals_attempted;
    steals_succeeded += o.steals_succeeded;
    injections += o.injections;
    return *this;
  }
};

// Per-worker counters. Relaxed atomics, not plain fields: quiescence drains
// *jobs*, but idle workers keep probing victims (bumping steals_attempted)
// until they park, so an aggregating reader can overlap a bump.
//
// Concurrency contract: single-writer (the owning worker) / any-reader.
// bump() is a load+store rather than fetch_add — no other thread ever
// writes, so the RMW would buy nothing — and every access is relaxed: the
// counters carry no ordering obligations, readers tolerate slightly stale
// values, and the aggregate is only trusted after the pool is quiescent.
struct WorkerStats {
  std::atomic<std::uint64_t> jobs_executed{0};
  std::atomic<std::uint64_t> steals_attempted{0};
  std::atomic<std::uint64_t> steals_succeeded{0};

  void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);  // single writer: no RMW needed
  }

  SchedStats snapshot() const {
    SchedStats s;
    s.jobs_executed = jobs_executed.load(std::memory_order_relaxed);
    s.steals_attempted = steals_attempted.load(std::memory_order_relaxed);
    s.steals_succeeded = steals_succeeded.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace ftdag
