#pragma once
// Aggregated scheduler statistics, sampled after quiescence.

#include <cstdint>

namespace ftdag {

struct SchedStats {
  std::uint64_t jobs_executed = 0;
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t injections = 0;  // jobs spawned from non-worker threads

  SchedStats& operator+=(const SchedStats& o) {
    jobs_executed += o.jobs_executed;
    steals_attempted += o.steals_attempted;
    steals_succeeded += o.steals_succeeded;
    injections += o.injections;
    return *this;
  }
};

}  // namespace ftdag
