#pragma once
// Aggregated scheduler statistics, sampled after quiescence.

#include <atomic>
#include <cstdint>

#include "check/sync_shim.hpp"

namespace ftdag {

struct SchedStats {
  std::uint64_t jobs_executed = 0;
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_succeeded = 0;
  std::uint64_t injections = 0;    // jobs spawned from non-worker threads
  std::uint64_t steal_batch = 0;   // extra jobs taken beyond the first per steal
  std::uint64_t probe_rounds = 0;  // full victim sweeps that came back empty
  std::uint64_t jobs_pooled = 0;   // spawns served from a worker-local freelist
  std::uint64_t jobs_heap = 0;     // spawns that fell back to the heap

  SchedStats& operator+=(const SchedStats& o) {
    jobs_executed += o.jobs_executed;
    steals_attempted += o.steals_attempted;
    steals_succeeded += o.steals_succeeded;
    injections += o.injections;
    steal_batch += o.steal_batch;
    probe_rounds += o.probe_rounds;
    jobs_pooled += o.jobs_pooled;
    jobs_heap += o.jobs_heap;
    return *this;
  }
};

// Per-worker counters. Relaxed atomics, not plain fields: quiescence drains
// *jobs*, but idle workers keep probing victims (bumping steals_attempted)
// until they park, so an aggregating reader can overlap a bump.
//
// Concurrency contract: single-writer (the owning worker) / any-reader.
// bump() is a load+store rather than fetch_add — no other thread ever
// writes, so the RMW would buy nothing — and every access is relaxed: the
// counters carry no ordering obligations, readers tolerate slightly stale
// values, and the aggregate is only trusted after the pool is quiescent.
struct WorkerStats {
  Atomic<std::uint64_t> jobs_executed{0};
  Atomic<std::uint64_t> steals_attempted{0};
  Atomic<std::uint64_t> steals_succeeded{0};
  Atomic<std::uint64_t> steal_batch{0};
  Atomic<std::uint64_t> probe_rounds{0};
  Atomic<std::uint64_t> jobs_pooled{0};
  Atomic<std::uint64_t> jobs_heap{0};

  void bump(Atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);  // single writer: no RMW needed
  }

  void bump_by(Atomic<std::uint64_t>& c, std::uint64_t n) {
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);  // single writer: no RMW needed
  }

  SchedStats snapshot() const {
    SchedStats s;
    s.jobs_executed = jobs_executed.load(std::memory_order_relaxed);
    s.steals_attempted = steals_attempted.load(std::memory_order_relaxed);
    s.steals_succeeded = steals_succeeded.load(std::memory_order_relaxed);
    s.steal_batch = steal_batch.load(std::memory_order_relaxed);
    s.probe_rounds = probe_rounds.load(std::memory_order_relaxed);
    s.jobs_pooled = jobs_pooled.load(std::memory_order_relaxed);
    s.jobs_heap = jobs_heap.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace ftdag
