#include "check/sync_shim.hpp"
#include "runtime/scheduler.hpp"

#include "support/assert.hpp"

namespace ftdag {

thread_local WorkStealingPool::Worker* WorkStealingPool::tls_worker_ = nullptr;

WorkStealingPool::WorkStealingPool(unsigned threads, std::uint64_t seed) {
  FTDAG_ASSERT(threads >= 1, "pool needs at least one worker");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    auto w = std::make_unique<Worker>();
    w->pool = this;
    w->index = i;
    w->rng = Xoshiro256(mix64(seed + i));
    w->free_blocks.reserve(kJobPoolCap);
    for (std::size_t b = 0; b < kJobPoolBlocks; ++b)
      w->free_blocks.push_back(::operator new(kJobBlockBytes));
    workers_.push_back(std::move(w));
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_main(*workers_[i]); });
}

WorkStealingPool::~WorkStealingPool() {
  // Relaxed: by contract the destructor runs after quiescence, so any
  // ordering was already established by run_to_quiescence; this only
  // asserts the final counter value.
  FTDAG_ASSERT(pending_.load(std::memory_order_relaxed) == 0,
               "pool destroyed with outstanding jobs");
  stop_.store(true, std::memory_order_release);  // pairs: pool-stop
  {
    std::lock_guard<std::mutex> guard(sleep_mutex_);
    signal_epoch_.fetch_add(1, std::memory_order_release);  // pairs: pool-epoch
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Quiescent pool: deques and injection queue are empty by the assert
  // above, so every pooled block is parked in some worker's freelist.
  for (auto& w : workers_)
    for (void* block : w->free_blocks) ::operator delete(block);
}

void* WorkStealingPool::alloc_job_block() {
  Worker* w = tls_worker_;
  if (w == nullptr || w->pool != this || w->free_blocks.empty())
    return nullptr;
  void* block = w->free_blocks.back();
  w->free_blocks.pop_back();
  w->stats.bump(w->stats.jobs_pooled);
  return block;
}

void WorkStealingPool::note_heap_job() {
  Worker* w = tls_worker_;
  if (w != nullptr && w->pool == this) {
    w->stats.bump(w->stats.jobs_heap);
  } else {
    // Relaxed: a statistic, trusted only after quiescence.
    external_heap_jobs_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkStealingPool::retire_job(JobNode* job) {
  if (!job->pooled()) {
    delete job;
    return;
  }
  // A pooled node was placement-constructed at its block's own address, so
  // the node pointer is the block pointer: destroy in place, recycle `this`.
  void* block = static_cast<void*>(job);
  job->~JobNode();
  // Recycle into the *executing* worker's freelist: the block's next reuse
  // is then thread-local, and cross-worker transfers ride the deque's
  // synchronization. Overflow (freelists drift as blocks migrate) and
  // teardown edge cases return the block to the heap.
  Worker* w = tls_worker_;
  if (w != nullptr && w->pool == this && w->free_blocks.size() < kJobPoolCap) {
    w->free_blocks.push_back(block);
    return;
  }
  ::operator delete(block);
}

bool WorkStealingPool::on_worker_thread() const {
  return tls_worker_ != nullptr && tls_worker_->pool == this;
}

int WorkStealingPool::current_worker_index() const {
  return on_worker_thread() ? static_cast<int>(tls_worker_->index) : -1;
}

void WorkStealingPool::enqueue(JobNode* job) {
  // Ordinary spawns inherit the group of the job the spawning worker is
  // currently executing (nullptr on non-worker threads), so a whole spawn
  // tree is charged to the group of its root.
  enqueue_tagged(job, current_group());
}

void WorkStealingPool::enqueue_tagged(JobNode* job, JobGroup* group) {
  job->set_group(group);
  // Relaxed increments: the enqueue happens-before the job can run (deque/
  // injection handoff), so the matching acq_rel decrement in finish_job can
  // never observe the counter before this add.
  //
  // Tagged and untagged jobs charge *different* counters: a grouped job
  // touches only its group's count, because the group as a whole holds one
  // pool-pending token (taken in run_group_to_quiescence, released when the
  // group drains). Keeping the hot path at one inc + one dec per job is what
  // bench_hotpath's e2e rows price; charging both counters per job costs
  // fine-grained apps (lcs) ~30% end to end.
  if (group != nullptr)
    group->pending_.fetch_add(1, std::memory_order_relaxed);
  else
    pending_.fetch_add(1, std::memory_order_relaxed);
  if (on_worker_thread()) {
    tls_worker_->deque.push(job);
  } else {
    // Relaxed: a statistic, trusted only after quiescence.
    injections_.fetch_add(1, std::memory_order_relaxed);
    CheckMutexGuard guard(injection_lock_);
    injected_.push_back(job);
  }
  signal_work();
}

void WorkStealingPool::signal_work() {
  // pairs: pool-epoch — a waker's queue pushes happen-before a sleeper's
  // rescan once the sleeper acquires the bumped epoch.
  signal_epoch_.fetch_add(1, std::memory_order_release);
  // pairs: pool-sleepers
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    // Pairs with the epoch re-check under sleep_mutex_ in worker_main; the
    // lock/unlock ensures a worker between its epoch read and its wait still
    // observes this signal.
    std::lock_guard<std::mutex> guard(sleep_mutex_);
    sleep_cv_.notify_all();
  }
}

JobNode* WorkStealingPool::pop_injected() {
  CheckMutexGuard guard(injection_lock_);
  if (injected_.empty()) return nullptr;
  JobNode* job = injected_.front();
  injected_.pop_front();
  return job;
}

JobNode* WorkStealingPool::try_steal(Worker& self) {
  const std::size_t n = workers_.size();
  // Random probes in rounds of ~one-per-victim, with exponential backoff
  // between empty rounds so idle thieves stop hammering victims' top_ cache
  // lines while producers are busy. Missed work is latency, never a lost
  // wakeup: the sleep path re-scans exhaustively after publishing intent.
  Backoff backoff;
  constexpr std::size_t kRounds = 3;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t a = 0; a < n + 1; ++a) {
      self.stats.bump(self.stats.steals_attempted);
      const std::size_t victim = self.rng.below(n + 1);
      if (victim == n) {  // injection queue acts as one extra victim
        if (JobNode* job = pop_injected()) {
          self.stats.bump(self.stats.steals_succeeded);
          return job;
        }
        continue;
      }
      Worker& w = *workers_[victim];
      if (&w == &self) continue;
      JobNode* job = nullptr;
      if (w.deque.steal(job)) {
        self.stats.bump(self.stats.steals_succeeded);
        batch_steal(self, w);
        return job;
      }
    }
    self.stats.bump(self.stats.probe_rounds);
    if (round + 1 < kRounds) backoff.pause();
  }
  return nullptr;
}

void WorkStealingPool::batch_steal(Worker& self, Worker& victim) {
  // A successful probe found a loaded victim: take up to half its visible
  // work in one go so the steal's cache-miss cost amortizes over several
  // jobs, re-pushing the surplus locally (where it is stealable again).
  std::size_t want = victim.deque.size_estimate() / 2;
  if (want > kMaxBatchSteal) want = kMaxBatchSteal;
  std::uint64_t got = 0;
  JobNode* job = nullptr;
  while (got < want && victim.deque.steal(job)) {
    self.deque.push(job);
    ++got;
  }
  if (got > 0) {
    self.stats.bump_by(self.stats.steal_batch, got);
    signal_work();  // the re-pushed surplus may feed sleeping workers
  }
}

JobNode* WorkStealingPool::find_work(Worker& self) {
  JobNode* job = nullptr;
  if (self.deque.pop(job)) return job;
  return try_steal(self);
}

JobNode* WorkStealingPool::scan_all(Worker& self) {
  // Deterministic sweep of every work source. Unlike the randomized
  // try_steal, this cannot miss outstanding work, which makes it safe to
  // sleep after it comes back empty: any job visible before the epoch read
  // has been checked, and any job enqueued after it bumps the epoch the
  // sleep predicate watches.
  JobNode* job = nullptr;
  if (self.deque.pop(job)) return job;
  if ((job = pop_injected()) != nullptr) return job;
  for (auto& w : workers_) {
    if (w.get() == &self) continue;
    if (w->deque.steal(job)) return job;
  }
  return nullptr;
}

void WorkStealingPool::finish_job(JobGroup* group) {
  // Each job settles exactly one counter (see enqueue): its group's count if
  // tagged, the whole-pool count otherwise. The release half of the
  // decrement publishes this job's effects; the waiter's acquire load
  // collects them.
  bool wake = false;
  if (group != nullptr) {
    // pairs: group-pending
    if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wake = true;
      // Group drained: release the pool-pending token the group's run has
      // held since run_group_to_quiescence started. The acquire half of the
      // group decrement above already collected every job of the tree, so
      // this release hands the whole tree's effects to a global-quiescence
      // waiter in one edge.
      // pairs: pool-pending
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
  } else {
    // pairs: pool-pending
    wake = pending_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
  if (wake) {
    // A waiter's predicate may just have turned true: lock then notify so a
    // waiter between its predicate check and its wait cannot miss the
    // transition. (A drained group can also be the pool's last token, so
    // both waiter kinds share done_cv_ and notify_all.)
    { std::lock_guard<std::mutex> guard(sleep_mutex_); }
    done_cv_.notify_all();
  }
}

void WorkStealingPool::execute_node(Worker& self, JobNode* job) {
  // Propagate the node's group to nested spawns for the duration of the
  // run; save/restore because parallel_for's help-while-waiting loop
  // executes foreign nodes from inside a running job.
  JobGroup* const enclosing = self.current_group;
  JobGroup* const group = job->group();
  self.current_group = group;
  job->run();
  self.current_group = enclosing;
  retire_job(job);
  self.stats.bump(self.stats.jobs_executed);
  finish_job(group);
}

void WorkStealingPool::worker_main(Worker& self) {
  tls_worker_ = &self;
  while (!stop_.load(std::memory_order_acquire)) {  // pairs: pool-stop
    if (JobNode* job = find_work(self)) {
      execute_node(self, job);
      continue;
    }
    // Nothing found: publish intent to sleep, re-scan once, then wait for a
    // new-work epoch. The re-scan after reading the epoch closes the race
    // where work arrives between the failed scan and the wait — and it must
    // be the *exhaustive* scan: a probabilistic scan can miss a queued job
    // and then sleep on an epoch nobody ever bumps again.
    const std::uint64_t epoch =
        signal_epoch_.load(std::memory_order_acquire);  // pairs: pool-epoch
    if (JobNode* job = scan_all(self)) {
      execute_node(self, job);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);  // pairs: pool-sleepers
    sleep_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_acquire) ||  // pairs: pool-stop
             signal_epoch_.load(
                 std::memory_order_acquire) != epoch;  // pairs: pool-epoch
    });
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);  // pairs: pool-sleepers
  }
  tls_worker_ = nullptr;
}

void WorkStealingPool::spawn_root(JobGroup* group,
                                  std::function<void()> root) {
  // Root jobs come from non-worker threads, which have no block freelist;
  // they take the heap path exactly as plain spawn would.
  note_heap_job();
  enqueue_tagged(make_job(std::move(root)), group);
}

void WorkStealingPool::run_to_quiescence(std::function<void()> root) {
  FTDAG_ASSERT(!on_worker_thread(),
               "run_to_quiescence must be called from outside the pool");
  spawn_root(nullptr, std::move(root));
  {
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    done_cv_.wait(lk, [&] {
      return pending_.load(std::memory_order_acquire) == 0;  // pairs: pool-pending
    });
  }
}

void WorkStealingPool::run_group_to_quiescence(JobGroup& group,
                                               std::function<void()> root) {
  FTDAG_ASSERT(!on_worker_thread(),
               "run_group_to_quiescence must be called from outside the pool");
  FTDAG_ASSERT(group.pending_.load(std::memory_order_relaxed) == 0,
               "JobGroup is already running a spawn tree");
  // The group holds one pool-pending token for its whole run, so global
  // quiescence still covers grouped work without the per-job double count
  // (tagged jobs charge only their group; see enqueue). Relaxed: the token
  // is published to finish_job via the root-job handoff below.
  pending_.fetch_add(1, std::memory_order_relaxed);
  spawn_root(&group, std::move(root));
  {
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    done_cv_.wait(lk, [&] {
      // pairs: group-pending
      return group.pending_.load(std::memory_order_acquire) == 0;
    });
  }
}

void WorkStealingPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  FTDAG_ASSERT(grain >= 1, "grain must be positive");
  if (begin >= end) return;

  // Recursive splitter counted by an atomic latch; usable both from outside
  // the pool (wrapped in run_to_quiescence) and from within a job.
  struct ForCtx {
    const std::function<void(std::int64_t, std::int64_t)>& body;
    std::int64_t grain;
    WorkStealingPool& pool;
    Atomic<std::int64_t> remaining;
  };
  ForCtx ctx{body, grain, *this, {end - begin}};

  struct Split {
    static void run(ForCtx& c, std::int64_t lo, std::int64_t hi) {
      while (hi - lo > c.grain) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        c.pool.spawn([&c, mid, hi] { run(c, mid, hi); });
        hi = mid;
      }
      c.body(lo, hi);
      c.remaining.fetch_sub(hi - lo,
                            std::memory_order_acq_rel);  // pairs: for-remaining
    }
  };

  if (on_worker_thread()) {
    Split::run(ctx, begin, end);
    // Help with the remaining work instead of blocking the worker. The
    // Backoff lives outside the loop so repeated empty scans escalate
    // (a fresh Backoff per iteration never got past its shortest spin);
    // finding work resets it.
    Backoff backoff;
    while (ctx.remaining.load(
               std::memory_order_acquire) > 0) {  // pairs: for-remaining
      if (JobNode* job = find_work(*tls_worker_)) {
        execute_node(*tls_worker_, job);
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
  } else {
    // Private group: the caller joins its own split tree only, so an
    // external parallel_for (e.g. a checkpoint-executor level barrier)
    // does not stall on unrelated jobs sharing the pool.
    JobGroup group;
    run_group_to_quiescence(group,
                            [&ctx, begin, end] { Split::run(ctx, begin, end); });
    // Acquire to order against the workers' acq_rel fetch_sub of the
    // iteration count, matching the helper loop above. pairs: for-remaining
    FTDAG_ASSERT(ctx.remaining.load(std::memory_order_acquire) == 0,
                 "parallel_for lost iterations");
  }
}

SchedStats WorkStealingPool::stats() const {
  SchedStats total;
  for (const auto& w : workers_) total += w->stats.snapshot();
  // Relaxed: statistics, trusted only after quiescence.
  total.injections = injections_.load(std::memory_order_relaxed);
  total.jobs_heap += external_heap_jobs_.load(std::memory_order_relaxed);
  return total;
}

}  // namespace ftdag
