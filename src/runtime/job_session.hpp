#pragma once
// JobSession: one submitted job's admission record, execution driver and
// completion latch — the unit the Runtime's state machine moves through
//
//   submitted --(queue full / bad spec / closed)--> kRejected
//   submitted --> kQueued --(try_cancel / shutdown)--> kCancelled
//                 kQueued --(deadline exceeded)-------> kExpired
//                 kQueued --> kRunning --> kCompleted | kFailed | kCancelled
//
// The session owns everything per-job: the RunSpec copy, the repetition
// loop with validation (the measurement protocol formerly inlined in
// run_executor), the RepeatedRuns result, timestamps for queue/run latency,
// and the cancellation flag checked at repetition boundaries. The submitter
// holds it through a shared_ptr JobHandle; wait() blocks until a terminal
// state and synchronizes with the publication of the result fields.
//
// The TaskGraphProblem must stay alive and untouched by the submitter until
// the job reaches a terminal state: the runtime resets and mutates its data
// on a dispatcher thread. One problem instance per in-flight job — problems
// are stateful and cannot back two concurrent jobs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "check/sync_shim.hpp"
#include "graph/task_graph_problem.hpp"
#include "runtime/run_spec.hpp"
#include "runtime/scheduler.hpp"
#include "support/timer.hpp"

namespace ftdag {

enum class JobState {
  kQueued,     // admitted, waiting for a dispatcher slot
  kRunning,    // executing on a dispatcher (or the submitting thread)
  kCompleted,  // every repetition ran and validated
  kFailed,     // a repetition threw; error() has the diagnostic
  kCancelled,  // cancelled while queued, at shutdown, or at a rep boundary
  kExpired,    // queue deadline passed before a dispatcher picked it up
  kRejected,   // never admitted; error() names the reason
};

const char* job_state_name(JobState state);

inline bool job_state_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

// Per-job admission constraints.
struct JobLimits {
  // Longest the job may sit in the admission queue before it is expired
  // instead of run, in seconds. 0 = no deadline. Checked when a dispatcher
  // pops the job, so expiry is observed at dispatch time, not mid-queue.
  double queue_timeout_seconds = 0.0;
};

class JobSession {
 public:
  std::uint64_t id() const { return id_; }
  const RunSpec& spec() const { return spec_; }

  // Lock-free snapshot; pairs with the terminal publication in finish().
  JobState state() const {
    return state_.load(std::memory_order_acquire);  // pairs: job-state
  }

  // Blocks until the job reaches a terminal state and returns it. After
  // wait(), runs()/error()/latency accessors are stable and fully visible.
  JobState wait() const;

  // Cancels the job if it has not started: kQueued -> kCancelled, returns
  // true (the job will never run). For a running job, requests cooperative
  // cancellation — the repetition loop stops at the next rep boundary with
  // state kCancelled — and returns false (already-finished reps stand).
  // Returns false for terminal jobs.
  bool try_cancel();

  // Results of the completed repetitions. Complete after kCompleted;
  // partial (the reps finished before cancellation) after a running-job
  // cancel; empty otherwise. Call only in a terminal state.
  const RepeatedRuns& runs() const { return runs_; }

  // Diagnostic for kFailed / kRejected / kCancelled / kExpired.
  const std::string& error() const { return error_; }

  // Admission-to-start and start-to-terminal latencies, for the multi-job
  // bench's p50/p95 rows. Valid in a terminal state.
  double queued_seconds() const { return queued_seconds_; }
  double run_seconds() const { return run_seconds_; }
  // Monotonic position in dispatch order (1-based), 0 if never started.
  std::uint64_t run_sequence() const { return run_sequence_; }

 private:
  friend class Runtime;

  JobSession(std::uint64_t id, TaskGraphProblem& problem, RunSpec spec,
             JobLimits limits)
      : id_(id), problem_(problem), spec_(std::move(spec)), limits_(limits) {}

  // Dispatcher-side transitions. begin_running claims kQueued -> kRunning
  // and loses only to try_cancel; the finish_* helpers publish a terminal
  // state (fields first, then the release store the waiters acquire).
  bool begin_running(std::uint64_t sequence);
  void finish(JobState state, std::string error);
  bool queue_deadline_exceeded() const {
    return limits_.queue_timeout_seconds > 0.0 &&
           clock_.seconds() > limits_.queue_timeout_seconds;
  }

  // The repetition loop: reset, run the selected executor, validate —
  // checking the cancellation flag between reps. Must be in kRunning.
  // Returns the terminal outcome WITHOUT publishing it: the Runtime
  // accounts the outcome in its counters first, then calls finish(), so a
  // woken waiter never reads counters that lag the state it observed.
  struct Outcome {
    JobState state = JobState::kCompleted;
    std::string error;
  };
  Outcome execute(WorkStealingPool& pool);

  const std::uint64_t id_;
  TaskGraphProblem& problem_;
  const RunSpec spec_;
  const JobLimits limits_;
  Timer clock_;  // started at admission

  Atomic<JobState> state_{JobState::kQueued};
  Atomic<bool> cancel_requested_{false};

  mutable std::mutex mutex_;              // guards the cv + result publish
  mutable std::condition_variable cv_;    // wait() blocks here
  RepeatedRuns runs_;                     // written before the terminal store
  std::string error_;
  double queued_seconds_ = 0.0;
  double run_seconds_ = 0.0;
  std::uint64_t run_sequence_ = 0;
};

// Shared handle to a submitted job. The Runtime keeps its own reference
// until the job is terminal, so a submitter may drop the handle early.
using JobHandle = std::shared_ptr<JobSession>;

// Admission validation: returns an empty string when `spec` is runnable, or
// a one-line diagnostic (bad executor/injector combination, the durable-
// resume-with-reps footgun, nonpositive reps). Runtime::submit turns a
// nonempty result into kRejected; run_executor fails fast on it.
std::string spec_error(const RunSpec& spec);

}  // namespace ftdag
