#include "runtime/job_session.hpp"

#include <stdexcept>

#include "core/checkpoint_executor.hpp"
#include "core/ft_executor.hpp"
#include "engine/job_context.hpp"
#include "nabbit/executor.hpp"
#include "nabbit/serial_executor.hpp"
#include "support/assert.hpp"

namespace ftdag {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

std::string spec_error(const RunSpec& spec) {
  if (spec.reps < 1)
    return "reps must be >= 1 (got " + std::to_string(spec.reps) + ")";
  if (spec.injector != nullptr && spec.kind != ExecutorKind::kFaultTolerant &&
      spec.kind != ExecutorKind::kCheckpoint)
    return "fault injection requires a fault-tolerant executor";
  const persist::DurabilityOptions d = spec.effective_durability();
  if (d.enabled() && d.resume && spec.reps > 1)
    return "durable resume with reps > 1 would restore the finished state "
           "and skip every repetition after the first; run crash/restart "
           "experiments with reps = 1 (or disable durability resume)";
  return {};
}

// State transitions are serialized under mutex_ so the bookkeeping fields
// (error_, latencies, runs_) are always published before the state they
// describe: writers set fields, then release-store state_; readers either
// hold the mutex (wait) or acquire-load a terminal state first.

JobState JobSession::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return job_state_terminal(state()); });
  return state();
}

bool JobSession::try_cancel() {
  std::unique_lock<std::mutex> lock(mutex_);
  const JobState s = state_.load(std::memory_order_acquire);  // pairs: job-state
  if (s == JobState::kQueued) {
    error_ = "cancelled while queued";
    queued_seconds_ = clock_.seconds();
    state_.store(JobState::kCancelled, std::memory_order_release);  // pairs: job-state
    lock.unlock();
    cv_.notify_all();
    return true;
  }
  if (s == JobState::kRunning)
    cancel_requested_.store(true, std::memory_order_relaxed);
  return false;
}

bool JobSession::begin_running(std::uint64_t sequence) {
  std::lock_guard<std::mutex> guard(mutex_);
  // pairs: job-state
  if (state_.load(std::memory_order_acquire) != JobState::kQueued)
    return false;  // lost to try_cancel
  queued_seconds_ = clock_.seconds();
  run_sequence_ = sequence;
  state_.store(JobState::kRunning, std::memory_order_release);  // pairs: job-state
  return true;
}

void JobSession::finish(JobState state, std::string error) {
  FTDAG_ASSERT(job_state_terminal(state), "finish needs a terminal state");
  {
    std::lock_guard<std::mutex> guard(mutex_);
    error_ = std::move(error);
    // pairs: job-state
    if (state_.load(std::memory_order_acquire) == JobState::kRunning)
      run_seconds_ = clock_.seconds() - queued_seconds_;
    else
      queued_seconds_ = clock_.seconds();  // expired/cancelled straight from queue
    state_.store(state, std::memory_order_release);  // pairs: job-state
  }
  cv_.notify_all();
}

namespace {

void validate_result(TaskGraphProblem& problem) {
  if (problem.result_checksum() != problem.reference_checksum())
    throw std::runtime_error(
        "result checksum does not match the sequential reference");
}

ExecReport run_once(TaskGraphProblem& problem, WorkStealingPool& pool,
                    const RunSpec& spec, const engine::JobContext& ctx) {
  switch (spec.kind) {
    case ExecutorKind::kSerial: {
      SerialExecutor exec;
      return exec.execute(problem).exec;
    }
    case ExecutorKind::kBaseline: {
      NabbitExecutor exec;
      return exec.execute(problem, pool, ctx);
    }
    case ExecutorKind::kFaultTolerant: {
      FaultTolerantExecutor exec;
      return exec.execute(problem, pool, ctx, spec.ft);
    }
    case ExecutorKind::kCheckpoint: {
      CheckpointRestartExecutor exec;
      return exec.execute(problem, pool, ctx, spec.checkpoint);
    }
  }
  FTDAG_ASSERT(false, "unknown executor kind");
  return {};
}

}  // namespace

JobSession::Outcome JobSession::execute(WorkStealingPool& pool) {
  FTDAG_ASSERT(state() == JobState::kRunning,
               "JobSession::execute outside kRunning");
  engine::JobContext ctx;
  ctx.job_id = id_;
  ctx.injector = spec_.injector;
  ctx.trace = spec_.trace;
  ctx.durability = spec_.effective_durability();
  try {
    for (int r = 0; r < spec_.reps; ++r) {
      if (cancel_requested_.load(std::memory_order_relaxed))
        return {JobState::kCancelled, "cancelled at a repetition boundary"};
      problem_.reset_data();
      if (spec_.injector != nullptr) spec_.injector->reset();
      ExecReport report = run_once(problem_, pool, spec_, ctx);
      if (spec_.validate) validate_result(problem_);
      runs_.seconds.push_back(report.seconds);
      runs_.reports.push_back(report);
    }
  } catch (const std::exception& e) {
    return {JobState::kFailed, e.what()};
  }
  return {JobState::kCompleted, {}};
}

Summary RepeatedRuns::reexecution_summary() const {
  std::vector<double> counts;
  counts.reserve(reports.size());
  for (const ExecReport& r : reports)
    counts.push_back(static_cast<double>(r.re_executed));
  return summarize(counts);
}

const char* executor_kind_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kBaseline:
      return "baseline";
    case ExecutorKind::kFaultTolerant:
      return "ft";
    case ExecutorKind::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

}  // namespace ftdag
