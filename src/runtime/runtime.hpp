#pragma once
// ftdag::Runtime: a long-lived scheduling service that runs many jobs over
// ONE WorkStealingPool, replacing the one-shot create-pool / run / tear-down
// lifecycle. The pool's workers are the shared substrate; everything per-job
// (counters, fault domain, trace sink, persist directory, completion
// tracking) is scoped through JobSession + engine::JobContext + JobGroup, so
// concurrent jobs produce byte-identical results to solo runs.
//
// Admission is bounded: at most `max_inflight` jobs execute concurrently
// (one dispatcher thread per slot feeds them into the pool) and at most
// `max_queued` more wait in a FIFO queue. A full queue rejects at submit();
// a queued job past its JobLimits deadline expires at dispatch instead of
// running. Dispatch order is FIFO: jobs *start* in submission order (they
// finish in any order — the pool interleaves their task graphs freely).
//
// Lifecycle is deterministic:
//   drain()    — stop admitting, run every queued job to completion, join.
//   shutdown() — stop admitting, cancel every queued job (running jobs
//                still finish their current repetition loop), join.
// Both are idempotent; the destructor is shutdown(). After either, submit()
// rejects. The classic harness entry points (run_executor & friends) are
// now thin wrappers over a scoped Runtime in borrowed-pool mode.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/task_graph_problem.hpp"
#include "runtime/job_session.hpp"
#include "runtime/run_spec.hpp"
#include "runtime/scheduler.hpp"

namespace ftdag {

class Runtime {
 public:
  struct Options {
    // Worker threads for the owned pool; ignored in borrowed-pool mode.
    unsigned threads = 4;
    // Concurrent job slots (dispatcher threads). Must be >= 1.
    std::size_t max_inflight = 2;
    // Admitted-but-not-started jobs beyond the in-flight slots; a submit
    // past this bound is rejected, not blocked.
    std::size_t max_queued = 256;
    // Seed for the owned pool's steal RNG; ignored in borrowed-pool mode.
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  };

  // Owning mode: constructs a private WorkStealingPool.
  Runtime();
  explicit Runtime(const Options& options);
  // Borrowed mode: schedules onto an existing pool (which may also be used
  // directly by the caller — per-job groups keep the accounting separate).
  // The pool must outlive the Runtime.
  explicit Runtime(WorkStealingPool& pool);
  Runtime(WorkStealingPool& pool, const Options& options);
  ~Runtime();  // shutdown()

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Admits a job. Never blocks: returns a handle already in kQueued, or in
  // kRejected (error() says why) when the spec is invalid, the queue is
  // full, or the runtime is draining/shut down. The problem must stay alive
  // and untouched until the job is terminal; one problem instance per
  // in-flight job.
  JobHandle submit(TaskGraphProblem& problem, RunSpec spec,
                   JobLimits limits = {});

  // Synchronous path: validates and admission-checks like submit(), then
  // runs the job to a terminal state on the *calling* thread — no dispatcher
  // hand-off, no queue wait. This is what the classic single-job harness
  // uses; it counts against nothing (in-flight slots stay free for
  // submitted jobs).
  JobHandle run_sync(TaskGraphProblem& problem, RunSpec spec);

  // Stops admission and finishes every queued job, in order; returns when
  // the runtime is idle. Subsequent submits are rejected.
  void drain();
  // Stops admission and cancels every queued job; running jobs finish (or
  // stop at their next repetition boundary if cancelled). Returns when all
  // dispatchers have exited.
  void shutdown();

  WorkStealingPool& pool() { return pool_; }

  struct Counters {
    std::uint64_t submitted = 0;  // admitted into the queue (or run_sync)
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;
    std::uint64_t rejected = 0;
  };
  Counters counters() const;

 private:
  enum class Mode { kAccepting, kDraining, kStopping };

  void dispatcher_main();
  void run_job(const JobHandle& job);  // begin_running + execute + account
  void account_outcome(JobState state);  // bump counters BEFORE finish()
  JobHandle reject(TaskGraphProblem& problem, RunSpec spec, JobLimits limits,
                   std::string reason);
  void close(Mode mode);

  std::unique_ptr<WorkStealingPool> owned_pool_;  // null in borrowed mode
  WorkStealingPool& pool_;
  const Options options_;

  // mutex_ guards every field below. Dispatchers sleep on work_cv_ waiting
  // for queue entries or a mode change; terminal accounting goes through
  // counters_. Dispatcher threads are spawned lazily on first submit() so a
  // Runtime used only via run_sync costs no threads at all.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<JobHandle> queue_;
  std::vector<std::thread> dispatchers_;
  Mode mode_ = Mode::kAccepting;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_sequence_ = 1;
  Counters counters_;
};

}  // namespace ftdag
