#include "runtime/runtime.hpp"

#include <string>
#include <utility>

#include "support/assert.hpp"

namespace ftdag {

Runtime::Runtime() : Runtime(Options()) {}

Runtime::Runtime(WorkStealingPool& pool) : Runtime(pool, Options()) {}

Runtime::Runtime(const Options& options)
    : owned_pool_(new WorkStealingPool(options.threads, options.seed)),
      pool_(*owned_pool_),
      options_(options) {
  FTDAG_ASSERT(options_.max_inflight >= 1, "Runtime needs max_inflight >= 1");
}

Runtime::Runtime(WorkStealingPool& pool, const Options& options)
    : pool_(pool), options_(options) {
  FTDAG_ASSERT(options_.max_inflight >= 1, "Runtime needs max_inflight >= 1");
}

Runtime::~Runtime() { shutdown(); }

JobHandle Runtime::submit(TaskGraphProblem& problem, RunSpec spec,
                          JobLimits limits) {
  std::string err = spec_error(spec);
  std::unique_lock<std::mutex> lock(mutex_);
  if (err.empty() && mode_ != Mode::kAccepting)
    err = "runtime is no longer accepting jobs (drained or shut down)";
  if (err.empty() && queue_.size() >= options_.max_queued)
    err = "admission queue full (max_queued=" +
          std::to_string(options_.max_queued) + ")";

  JobHandle job(new JobSession(next_id_++, problem, std::move(spec), limits));
  if (!err.empty()) {
    ++counters_.rejected;
    lock.unlock();
    job->finish(JobState::kRejected, std::move(err));
    return job;
  }

  ++counters_.submitted;
  queue_.push_back(job);
  // One dispatcher per in-flight slot, spawned on first demand: a Runtime
  // that only ever run_sync()s never starts a thread.
  while (dispatchers_.size() < options_.max_inflight)
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  lock.unlock();
  work_cv_.notify_one();
  return job;
}

JobHandle Runtime::run_sync(TaskGraphProblem& problem, RunSpec spec) {
  std::string err = spec_error(spec);
  std::unique_lock<std::mutex> lock(mutex_);
  if (err.empty() && mode_ != Mode::kAccepting)
    err = "runtime is no longer accepting jobs (drained or shut down)";
  JobHandle job(new JobSession(next_id_++, problem, std::move(spec), {}));
  if (!err.empty()) {
    ++counters_.rejected;
    lock.unlock();
    job->finish(JobState::kRejected, std::move(err));
    return job;
  }
  ++counters_.submitted;
  const std::uint64_t sequence = next_sequence_++;
  lock.unlock();

  const bool claimed = job->begin_running(sequence);
  FTDAG_ASSERT(claimed, "fresh job must claim kRunning");
  JobSession::Outcome out = job->execute(pool_);
  account_outcome(out.state);
  job->finish(out.state, std::move(out.error));
  return job;
}

// Counter bumps happen before finish() publishes the terminal state: a
// thread woken by wait() must never read counters that lag the state that
// woke it.
void Runtime::account_outcome(JobState state) {
  std::lock_guard<std::mutex> guard(mutex_);
  switch (state) {
    case JobState::kCompleted:
      ++counters_.completed;
      break;
    case JobState::kFailed:
      ++counters_.failed;
      break;
    case JobState::kExpired:
      ++counters_.expired;
      break;
    default:
      ++counters_.cancelled;
      break;
  }
}

void Runtime::run_job(const JobHandle& job) {
  std::uint64_t sequence;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    sequence = next_sequence_++;
  }
  if (!job->begin_running(sequence)) {
    // Lost the claim to try_cancel between pop and here; the canceller did
    // the terminal bookkeeping.
    std::lock_guard<std::mutex> guard(mutex_);
    ++counters_.cancelled;
    return;
  }
  JobSession::Outcome out = job->execute(pool_);
  account_outcome(out.state);
  job->finish(out.state, std::move(out.error));
}

void Runtime::dispatcher_main() {
  for (;;) {
    JobHandle job;
    bool cancel_queued = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return mode_ != Mode::kAccepting || !queue_.empty();
      });
      if (queue_.empty()) return;  // draining/stopping and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
      cancel_queued = mode_ == Mode::kStopping;
    }

    if (cancel_queued) {
      if (job->try_cancel()) {
        std::lock_guard<std::mutex> guard(mutex_);
        ++counters_.cancelled;
      }
      continue;
    }
    if (job->queue_deadline_exceeded()) {
      // Raced cancellations keep their kCancelled; only still-queued jobs
      // expire.
      if (job->state() == JobState::kQueued) {
        account_outcome(JobState::kExpired);
        job->finish(JobState::kExpired,
                    "queue deadline exceeded before dispatch");
      }
      continue;
    }
    run_job(job);
  }
}

void Runtime::close(Mode mode) {
  std::vector<std::thread> dispatchers;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (mode_ == Mode::kAccepting || mode == Mode::kStopping) mode_ = mode;
    dispatchers.swap(dispatchers_);
  }
  work_cv_.notify_all();
  for (std::thread& t : dispatchers) t.join();

  // kStopping with no dispatchers ever spawned still owes queued jobs a
  // terminal state (only possible if close raced submit's thread spawn —
  // swap above took the threads, so sweep whatever is left either way).
  for (;;) {
    JobHandle job;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (queue_.empty()) break;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job->try_cancel()) {
      std::lock_guard<std::mutex> guard(mutex_);
      ++counters_.cancelled;
    }
  }
}

void Runtime::drain() { close(Mode::kDraining); }

void Runtime::shutdown() { close(Mode::kStopping); }

Runtime::Counters Runtime::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return counters_;
}

}  // namespace ftdag
