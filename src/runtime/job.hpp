#pragma once
// Job: type-erased unit of work owned by the scheduler.
//
// Each `spawn` produces exactly one JobNode; the deques store raw JobNode
// pointers (Chase-Lev requires trivially copyable entries). Nodes whose
// callable fits kJobBlockBytes are placement-constructed into fixed-size
// blocks drawn from the spawning worker's freelist; ownership of the block
// travels with the job through the deque handoff (push's release store /
// the thief's acquire), and the worker that *executes* the job destroys it
// in place and recycles the block into its own freelist. Oversized
// callables and spawns from non-worker threads fall back to plain
// new/delete — `pooled()` records which side a node is on.

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace ftdag {

class JobGroup;

// Pooled jobs are placement-constructed into blocks of this many bytes.
// 64 (one cache line) covers vptr + the tagged header word + the
// traversal's largest spawn capture (engine pointer, task pointer, two
// keys, a life number).
inline constexpr std::size_t kJobBlockBytes = 64;

class JobNode {
 public:
  virtual ~JobNode() = default;
  virtual void run() = 0;

  // The header packs two facts into one word so JobNode stays at 16 bytes
  // (vptr + tag) and the callable's offset matches the pre-group layout —
  // growing the node measurably slows the spawn hot path:
  //  - bit 0: this node lives in a worker pool block. A pooled node is
  //    placement-constructed at the block's own address, so the executing
  //    worker destroys it in place and recycles `this`; no separate block
  //    pointer is needed.
  //  - bits 6+: the JobGroup whose pending count this node was charged to
  //    at enqueue time, or zero for untagged (pool-global) work. JobGroup
  //    is cache-line aligned, so its low six bits are free for flags.
  //    Workers propagate the tag to nested spawns, so every job
  //    transitively spawned under a group run is charged to that group.
  void set_pooled() { tag_ |= kPooledBit; }
  bool pooled() const { return (tag_ & kPooledBit) != 0; }

  void set_group(JobGroup* group) {
    tag_ = (tag_ & kPooledBit) | reinterpret_cast<std::uintptr_t>(group);
  }
  JobGroup* group() const {
    return reinterpret_cast<JobGroup*>(tag_ & ~kPooledBit);
  }

 private:
  static constexpr std::uintptr_t kPooledBit = 1;

  std::uintptr_t tag_ = 0;
};

template <typename F>
class JobImpl final : public JobNode {
 public:
  explicit JobImpl(F&& f) : fn_(std::move(f)) {}
  explicit JobImpl(const F& f) : fn_(f) {}
  void run() override { fn_(); }

 private:
  F fn_;
};

// True when JobImpl<F> fits a pool block (operator new's max_align_t
// alignment included) and may be placement-constructed there.
template <typename F>
inline constexpr bool job_fits_block =
    sizeof(JobImpl<std::decay_t<F>>) <= kJobBlockBytes &&
    alignof(JobImpl<std::decay_t<F>>) <= alignof(std::max_align_t);

// Heap-allocating fallback used for oversized callables and non-worker
// spawns; paired with plain delete in the scheduler's retire path.
template <typename F>
JobNode* make_job(F&& f) {
  return new JobImpl<std::decay_t<F>>(std::forward<F>(f));
}

}  // namespace ftdag
