#pragma once
// Job: type-erased unit of work owned by the scheduler.
//
// Each `spawn` allocates exactly one JobNode; the deques store raw JobNode
// pointers (Chase-Lev requires trivially copyable entries). The worker that
// executes a job deletes it.

#include <utility>

namespace ftdag {

class JobNode {
 public:
  virtual ~JobNode() = default;
  virtual void run() = 0;
};

template <typename F>
class JobImpl final : public JobNode {
 public:
  explicit JobImpl(F&& f) : fn_(std::move(f)) {}
  explicit JobImpl(const F& f) : fn_(f) {}
  void run() override { fn_(); }

 private:
  F fn_;
};

template <typename F>
JobNode* make_job(F&& f) {
  return new JobImpl<std::decay_t<F>>(std::forward<F>(f));
}

}  // namespace ftdag
