#pragma once
// Job: type-erased unit of work owned by the scheduler.
//
// Each `spawn` produces exactly one JobNode; the deques store raw JobNode
// pointers (Chase-Lev requires trivially copyable entries). Nodes whose
// callable fits kJobBlockBytes are placement-constructed into fixed-size
// blocks drawn from the spawning worker's freelist; ownership of the block
// travels with the job through the deque handoff (push's release store /
// the thief's acquire), and the worker that *executes* the job destroys it
// in place and recycles the block into its own freelist. Oversized
// callables and spawns from non-worker threads fall back to plain
// new/delete — `pool_block()` records which side a node is on.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ftdag {

// Pooled jobs are placement-constructed into blocks of this many bytes.
// 64 (one cache line) covers vptr + block pointer + the traversal's largest
// spawn capture (engine pointer, task pointer, two keys, a life number).
inline constexpr std::size_t kJobBlockBytes = 64;

class JobNode {
 public:
  virtual ~JobNode() = default;
  virtual void run() = 0;

  // Non-null when this node lives in a worker pool block: the executing
  // worker must destroy it in place and recycle the block, not delete it.
  void set_pool_block(void* block) { pool_block_ = block; }
  void* pool_block() const { return pool_block_; }

 private:
  void* pool_block_ = nullptr;
};

template <typename F>
class JobImpl final : public JobNode {
 public:
  explicit JobImpl(F&& f) : fn_(std::move(f)) {}
  explicit JobImpl(const F& f) : fn_(f) {}
  void run() override { fn_(); }

 private:
  F fn_;
};

// True when JobImpl<F> fits a pool block (operator new's max_align_t
// alignment included) and may be placement-constructed there.
template <typename F>
inline constexpr bool job_fits_block =
    sizeof(JobImpl<std::decay_t<F>>) <= kJobBlockBytes &&
    alignof(JobImpl<std::decay_t<F>>) <= alignof(std::max_align_t);

// Heap-allocating fallback used for oversized callables and non-worker
// spawns; paired with plain delete in the scheduler's retire path.
template <typename F>
JobNode* make_job(F&& f) {
  return new JobImpl<std::decay_t<F>>(std::forward<F>(f));
}

}  // namespace ftdag
