#pragma once
// RunSpec: the complete description of one job — which engine instantiation
// to run, how many repetitions, and every per-job service knob (fault
// domain, trace sink, durability target). A RunSpec plus a TaskGraphProblem
// is everything Runtime::submit needs; the classic harness entry points
// (harness/experiment.hpp) build one and run it synchronously.

#include <string>
#include <vector>

#include "core/checkpoint_executor.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "persist/durability.hpp"
#include "support/stats.hpp"
#include "trace/trace.hpp"

namespace ftdag {

// The four engine instantiations (src/engine/traversal_engine.hpp) behind
// one switch. kSerial runs the inline-backend oracle; kBaseline the NABBIT
// walk with all policies compiled out; kFaultTolerant the selective-recovery
// + detection composition; kCheckpoint the BSP collective comparator.
enum class ExecutorKind {
  kSerial,
  kBaseline,
  kFaultTolerant,
  kCheckpoint,
};

const char* executor_kind_name(ExecutorKind kind);

struct RunSpec {
  ExecutorKind kind = ExecutorKind::kBaseline;
  int reps = 1;
  // Fault injection is honoured by the fault-tolerant and checkpoint
  // executors only; passing an injector to kSerial/kBaseline is an error
  // (they cannot recover).
  FaultInjector* injector = nullptr;
  ExecutorOptions ft;            // kFaultTolerant knobs (replication, watchdog)
  CheckpointOptions checkpoint;  // kCheckpoint knobs (interval, snapshots)
  ExecutionTrace* trace = nullptr;  // kFaultTolerant only
  bool validate = true;  // checksum against the sequential reference per run

  // Durable checkpoint/restart (kFaultTolerant only): when enabled
  // (non-empty dir) this overrides ft.durability, so sweeps can point runs
  // at a persist dir without rebuilding the whole options struct. Durable
  // resume with reps > 1 is rejected at admission: every rep after the
  // first would restore the finished state and skip all tasks, so
  // crash/restart experiments want reps = 1 per process.
  //
  // Journal-thread lifecycle: each durable run owns one group-commit
  // journal thread (persist::CommitPipeline), started when the engine
  // constructs its durability policy; fill() quiesces the commit ring
  // before the run's ExecReport is populated, and the policy's destructor
  // joins the thread and syncs per the wal-sync policy before execute()
  // returns — so a job that reaches a terminal state has no journaling
  // still in flight. Concurrent durable jobs run one journal thread each,
  // over disjoint job_tag directories; Runtime shutdown needs no extra
  // drain step.
  persist::DurabilityOptions durability;

  // Stable per-job label. When set and durability is enabled, persist
  // artifacts land in `<dir>/<job_tag>/` instead of `<dir>/`, so concurrent
  // durable jobs sharing one base directory never share a WAL — and a
  // resubmitted job with the same tag finds its own state after a crash.
  // Empty (the default) keeps the classic single-job layout.
  std::string job_tag;

  // Durability options actually in effect for this spec (the override rule
  // above plus the job_tag subdirectory), used by the execution layer and
  // by admission validation.
  persist::DurabilityOptions effective_durability() const {
    persist::DurabilityOptions d = durability.enabled() ? durability
                                                        : ft.durability;
    if (d.enabled() && !job_tag.empty()) d.dir += "/" + job_tag;
    return d;
  }
};

struct RepeatedRuns {
  std::vector<double> seconds;
  std::vector<ExecReport> reports;

  Summary time_summary() const { return summarize(seconds); }
  Summary reexecution_summary() const;
  double mean_seconds() const { return time_summary().mean; }
};

}  // namespace ftdag
