#pragma once
// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05), C++11-atomics
// formulation following Le, Pop, Cohen & Zappa Nardelli (PPoPP'13).
//
// One owner thread pushes/pops at the bottom; any number of thieves steal
// from the top. Stores trivially-copyable T (the scheduler stores Job*).
// The circular buffer grows geometrically and old buffers are retired to a
// garbage list freed at destruction, so a thief racing on a stale buffer
// never reads freed memory.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "check/sync_shim.hpp"
#include "support/assert.hpp"
#include "support/cache.hpp"

namespace ftdag {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque entries race on steal; restrict to trivial types");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up_pow2(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  // Owner only. Pushes one element at the bottom.
  void push(T item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // pairs: deque-top — observe thief CAS advances of top_ before sizing.
    std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    // Publish with a release *store* rather than the paper's release fence +
    // relaxed store: the only later operation the fence could order is this
    // store of bottom_, so the two are equivalent for every acquire reader —
    // and ThreadSanitizer does not model fences, so the fence formulation
    // reports the steal path as racing on the job payload.
    // pairs: deque-bottom
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. Pops from the bottom; false when empty.
  bool pop(T& out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    // seq_cst: Dekker-style conflict with steal() — the bottom_ store must
    // be globally ordered before the top_ load, or a concurrent thief and
    // the owner could both take the last element (paper Fig. 4, PPoPP'13).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf->get(b);
    if (t == b) {
      // Last element: race with thieves via CAS on top.
      // seq_cst: must be in the same total order as the thieves' top_ CAS
      // so exactly one side wins the last element. pairs: deque-top
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  // Any thread. Steals from the top; false when empty or lost a race.
  bool steal(T& out) {
    // pairs: deque-top
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst: mirror of the owner's pop() fence — orders this thief's
    // top_ load before its bottom_ load in the single total order, closing
    // the window where both sides believe the last element is theirs.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // pairs: deque-bottom — synchronizes with push()'s release store, making
    // the pushed payload in the buffer visible before we read it.
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    // pairs: deque-buffer — dependency-ordered read of the buffer published
    // by grow(); the thief may see the old buffer, which stays valid.
    Buffer* buf = buffer_.load(std::memory_order_consume);
    out = buf->get(t);
    // seq_cst: same total order as the owner's last-element CAS in pop();
    // exactly one contender advances top_. pairs: deque-top
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  // Approximate size; exact only when quiescent.
  std::size_t size_estimate() const {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new Atomic<T>[cap]) {}

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }

    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<Atomic<T>[]> slots;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* fresh = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) fresh->put(i, old->get(i));
    // pairs: deque-buffer — publish the filled buffer to consume readers.
    buffer_.store(fresh, std::memory_order_release);
    retired_.push_back(old);  // owner-only list; freed at destruction
    return fresh;
  }

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  alignas(kCacheLine) Atomic<std::int64_t> top_{0};
  alignas(kCacheLine) Atomic<std::int64_t> bottom_{0};
  alignas(kCacheLine) Atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;
};

}  // namespace ftdag
