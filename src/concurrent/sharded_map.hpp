#pragma once
// Sharded concurrent hash map from 64-bit task keys to heap-allocated values.
//
// This is the paper's "concurrent hash map" that stores *pointers to tasks,
// not the tasks themselves* (Section III): values live in individually
// allocated nodes whose addresses stay stable across table growth, so the
// fault-tolerant executor can atomically swap a task pointer inside an entry
// (REPLACETASK) without holding any map lock.
//
// Each shard is a linear-probing open-addressing table guarded by a spin
// lock. Entries are never erased during a graph execution (NABBIT only ever
// inserts), which keeps probing simple; `clear` recycles everything between
// runs.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/cache.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

using MapKey = std::int64_t;

template <typename V>
class ShardedMap {
 public:
  explicit ShardedMap(std::size_t shard_count = 64,
                      std::size_t initial_per_shard = 64)
      : shards_(round_up_pow2(shard_count)) {
    for (auto& s : shards_) s->init(round_up_pow2(initial_per_shard));
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  // Inserts the heap-allocated value returned by factory() when the key is
  // absent (ownership transfers to the map; factory is only invoked on
  // insertion). Returns {value pointer, inserted}. The pointer is stable for
  // the life of the map (until clear/destruction).
  template <typename F>
  std::pair<V*, bool> insert_if_absent(MapKey key, F&& factory) {
    Shard& shard = shard_for(key);
    SpinLockGuard guard(shard.lock);
    std::size_t idx;
    if (shard.locate(key, idx)) return {shard.slots[idx].value, false};
    if ((shard.count + 1) * 10 > shard.slots.size() * 7) {
      shard.grow();
      bool found = shard.locate(key, idx);
      FTDAG_ASSERT(!found, "key appeared during grow");
    }
    V* value = factory();
    shard.slots[idx] = Slot{key, value};
    ++shard.count;
    // Relaxed: size_ is a statistic, not a publication point — readers of
    // the map synchronize through the shard locks, never through size_.
    size_.fetch_add(1, std::memory_order_relaxed);
    return {value, true};
  }

  // Finds the value for key; nullptr when absent.
  V* find(MapKey key) {
    Shard& shard = shard_for(key);
    SpinLockGuard guard(shard.lock);
    std::size_t idx;
    if (shard.locate(key, idx)) return shard.slots[idx].value;
    return nullptr;
  }

  // Visits every (key, value&) pair. Not concurrent-safe with writers; used
  // by post-run validation and statistics only.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& s : shards_) {
      SpinLockGuard guard(s->lock);
      for (const Slot& slot : s->slots)
        if (slot.value != nullptr) fn(slot.key, *slot.value);
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  void clear() {
    for (auto& s : shards_) {
      SpinLockGuard guard(s->lock);
      for (Slot& slot : s->slots) {
        delete slot.value;
        slot = Slot{};
      }
      s->count = 0;
    }
    size_.store(0, std::memory_order_relaxed);
  }

  ~ShardedMap() { clear(); }

 private:
  struct Slot {
    MapKey key = 0;
    V* value = nullptr;  // nullptr marks an empty slot
  };

  struct Shard {
    SpinLock lock;
    std::vector<Slot> slots FTDAG_GUARDED_BY(lock);
    std::size_t count FTDAG_GUARDED_BY(lock) = 0;

    // Setup only; runs inside the ShardedMap constructor, before the shard
    // is visible to any other thread.
    void init(std::size_t cap) FTDAG_REQUIRES(lock) {
      slots.assign(cap, Slot{});
    }

    // Probes for key. Returns true and its index when present; otherwise
    // false with idx at the first empty slot for insertion.
    bool locate(MapKey key, std::size_t& idx) const FTDAG_REQUIRES(lock) {
      const std::size_t mask = slots.size() - 1;
      std::size_t i = hash_key(key) & mask;
      for (;;) {
        const Slot& s = slots[i];
        if (s.value == nullptr) {
          idx = i;
          return false;
        }
        if (s.key == key) {
          idx = i;
          return true;
        }
        i = (i + 1) & mask;
      }
    }

    void grow() FTDAG_REQUIRES(lock) {
      std::vector<Slot> old = std::move(slots);
      slots.assign(old.size() * 2, Slot{});
      for (const Slot& s : old) {
        if (s.value == nullptr) continue;
        std::size_t idx;
        bool found = locate(s.key, idx);
        FTDAG_ASSERT(!found, "duplicate key during rehash");
        slots[idx] = s;
      }
    }
  };

  Shard& shard_for(MapKey key) {
    return *shards_[hash_key(key) >> kShardShift &
                    (shards_.size() - 1)];
  }

  static std::uint64_t hash_key(MapKey key) {
    return mix64(static_cast<std::uint64_t>(key));
  }

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  // Shard selection uses high hash bits so in-shard probing (low bits) and
  // shard choice stay independent.
  static constexpr unsigned kShardShift = 48;

  std::vector<CachePadded<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace ftdag
