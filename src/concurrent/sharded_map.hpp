#pragma once
// Sharded concurrent hash map from 64-bit task keys to heap-allocated values.
//
// This is the paper's "concurrent hash map" that stores *pointers to tasks,
// not the tasks themselves* (Section III): values live in individually
// allocated nodes whose addresses stay stable across table growth, so the
// fault-tolerant executor can atomically swap a task pointer inside an entry
// (REPLACETASK) without holding any map lock.
//
// Concurrency contract (the traversal's hottest operation is `find`, one per
// edge notification and per TRYINITCOMPUTE probe):
//
//   - `find` is LOCK-FREE: a linear probe over atomic {key, value} slots.
//     Writers publish a slot by storing the key first, then the value with a
//     release store (`pairs: map-slot-publish`); a reader's acquire load of a
//     non-null value therefore sees the matching key and the fully
//     constructed pointee. Legal because NABBIT never erases during a run —
//     within one table a non-null slot stays set forever, so probing to the
//     first null slot is a sound absence check.
//   - `insert_if_absent` and `grow` serialize on the shard spin lock. Growth
//     swaps in a freshly populated table with a release store
//     (`pairs: map-table-publish`); readers acquire the table pointer per
//     probe and may keep probing a retired table, which stays valid (and
//     complete up to its retirement) until `clear`/destruction frees it —
//     the same retire-don't-free scheme as the Chase-Lev deque's buffers.
//   - Visibility: a reader that *synchronizes with* an insert (here: via the
//     scheduler's deque handoff or a task lock) is guaranteed to find the
//     key — it observes a table at least as new as the inserter's, and
//     within that table every slot the inserter saw. An unrelated concurrent
//     reader may miss an in-flight insert; that is the linearizable "find
//     before insert" outcome.
//   - `for_each`, `size` (exact), and `clear` are quiescent-only.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "check/sync_shim.hpp"
#include "support/assert.hpp"
#include "support/cache.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

using MapKey = std::int64_t;

template <typename V>
class ShardedMap {
 public:
  explicit ShardedMap(std::size_t shard_count = 64,
                      std::size_t initial_per_shard = 64)
      : shards_(round_up_pow2(shard_count)) {
    // Single-threaded setup: the map is published to other threads by
    // whatever mechanism shares the owning object.
    for (auto& s : shards_)
      s->table_.store(new Table(round_up_pow2(initial_per_shard)),
                     std::memory_order_relaxed);
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  // Inserts the heap-allocated value returned by factory() when the key is
  // absent (ownership transfers to the map; factory is only invoked on
  // insertion). Returns {value pointer, inserted}. The pointer is stable for
  // the life of the map (until clear/destruction).
  template <typename F>
  std::pair<V*, bool> insert_if_absent(MapKey key, F&& factory) {
    Shard& shard = shard_for(key);
    CheckMutexGuard guard(shard.lock);
    // Relaxed: the table pointer is only replaced under this shard's lock,
    // so the holder always sees the newest table.
    Table* table = shard.table_.load(std::memory_order_relaxed);
    std::size_t idx;
    if (locate(*table, key, idx))
      return {table->slots[idx].value_.load(std::memory_order_relaxed), false};
    if ((shard.count + 1) * 10 > table->capacity * 7) {
      table = shard.grow();
      bool found = locate(*table, key, idx);
      FTDAG_ASSERT(!found, "key appeared during grow");
    }
    V* value = factory();
    table->slots[idx].key_.store(key, std::memory_order_relaxed);
    // pairs: map-slot-publish — the release store publishes the slot's key
    // and the value's pointee to lock-free readers; until it lands the slot
    // still reads as empty.
    table->slots[idx].value_.store(value, std::memory_order_release);
    ++shard.count;
    // Relaxed: size_ is a statistic, not a publication point — nothing
    // synchronizes through it (see size()).
    size_.fetch_add(1, std::memory_order_relaxed);
    return {value, true};
  }

  // Finds the value for key; nullptr when absent. Lock-free: callers that
  // synchronize with the insert always hit (see the header comment);
  // unrelated racing readers may miss an in-flight insert.
  V* find(MapKey key) {
    const Shard& shard = shard_for(key);
    // pairs: map-table-publish — acquire the current (or a recent) table;
    // a retired table stays valid and complete up to its retirement.
    const Table* table = shard.table_.load(std::memory_order_acquire);
    const std::size_t mask = table->mask;
    std::size_t i = hash_key(key) & mask;
    for (;;) {
      const Slot& s = table->slots[i];
      // pairs: map-slot-publish — a non-null value makes the key (stored
      // before it) and the pointee visible.
      V* value = s.value_.load(std::memory_order_acquire);
      if (value == nullptr) return nullptr;  // first empty slot: absent
      if (s.key_.load(std::memory_order_relaxed) == key) return value;
      i = (i + 1) & mask;
    }
  }

  // Visits every (key, value&) pair. QUIESCENT-ONLY: must not run
  // concurrently with insert_if_absent (used by post-run validation and
  // statistics). The shard locks are still taken so a stray concurrent
  // writer corrupts nothing, and a debug assert catches entries appearing
  // mid-iteration.
  template <typename Fn>
  void for_each(Fn&& fn) {
    [[maybe_unused]] const std::size_t size_before =
        size_.load(std::memory_order_relaxed);
    for (auto& s : shards_) {
      CheckMutexGuard guard(s->lock);
      Table* table = s->table_.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < table->capacity; ++i) {
        V* value = table->slots[i].value_.load(std::memory_order_relaxed);
        if (value != nullptr)
          fn(table->slots[i].key_.load(std::memory_order_relaxed), *value);
      }
    }
    FTDAG_DASSERT(size_.load(std::memory_order_relaxed) == size_before,
                  "for_each raced an insert; it is quiescent-only");
  }

  // Entry count. Exact only when quiescent: the relaxed counter can trail a
  // concurrent insert whose slot is already visible (or vice versa).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  // QUIESCENT-ONLY: frees every value and retired table. No reader may hold
  // a pointer obtained from find() across a clear().
  void clear() {
    [[maybe_unused]] std::size_t cleared = 0;
    for (auto& s : shards_) {
      CheckMutexGuard guard(s->lock);
      Table* table = s->table_.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < table->capacity; ++i) {
        V* value = table->slots[i].value_.load(std::memory_order_relaxed);
        if (value != nullptr) ++cleared;
        delete value;
        table->slots[i].key_.store(0, std::memory_order_relaxed);
        table->slots[i].value_.store(nullptr, std::memory_order_relaxed);
      }
      // Retired tables share value pointers with the current table (grow
      // copies, never moves), so values are deleted exactly once above.
      for (Table* t : s->retired) delete t;
      s->retired.clear();
      s->count = 0;
    }
    FTDAG_DASSERT(cleared == size_.load(std::memory_order_relaxed),
                  "clear raced an insert; it is quiescent-only");
    size_.store(0, std::memory_order_relaxed);
  }

  ~ShardedMap() {
    clear();
    for (auto& s : shards_) delete s->table_.load(std::memory_order_relaxed);
  }

 private:
  // One probe slot. Writers (under the shard lock) store key before the
  // release store of value; value is the publication point, nullptr marks
  // an empty slot.
  struct Slot {
    Atomic<MapKey> key_{0};
    Atomic<V*> value_{nullptr};
  };

  struct Table {
    explicit Table(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new Slot[cap]) {}

    const std::size_t capacity;
    const std::size_t mask;
    const std::unique_ptr<Slot[]> slots;
  };

  struct Shard {
    CheckMutex lock;
    // Written only under `lock`; read lock-free by find() with acquire.
    Atomic<Table*> table_{nullptr};
    std::size_t count FTDAG_GUARDED_BY(lock) = 0;
    // Tables replaced by grow(); readers may still probe them, so they are
    // freed only at clear()/destruction.
    std::vector<Table*> retired FTDAG_GUARDED_BY(lock);

    // Doubles the table and swaps it in. Readers keep probing the retired
    // table until their next find(); every key present at retirement was
    // copied, so they miss nothing older than the swap.
    Table* grow() FTDAG_REQUIRES(lock) {
      Table* old = table_.load(std::memory_order_relaxed);
      Table* fresh = new Table(old->capacity * 2);
      for (std::size_t i = 0; i < old->capacity; ++i) {
        V* value = old->slots[i].value_.load(std::memory_order_relaxed);
        if (value == nullptr) continue;
        const MapKey key = old->slots[i].key_.load(std::memory_order_relaxed);
        std::size_t idx;
        bool found = locate(*fresh, key, idx);
        FTDAG_ASSERT(!found, "duplicate key during rehash");
        fresh->slots[idx].key_.store(key, std::memory_order_relaxed);
        fresh->slots[idx].value_.store(value, std::memory_order_relaxed);
      }
      // pairs: map-table-publish — release makes every copied slot visible
      // to readers that acquire the fresh table pointer.
      table_.store(fresh, std::memory_order_release);
      retired.push_back(old);
      return fresh;
    }
  };

  // Probes `table` for key. Returns true and its index when present;
  // otherwise false with idx at the first empty slot for insertion. Caller
  // must hold the shard lock (writer-side probe; relaxed loads suffice
  // because all slot writes happen under the same lock).
  static bool locate(const Table& table, MapKey key, std::size_t& idx) {
    const std::size_t mask = table.mask;
    std::size_t i = hash_key(key) & mask;
    for (;;) {
      const Slot& s = table.slots[i];
      if (s.value_.load(std::memory_order_relaxed) == nullptr) {
        idx = i;
        return false;
      }
      if (s.key_.load(std::memory_order_relaxed) == key) {
        idx = i;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  Shard& shard_for(MapKey key) {
    return *shards_[hash_key(key) >> kShardShift &
                    (shards_.size() - 1)];
  }

  static std::uint64_t hash_key(MapKey key) {
    return mix64(static_cast<std::uint64_t>(key));
  }

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  // Shard selection uses high hash bits so in-shard probing (low bits) and
  // shard choice stay independent.
  static constexpr unsigned kShardShift = 48;

  std::vector<CachePadded<Shard>> shards_;
  Atomic<std::size_t> size_{0};
};

}  // namespace ftdag
