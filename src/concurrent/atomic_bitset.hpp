#pragma once
// Fixed-size atomic bit vector.
//
// Implements the paper's per-task notification bit vector (Guarantee 3):
// one bit per predecessor plus the self slot, initialized to all-ones;
// `fetch_unset` atomically clears a bit and reports whether this caller was
// the one to clear it, which gates the join-counter decrement so each
// predecessor decrements exactly once even across recoveries.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "check/sync_shim.hpp"
#include "support/assert.hpp"

namespace ftdag {

class AtomicBitset {
 public:
  explicit AtomicBitset(std::size_t bits)
      : bits_(bits), words_(new Atomic<std::uint64_t>[word_count()]) {
    set_all();
  }

  AtomicBitset(const AtomicBitset&) = delete;
  AtomicBitset& operator=(const AtomicBitset&) = delete;

  std::size_t size() const { return bits_; }

  // Atomically clears bit i; returns true iff the bit was previously set
  // (i.e. this caller performed the transition).
  bool fetch_unset(std::size_t i) {
    FTDAG_DASSERT(i < bits_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    // acq_rel chains claim/reset edges through the word: the winner of a
    // bit observes everything the resetter published.
    const std::uint64_t prev =
        words_[i >> 6].fetch_and(~mask,
                                 std::memory_order_acq_rel);  // pairs: bitset-word
    return (prev & mask) != 0;
  }

  // Atomically sets bit i; returns true iff the bit was previously clear.
  bool fetch_set(std::size_t i) {
    FTDAG_DASSERT(i < bits_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask,
                                std::memory_order_acq_rel);  // pairs: bitset-word
    return (prev & mask) == 0;
  }

  bool test(std::size_t i) const {
    FTDAG_DASSERT(i < bits_, "bit index out of range");
    // pairs: bitset-word
    return (words_[i >> 6].load(std::memory_order_acquire) >>
            (i & 63)) & 1;
  }

  // Sets every bit (SETALLBITS in the paper's RESETNODE).
  void set_all() {
    const std::size_t n = word_count();
    for (std::size_t w = 0; w < n; ++w)
      // pairs: bitset-word — RESETNODE republishes all bits; claimants
      // synchronize via their acq_rel RMWs on the same word.
      words_[w].store(~0ULL, std::memory_order_release);
    // Keep unused tail bits set; they are never addressed.
  }

  // Number of set bits among the addressable range.
  std::size_t count() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < bits_; ++i) total += test(i) ? 1 : 0;
    return total;
  }

 private:
  std::size_t word_count() const { return (bits_ + 63) / 64; }

  std::size_t bits_;
  std::unique_ptr<Atomic<std::uint64_t>[]> words_;
};

}  // namespace ftdag
