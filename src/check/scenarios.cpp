#include "check/scenarios.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "check/sync_shim.hpp"
#include "concurrent/sharded_map.hpp"
#include "engine/recovery_table.hpp"

namespace ftdag::check {
namespace {

// --- recovery-claim (real RecoveryTable) -------------------------------
// Guarantee 1: exactly one of two concurrent observers of the same
// (key, life) failure claims the recovery. Exercises the production
// insert_if_absent + `recovery-life` CAS through the shim.

struct RecoveryClaimState {
  RecoveryTable table;
  Shared<int> winner_payload;
  std::array<bool, 2> claimed{};
};

Execution make_recovery_claim() {
  auto st = std::make_shared<RecoveryClaimState>();
  // Uncontrolled setup: first failure of key 7 inserts the record at life 1.
  (void)st->table.is_recovering(7, 1);
  Execution e;
  for (int t = 0; t < 2; ++t) {
    e.threads.push_back([st, t] {
      const bool already = st->table.is_recovering(7, 2);
      st->claimed[static_cast<std::size_t>(t)] = !already;
      // Only the claimant may touch the recovery state; two writers here
      // would be both an invariant failure and a detector-visible race.
      if (!already) st->winner_payload.set(t, "recovery-winner");
    });
  }
  e.invariant = [st](std::string& why) {
    const int claims = (st->claimed[0] ? 1 : 0) + (st->claimed[1] ? 1 : 0);
    if (claims != 1) {
      why = "expected exactly one recovery claim, got " +
            std::to_string(claims);
      return false;
    }
    return true;
  };
  return e;
}

// --- map-find-during-grow (real ShardedMap) ----------------------------
// A reader probes while a writer's insert triggers table growth. The
// pre-seeded key must stay findable through the grow (retire-don't-free);
// a hit on the in-flight key must see its fully published payload
// (`map-slot-publish` / `map-table-publish` edges).

using MapPayload = Shared<std::uint64_t>;

struct MapGrowState {
  // One shard, capacity 2: the setup insert brings the load factor to the
  // grow threshold, so the controlled insert of key 2 grows the table.
  MapGrowState() : map(1, 2) {}
  ShardedMap<MapPayload> map;
  bool found1 = false;
  std::uint64_t got1 = 0;
  bool found2 = false;
  std::uint64_t got2 = 0;
};

Execution make_map_find_during_grow() {
  auto st = std::make_shared<MapGrowState>();
  (void)st->map.insert_if_absent(1, [] {
    auto* payload = new MapPayload();
    payload->set(11, "map-payload");
    return payload;
  });
  Execution e;
  e.threads.push_back([st] {  // writer: insert key 2, growing the table
    (void)st->map.insert_if_absent(2, [] {
      auto* payload = new MapPayload();
      // Written before the slot's release publish; a reader that finds
      // key 2 must be ordered after this write.
      payload->set(22, "map-payload");
      return payload;
    });
  });
  e.threads.push_back([st] {  // reader: racing find of key 2, then key 1
    if (MapPayload* v2 = st->map.find(2)) {
      st->found2 = true;
      st->got2 = v2->get("map-payload");
    }
    if (MapPayload* v1 = st->map.find(1)) {
      st->found1 = true;
      st->got1 = v1->get("map-payload");
    }
  });
  e.invariant = [st](std::string& why) {
    if (!st->found1 || st->got1 != 11) {
      why = "pre-seeded key 1 lost or corrupted during grow";
      return false;
    }
    if (st->found2 && st->got2 != 22) {
      why = "key 2 found but its payload was not fully published";
      return false;
    }
    return true;
  };
  return e;
}

// --- jobgroup-settle (transcription of scheduler.cpp finish_job) -------
// Two workers settle the group's pending counter with acq_rel fetch_sub
// (`pairs: group-pending`); the waiter that observes zero must see every
// worker's job result.

struct SettleState {
  Atomic<std::int64_t> pending{2};
  std::array<Shared<int>, 2> results;
  int sum = 0;
};

Execution make_jobgroup_settle() {
  auto st = std::make_shared<SettleState>();
  Execution e;
  for (int t = 0; t < 2; ++t) {
    e.threads.push_back([st, t] {
      st->results[static_cast<std::size_t>(t)].set(10 + t, "job-result");
      st->pending.fetch_sub(
          1, std::memory_order_acq_rel FTDAG_SYNC_TAG("group-pending"));
    });
  }
  e.threads.push_back([st] {
    await(
        [st] {
          return st->pending.load(std::memory_order_relaxed) == 0;
        },
        "group-pending");
    st->pending.load(std::memory_order_acquire FTDAG_SYNC_TAG("group-pending"));
    st->sum = st->results[0].get("job-result") + st->results[1].get("job-result");
  });
  e.invariant = [st](std::string& why) {
    if (st->sum != 21) {
      why = "waiter saw pending==0 but not both results (sum=" +
            std::to_string(st->sum) + ")";
      return false;
    }
    return true;
  };
  return e;
}

// --- jobgroup-cancel / jobgroup-expiry (transcription of
// job_session.cpp) -----------------------------------------------------
// JobSession's state machine: transitions serialize under mutex_; fields
// read by observers are published before the release store of state_
// (`pairs: job-state`). try_cancel takes kQueued jobs to kCancelled, or
// flags a kRunning job's cancel_requested_; the queue-timeout expirer
// takes kQueued jobs to kExpired. Exactly one party wins the queued job.

enum JobState : int {
  kQueued = 0,
  kRunning = 1,
  kCompleted = 2,
  kCancelled = 3,
  kExpired = 4,
};

struct SessionState {
  CheckMutex mutex;
  Atomic<int> state{kQueued};
  Atomic<bool> cancel_requested{false};
  Shared<int> error{0};
  Shared<int> result{0};
  bool claimed = false;
  bool cancelled = false;
  bool expired = false;
  bool flagged_running = false;
};

void worker_begin_running(const std::shared_ptr<SessionState>& st) {
  bool claimed = false;
  {
    CheckMutexGuard guard(st->mutex FTDAG_SYNC_TAG("job-mutex"));
    if (st->state.load(std::memory_order_acquire FTDAG_SYNC_TAG("job-state")) ==
        kQueued) {
      st->state.store(kRunning,
                      std::memory_order_release FTDAG_SYNC_TAG("job-state"));
      claimed = true;
    }
  }
  if (claimed) {
    st->result.set(42, "job-result");
    CheckMutexGuard guard(st->mutex FTDAG_SYNC_TAG("job-mutex"));
    st->state.store(kCompleted,
                    std::memory_order_release FTDAG_SYNC_TAG("job-state"));
  }
  st->claimed = claimed;
}

void canceller(const std::shared_ptr<SessionState>& st) {
  CheckMutexGuard guard(st->mutex FTDAG_SYNC_TAG("job-mutex"));
  const int s =
      st->state.load(std::memory_order_acquire FTDAG_SYNC_TAG("job-state"));
  if (s == kQueued) {
    st->error.set(1, "job-error");
    st->state.store(kCancelled,
                    std::memory_order_release FTDAG_SYNC_TAG("job-state"));
    st->cancelled = true;
  } else if (s == kRunning) {
    st->cancel_requested.store(
        true, std::memory_order_relaxed FTDAG_SYNC_TAG("job-cancel"));
    st->flagged_running = true;
  }
}

void expirer(const std::shared_ptr<SessionState>& st) {
  // Queue-timeout sweep: the deadline has passed; expire the job iff it is
  // still queued.
  CheckMutexGuard guard(st->mutex FTDAG_SYNC_TAG("job-mutex"));
  if (st->state.load(std::memory_order_acquire FTDAG_SYNC_TAG("job-state")) ==
      kQueued) {
    st->error.set(2, "job-error");
    st->state.store(kExpired,
                    std::memory_order_release FTDAG_SYNC_TAG("job-state"));
    st->expired = true;
  }
}

Execution make_jobgroup_cancel() {
  auto st = std::make_shared<SessionState>();
  Execution e;
  e.threads.push_back([st] { worker_begin_running(st); });
  e.threads.push_back([st] { canceller(st); });
  e.invariant = [st](std::string& why) {
    if (st->claimed == st->cancelled) {
      why = std::string("begin_running and try_cancel must win exactly once "
                        "(claimed=") +
            (st->claimed ? "1" : "0") + ", cancelled=" +
            (st->cancelled ? "1" : "0") + ")";
      return false;
    }
    return true;
  };
  return e;
}

Execution make_jobgroup_expiry() {
  auto st = std::make_shared<SessionState>();
  Execution e;
  e.threads.push_back([st] { worker_begin_running(st); });
  e.threads.push_back([st] { canceller(st); });
  e.threads.push_back([st] { expirer(st); });
  e.invariant = [st](std::string& why) {
    const int winners = (st->claimed ? 1 : 0) + (st->cancelled ? 1 : 0) +
                        (st->expired ? 1 : 0);
    if (winners != 1) {
      why = "queued job must be claimed, cancelled, or expired exactly once; "
            "got " +
            std::to_string(winners) + " winners";
      return false;
    }
    return true;
  };
  return e;
}

// --- wal-commit (transcription of the commit-ring publish/drain) -------
// The group-commit pipeline (persist/commit_pipeline.cpp): a worker takes
// its global sequence from the publish counter, seats the serialized
// record in a ring cell, and publishes the cell stamp with a release
// store (`wal-ring-slot`). The journal thread's acquire load of that
// stamp is the only edge that makes the record bytes visible before it
// appends them and advances the durable epoch (`wal-durable-seq`). Under
// WalSync::kEvery the worker acks that epoch before the engine publishes
// the task status, so a committed status still implies a journaled
// record (prefix-consistency; DESIGN.md §9). The mutation models a drain
// that skips the sequence check — reading the cell after only a relaxed
// stamp probe — which turns the record read into a data race.

struct WalState {
  Atomic<std::uint64_t> pub_seq{0};      // CommitPipeline::enqueue_pos_
  Atomic<std::uint64_t> slot_stamp{0};   // Cell::stamp, one-cell ring
  Shared<int> record{0};                 // CommitEntry::record bytes
  Atomic<std::uint64_t> durable_seq{0};  // epoch advanced after the fsync
  Shared<int> journal_log{0};            // the on-disk image
  Atomic<int> status{0};
  int observed = -1;
};

Execution make_wal_commit(bool mutated) {
  auto st = std::make_shared<WalState>();
  Execution e;
  e.threads.push_back([st] {  // worker: publish, every-mode durable ack
    const std::uint64_t pos = st->pub_seq.fetch_add(
        1, std::memory_order_relaxed FTDAG_SYNC_TAG("wal-pub-seq"));
    st->record.set(1, "wal-ring-record");
    st->slot_stamp.store(
        pos + 1, std::memory_order_release FTDAG_SYNC_TAG("wal-ring-slot"));
    await(
        [st, pos] {
          return st->durable_seq.load(std::memory_order_relaxed) >= pos + 1;
        },
        "wal-durable-seq");
    st->durable_seq.load(std::memory_order_acquire
                             FTDAG_SYNC_TAG("wal-durable-seq"));
    st->status.store(1, std::memory_order_release FTDAG_SYNC_TAG("task-status"));
  });
  e.threads.push_back([st, mutated] {  // journal thread: sequence-order drain
    await(
        [st] { return st->slot_stamp.load(std::memory_order_relaxed) == 1; },
        "wal-ring-slot");
    if (!mutated) {
      // The drain's ready check: the acquire on the cell stamp is what
      // publishes the record bytes to the journal thread. The mutation
      // drops it (drains on the relaxed probe alone) and must be flagged.
      st->slot_stamp.load(std::memory_order_acquire
                              FTDAG_SYNC_TAG("wal-ring-slot"));
    }
    st->journal_log.set(st->record.get("wal-ring-record"), "wal-journal-log");
    st->durable_seq.store(
        1, std::memory_order_release FTDAG_SYNC_TAG("wal-durable-seq"));
  });
  e.threads.push_back([st] {  // observer of the committed status
    await([st] { return st->status.load(std::memory_order_relaxed) == 1; },
          "task-status");
    st->status.load(std::memory_order_acquire FTDAG_SYNC_TAG("task-status"));
    st->observed = st->journal_log.get("wal-journal-log");
  });
  e.invariant = [st](std::string& why) {
    if (st->observed != 1) {
      why = "status published before its record reached the journal";
      return false;
    }
    return true;
  };
  return e;
}

// --- pool-recycle (transcription of the job-block freelist contract) ---
// A job block's payload is written by the spawner, published through the
// deque handoff, consumed by the executing worker, and recycled back; the
// spawner may reuse it only after the recycle handback's release/acquire
// edge (job.hpp / scheduler.cpp retire_job).

struct RecycleState {
  Shared<int> payload{0};
  Atomic<int> slot{0};  // 0 empty, 1 published, 2 recycled
  int consumed = 0;
};

Execution make_pool_recycle() {
  auto st = std::make_shared<RecycleState>();
  Execution e;
  e.threads.push_back([st] {  // spawner: publish, then reuse after recycle
    st->payload.set(7, "job-payload");
    st->slot.store(1, std::memory_order_release FTDAG_SYNC_TAG("deque-buffer"));
    await([st] { return st->slot.load(std::memory_order_relaxed) == 2; },
          "pool-recycle");
    st->slot.load(std::memory_order_acquire FTDAG_SYNC_TAG("pool-recycle"));
    st->payload.set(9, "job-payload");  // reuse of the recycled block
  });
  e.threads.push_back([st] {  // executing worker: consume, then recycle
    await([st] { return st->slot.load(std::memory_order_relaxed) == 1; },
          "deque-buffer");
    st->slot.load(std::memory_order_acquire FTDAG_SYNC_TAG("deque-buffer"));
    st->consumed = st->payload.get("job-payload");
    st->slot.store(2, std::memory_order_release FTDAG_SYNC_TAG("pool-recycle"));
  });
  e.invariant = [st](std::string& why) {
    if (st->consumed != 7) {
      why = "worker consumed an unpublished job payload";
      return false;
    }
    return true;
  };
  return e;
}

// --- run-gate (transcription; mutation reintroduces the PR 3 bug) ------
// The pre-PR 7 run_to_quiescence gate: the finishing worker CASes
// run_active_ true->false; the waiter that observes false must see the
// run's results. PR 3 fixed the CAS to an explicit acq_rel; the mutation
// makes it relaxed again, which breaks the release edge the waiter's
// acquire load needs — the result read becomes a data race.

struct RunGateState {
  Atomic<bool> run_active{true};
  Shared<int> result{0};
  int observed = -1;
};

Execution make_run_gate(bool mutated) {
  auto st = std::make_shared<RunGateState>();
  Execution e;
  e.threads.push_back([st, mutated] {  // finishing worker
    st->result.set(42, "run-result");
    bool expected = true;
    const std::memory_order order =
        mutated ? std::memory_order_relaxed : std::memory_order_acq_rel;
    st->run_active.compare_exchange_strong(
        expected, false, order FTDAG_SYNC_TAG("run-active"));
  });
  e.threads.push_back([st] {  // quiescence waiter
    await([st] { return !st->run_active.load(std::memory_order_relaxed); },
          "run-active");
    st->run_active.load(std::memory_order_acquire FTDAG_SYNC_TAG("run-active"));
    st->observed = st->result.get("run-result");
  });
  e.invariant = [st](std::string& why) {
    if (st->observed != 42) {
      why = "waiter observed the gate down but not the run's result";
      return false;
    }
    return true;
  };
  return e;
}

// --- parallel-for (transcription; mutation reintroduces the PR 4 bug
// surface) --------------------------------------------------------------
// parallel_for's leaves decrement ForCtx::remaining with acq_rel
// (`pairs: for-remaining`); the waiter that observes zero must see every
// iteration's writes. The mutation turns the decrement into a relaxed
// publish, so the waiter's acquire load synchronizes with nothing.

struct ParforState {
  Atomic<std::int64_t> remaining{2};
  std::array<Shared<int>, 2> cells;
  int sum = 0;
};

Execution make_parallel_for(bool mutated) {
  auto st = std::make_shared<ParforState>();
  Execution e;
  for (int t = 0; t < 2; ++t) {
    e.threads.push_back([st, t, mutated] {  // leaf: run iteration, settle
      st->cells[static_cast<std::size_t>(t)].set(t + 1, "parfor-iteration");
      const std::memory_order order =
          mutated ? std::memory_order_relaxed : std::memory_order_acq_rel;
      st->remaining.fetch_sub(1, order FTDAG_SYNC_TAG("for-remaining"));
    });
  }
  e.threads.push_back([st] {  // parallel_for caller waiting for the leaves
    await([st] { return st->remaining.load(std::memory_order_relaxed) == 0; },
          "for-remaining");
    st->remaining.load(std::memory_order_acquire FTDAG_SYNC_TAG("for-remaining"));
    st->sum = st->cells[0].get("parfor-iteration") +
              st->cells[1].get("parfor-iteration");
  });
  e.invariant = [st](std::string& why) {
    if (st->sum != 3) {
      why = "caller saw remaining==0 but not every iteration's write";
      return false;
    }
    return true;
  };
  return e;
}

// --- mutation-lock-order ----------------------------------------------
// Classic AB/BA inversion: never present in the tree (every multi-lock
// path orders shards by index); registered as a mutation to prove the
// lock-order-graph detector fires.

struct LockOrderState {
  CheckMutex a;
  CheckMutex b;
  Shared<int> x{0};
};

Execution make_lock_order_inversion() {
  auto st = std::make_shared<LockOrderState>();
  Execution e;
  e.threads.push_back([st] {
    CheckMutexGuard g(st->a FTDAG_SYNC_TAG("lock-a"));
    CheckMutexGuard h(st->b FTDAG_SYNC_TAG("lock-b"));
    st->x.set(1, "guarded");
  });
  e.threads.push_back([st] {
    CheckMutexGuard g(st->b FTDAG_SYNC_TAG("lock-b"));
    CheckMutexGuard h(st->a FTDAG_SYNC_TAG("lock-a"));
    st->x.set(2, "guarded");
  });
  return e;
}

Scenario scenario(std::string name, std::string description,
                  std::function<Execution()> make, std::size_t threads,
                  bool exhaustive) {
  Scenario s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.make = std::move(make);
  s.thread_count = threads;
  s.exhaustive = exhaustive;
  return s;
}

}  // namespace

std::vector<Scenario> clean_scenarios() {
  std::vector<Scenario> out;
  out.push_back(scenario(
      "recovery-claim",
      "Guarantee 1: concurrent is_recovering calls claim a failure exactly "
      "once (real RecoveryTable, `recovery-life` CAS)",
      make_recovery_claim, 2, /*exhaustive=*/true));
  out.push_back(scenario(
      "map-find-during-grow",
      "lock-free find racing an insert that grows the table (real "
      "ShardedMap, `map-slot-publish`/`map-table-publish`)",
      make_map_find_during_grow, 2, /*exhaustive=*/false));
  out.push_back(scenario(
      "jobgroup-settle",
      "JobGroup pending settle: waiter observing zero sees every job's "
      "result (`group-pending`)",
      make_jobgroup_settle, 3, /*exhaustive=*/true));
  out.push_back(scenario(
      "jobgroup-cancel",
      "JobSession begin_running vs try_cancel: a queued job is claimed or "
      "cancelled exactly once (`job-state`)",
      make_jobgroup_cancel, 2, /*exhaustive=*/true));
  out.push_back(scenario(
      "jobgroup-expiry",
      "JobSession begin_running vs try_cancel vs queue-timeout expiry: "
      "exactly one wins the queued job (`job-state`)",
      make_jobgroup_expiry, 3, /*exhaustive=*/false));
  out.push_back(scenario(
      "wal-commit",
      "commit-ring publish/drain: record seated before the `wal-ring-slot` "
      "release, drained under acquire, every-mode ack via `wal-durable-seq` "
      "before the status publish",
      [] { return make_wal_commit(/*mutated=*/false); }, 3,
      /*exhaustive=*/true));
  out.push_back(scenario(
      "pool-recycle",
      "job-block recycle: payload publish via deque handoff, reuse only "
      "after the recycle handback (`deque-buffer`)",
      make_pool_recycle, 2, /*exhaustive=*/true));
  out.push_back(scenario(
      "run-gate",
      "legacy run_active_ gate with the fixed acq_rel CAS (`run-active`)",
      [] { return make_run_gate(/*mutated=*/false); }, 2,
      /*exhaustive=*/true));
  out.push_back(scenario(
      "parallel-for",
      "parallel_for remaining-counter settle with the fixed acq_rel "
      "decrement (`for-remaining`)",
      [] { return make_parallel_for(/*mutated=*/false); }, 3,
      /*exhaustive=*/true));
  return out;
}

std::vector<Scenario> mutation_scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s = scenario(
        "mutation-run-gate",
        "PR 3's fixed run_active_ CAS reverted to relaxed: the waiter's "
        "result read must be flagged as a race",
        [] { return make_run_gate(/*mutated=*/true); }, 2,
        /*exhaustive=*/true);
    s.expect_tags = {"run-result"};
    out.push_back(std::move(s));
  }
  {
    Scenario s = scenario(
        "mutation-parfor-publish",
        "PR 4's parallel_for settle decrement reverted to a relaxed "
        "publish: iteration reads must be flagged as races",
        [] { return make_parallel_for(/*mutated=*/true); }, 3,
        /*exhaustive=*/true);
    s.expect_tags = {"parfor-iteration"};
    out.push_back(std::move(s));
  }
  {
    Scenario s = scenario(
        "mutation-wal-drain",
        "journal drain that skips the sequence check (relaxed stamp probe, "
        "no acquire): the record read must be flagged as a race",
        [] { return make_wal_commit(/*mutated=*/true); }, 3,
        /*exhaustive=*/true);
    s.expect_tags = {"wal-ring-record"};
    out.push_back(std::move(s));
  }
  {
    Scenario s = scenario(
        "mutation-lock-order",
        "AB/BA lock acquisition inversion: the lock-order graph must "
        "report a cycle",
        make_lock_order_inversion, 2, /*exhaustive=*/true);
    s.expect_tags = {"lock-a", "lock-b"};
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ftdag::check
