#pragma once
// Scenario registry for the ScheduleExplorer (declarations live in
// schedule_explorer.hpp: clean_scenarios() / mutation_scenarios()).
//
// Two scenario styles, following tests/recovery_table_interleave_test.cpp:
//
//  - Real-class scenarios instantiate the production classes themselves
//    (RecoveryTable, ShardedMap) — possible because the shim now
//    instruments their every atomic op and lock. These validate the real
//    code, at the cost of more schedule points (so the bigger ones run
//    under PCT instead of exhaustively).
//
//  - Transcription scenarios restate a protocol's linearization points
//    1:1 against check::Shared payloads, keeping the op count small enough
//    for exhaustive enumeration, and letting a mutation flag flip exactly
//    the one memory order under test. Each transcription cites the
//    production code it mirrors; keep them in sync.
//
// Mutation scenarios reintroduce previously-fixed orderings (see
// CHANGES.md PR 3/PR 4) and are EXPECTED to fail with the tags listed in
// Scenario::expect_tags; they prove the detector actually detects.

#include "check/schedule_explorer.hpp"
