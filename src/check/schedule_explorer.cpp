#include "check/schedule_explorer.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/xoshiro.hpp"

namespace ftdag::check {

thread_local SyncObserver* tls_observer = nullptr;

void await(const std::function<bool()>& pred, const char* tag) {
  if (SyncObserver* o = tls_observer) {
    o->await(pred, SyncSite{tag, "", 0});
    return;
  }
  // Uncontrolled fallback: plain spin, so scenario code also runs (without
  // schedule control) in normal builds and test setup.
  while (!pred()) std::this_thread::yield();
}

namespace {

// Thrown into parked threads when the coordinator tears an execution down
// (deadlock, livelock, budget); unwinds the scenario body.
struct AbortExecution {};

// Cooperative scheduling engine for ONE execution at a time. Implements
// SyncObserver: controlled threads park at every instrumented op; the
// coordinator advances exactly one at a time, so the interleaving is fully
// determined by the chooser's decisions.
class Engine final : public SyncObserver {
 public:
  // Picks an index into `eligible` (sorted thread ids that may advance).
  using Chooser = std::function<std::size_t(const std::vector<std::size_t>&)>;

  struct Outcome {
    std::vector<Violation> violations;
    std::vector<std::size_t> choices;  // chooser decision per step
    std::vector<std::size_t> widths;   // eligible count per step
    std::string trace;
  };

  Outcome run(const Execution& exec, const Chooser& choose,
              std::size_t max_steps) {
    const std::size_t n = exec.threads.size();
    detector_.reset(n);
    threads_.clear();
    threads_.resize(n);
    owner_.clear();
    addr_names_.clear();
    trace_.clear();
    extra_.clear();
    choices_.clear();
    widths_.clear();
    aborting_ = false;
    steps_ = 0;

    std::vector<std::thread> sys;
    sys.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      sys.emplace_back([this, t, body = &exec.threads[t]] {
        thread_main(t, *body);
      });
    }

    {
      std::unique_lock<std::mutex> lk(m_);
      for (;;) {
        cv_coord_.wait(lk, [this] { return all_settled(); });
        std::vector<std::size_t> eligible = eligible_threads();
        bool any_parked = false;
        for (const Thr& th : threads_) {
          if (th.state == Thr::State::kParked) any_parked = true;
        }
        if (!any_parked) break;  // everyone finished
        if (aborting_) {
          grant_all_parked();
          continue;
        }
        if (eligible.empty()) {
          record_deadlock();
          abort_all();
          continue;
        }
        if (steps_ >= max_steps) {
          add_violation(Violation::Kind::kLivelock,
                        "execution exceeded max_steps (" +
                            std::to_string(max_steps) +
                            "); unbounded spin not modeled via check::await?");
          abort_all();
          continue;
        }
        std::size_t pick = choose(eligible);
        if (pick >= eligible.size()) pick = eligible.size() - 1;
        choices_.push_back(pick);
        widths_.push_back(eligible.size());
        grant(eligible[pick]);
        ++steps_;
      }
    }
    for (std::thread& th : sys) th.join();

    if (extra_.empty() && detector_.violations().empty() && exec.invariant) {
      std::string why;
      bool ok = false;
      try {
        ok = exec.invariant(why);
      } catch (const std::exception& e) {
        why = std::string("invariant threw: ") + e.what();
      }
      if (!ok) {
        add_violation(Violation::Kind::kInvariant,
                      why.empty() ? "invariant returned false" : why);
      }
    }
    detector_.check_lock_order();

    Outcome out;
    out.violations = detector_.violations();
    out.violations.insert(out.violations.end(), extra_.begin(), extra_.end());
    out.choices = choices_;
    out.widths = widths_;
    out.trace = format_trace();
    return out;
  }

  // --- SyncObserver (called from controlled threads) ---

  void sync_point(OpKind kind, const void* addr, std::memory_order order,
                  const SyncSite& site) override {
    park(PendingOp{kind, addr, order, order, site, nullptr});
  }

  void cas_outcome(const void* addr, bool exchanged, std::memory_order success,
                   std::memory_order failure, const SyncSite& site) override {
    // The calling thread still holds its grant; no other controlled thread
    // runs concurrently, so detector state is safe to touch under m_.
    std::lock_guard<std::mutex> lk(m_);
    std::size_t t = self_id();
    detector_.atomic_cas(t, addr, exchanged, success, failure, site);
    if (!trace_.empty()) {
      trace_.back().detail = exchanged ? " -> success" : " -> failed";
    }
  }

  void mutex_lock(const void* addr, const SyncSite& site) override {
    park(PendingOp{OpKind::kMutexLock, addr, std::memory_order_acquire,
                   std::memory_order_acquire, site, nullptr});
  }

  bool mutex_try_lock(const void* addr, const SyncSite& site) override {
    park(PendingOp{OpKind::kMutexTryLock, addr, std::memory_order_acquire,
                   std::memory_order_acquire, site, nullptr});
    return threads_[self_id()].try_lock_result;
  }

  void mutex_unlock(const void* addr, const SyncSite& site) override {
    park(PendingOp{OpKind::kMutexUnlock, addr, std::memory_order_release,
                   std::memory_order_release, site, nullptr});
  }

  void await(const std::function<bool()>& pred, const SyncSite& site) override {
    park(PendingOp{OpKind::kAwait, nullptr, std::memory_order_relaxed,
                   std::memory_order_relaxed, site, &pred});
  }

 private:
  struct PendingOp {
    OpKind kind = OpKind::kThreadStart;
    const void* addr = nullptr;
    std::memory_order order = std::memory_order_seq_cst;
    std::memory_order order2 = std::memory_order_seq_cst;
    SyncSite site;
    const std::function<bool()>* pred = nullptr;
  };

  struct Thr {
    enum class State : std::uint8_t { kNew, kRunning, kParked, kFinished };
    State state = State::kNew;
    bool granted = false;
    bool try_lock_result = false;
    PendingOp op;
  };

  struct TraceEvent {
    std::size_t step;
    std::size_t thread;
    OpKind kind;
    std::memory_order order;
    SyncSite site;
    std::string addr_name;
    std::string detail;
  };

  static thread_local std::size_t tls_self;

  std::size_t self_id() const { return tls_self; }

  void thread_main(std::size_t tid, const std::function<void()>& body) {
    tls_self = tid;
    tls_observer = this;
    try {
      park(PendingOp{OpKind::kThreadStart, nullptr, std::memory_order_relaxed,
                     std::memory_order_relaxed, SyncSite{nullptr, "", 0},
                     nullptr});
      body();
    } catch (const AbortExecution&) {
      // Coordinator tore this execution down; nothing to record.
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lk(m_);
      add_violation(Violation::Kind::kException,
                    "T" + std::to_string(tid) + " threw: " + e.what());
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      add_violation(Violation::Kind::kException,
                    "T" + std::to_string(tid) + " threw a non-std exception");
    }
    tls_observer = nullptr;
    {
      std::lock_guard<std::mutex> lk(m_);
      threads_[tid].state = Thr::State::kFinished;
    }
    cv_coord_.notify_all();
  }

  // Blocks the calling controlled thread at a schedule point until the
  // coordinator grants it. Grant-time bookkeeping (detector + mutex
  // ownership) is applied by the coordinator before the wakeup.
  void park(PendingOp op) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) {
      // During teardown, sync ops reached while unwinding AbortExecution
      // (e.g. a CheckMutexGuard unlock in a destructor) must not throw a
      // second exception — that would std::terminate. They complete as
      // uninstrumented no-ops instead.
      if (std::uncaught_exceptions() > 0) return;
      throw AbortExecution{};
    }
    Thr& self = threads_[self_id()];
    self.op = op;
    self.state = Thr::State::kParked;
    cv_coord_.notify_all();
    cv_threads_.wait(lk, [&self] { return self.granted; });
    self.granted = false;
    self.state = Thr::State::kRunning;
    if (aborting_) throw AbortExecution{};
  }

  bool all_settled() const {
    return std::all_of(threads_.begin(), threads_.end(), [](const Thr& t) {
      // A thread with a grant in flight still reads as kParked until it
      // wakes; treating it as settled would let the coordinator re-grant
      // the same parked set forever. Wait for the wakeup to land.
      if (t.granted) return false;
      return t.state == Thr::State::kParked || t.state == Thr::State::kFinished;
    });
  }

  // A parked thread is eligible when its pending op can complete: a mutex
  // lock needs the mutex free, an await needs a true predicate, everything
  // else is always runnable.
  std::vector<std::size_t> eligible_threads() const {
    std::vector<std::size_t> out;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      const Thr& th = threads_[t];
      if (th.state != Thr::State::kParked) continue;
      if (th.op.kind == OpKind::kMutexLock &&
          owner_.count(th.op.addr) != 0) {
        continue;
      }
      if (th.op.kind == OpKind::kAwait && !(*th.op.pred)()) continue;
      out.push_back(t);
    }
    return out;
  }

  // Applies the op's happens-before bookkeeping and wakes the thread.
  // Runs on the coordinator with m_ held; no controlled thread is running.
  void grant(std::size_t tid) {
    Thr& th = threads_[tid];
    const PendingOp& op = th.op;
    switch (op.kind) {
      case OpKind::kThreadStart:
      case OpKind::kAwait:
      case OpKind::kCas:  // bookkept in cas_outcome after the hardware CAS
        break;
      case OpKind::kLoad:
        detector_.atomic_load(tid, op.addr, op.order, op.site);
        break;
      case OpKind::kStore:
        detector_.atomic_store(tid, op.addr, op.order, op.site);
        break;
      case OpKind::kRmw:
        detector_.atomic_rmw(tid, op.addr, op.order, op.site);
        break;
      case OpKind::kPlainRead:
        detector_.plain_read(tid, op.addr, op.site);
        break;
      case OpKind::kPlainWrite:
        detector_.plain_write(tid, op.addr, op.site);
        break;
      case OpKind::kMutexLock:
        owner_[op.addr] = tid;
        detector_.lock_acquired(tid, op.addr, op.site);
        break;
      case OpKind::kMutexTryLock:
        if (owner_.count(op.addr) == 0) {
          owner_[op.addr] = tid;
          detector_.lock_acquired(tid, op.addr, op.site);
          th.try_lock_result = true;
        } else {
          // Failed try_lock is just a relaxed probe of the lock word.
          detector_.atomic_load(tid, op.addr, std::memory_order_relaxed,
                                op.site);
          th.try_lock_result = false;
        }
        break;
      case OpKind::kMutexUnlock:
        owner_.erase(op.addr);
        detector_.lock_released(tid, op.addr, op.site);
        break;
    }
    record_trace(tid, op);
    th.granted = true;
    cv_threads_.notify_all();
  }

  void abort_all() { aborting_ = true; grant_all_parked(); }

  void grant_all_parked() {
    for (Thr& th : threads_) {
      if (th.state == Thr::State::kParked) th.granted = true;
    }
    cv_threads_.notify_all();
  }

  void record_deadlock() {
    std::ostringstream msg;
    msg << "deadlock: no runnable thread;";
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      const Thr& th = threads_[t];
      if (th.state != Thr::State::kParked) continue;
      msg << " T" << t << " blocked at " << op_kind_name(th.op.kind) << " "
          << describe_site(th.op.site) << ";";
    }
    add_violation(Violation::Kind::kDeadlock, msg.str());
  }

  void add_violation(Violation::Kind kind, std::string message) {
    extra_.push_back(Violation{kind, std::move(message)});
  }

  static const char* order_name(std::memory_order order) {
    switch (order) {
      case std::memory_order_relaxed: return "relaxed";
      case std::memory_order_consume: return "consume";
      case std::memory_order_acquire: return "acquire";
      case std::memory_order_release: return "release";
      case std::memory_order_acq_rel: return "acq_rel";
      case std::memory_order_seq_cst: return "seq_cst";
    }
    return "?";
  }

  void record_trace(std::size_t tid, const PendingOp& op) {
    std::string addr_name;
    if (op.addr != nullptr) {
      auto [it, inserted] =
          addr_names_.try_emplace(op.addr, addr_names_.size());
      addr_name = "a" + std::to_string(it->second);
    }
    trace_.push_back(TraceEvent{steps_, tid, op.kind, op.order, op.site,
                                std::move(addr_name), {}});
  }

  std::string format_trace() const {
    std::ostringstream out;
    for (const TraceEvent& ev : trace_) {
      out << "  step " << ev.step << ": T" << ev.thread << " "
          << op_kind_name(ev.kind);
      if (ev.kind != OpKind::kThreadStart && ev.kind != OpKind::kAwait &&
          ev.kind != OpKind::kMutexLock && ev.kind != OpKind::kMutexTryLock &&
          ev.kind != OpKind::kMutexUnlock) {
        out << " " << order_name(ev.order);
      }
      if (!ev.addr_name.empty()) out << " @" << ev.addr_name;
      if (ev.site.line != 0 || ev.site.tag != nullptr) {
        out << " " << describe_site(ev.site);
      }
      out << ev.detail << "\n";
    }
    return out.str();
  }

  RaceDetector detector_;
  std::vector<Thr> threads_;
  std::map<const void*, std::size_t> owner_;  // mutex -> holding thread
  std::map<const void*, std::size_t> addr_names_;
  std::vector<TraceEvent> trace_;
  std::vector<Violation> extra_;
  std::vector<std::size_t> choices_;
  std::vector<std::size_t> widths_;
  bool aborting_ = false;
  std::size_t steps_ = 0;

  std::mutex m_;
  std::condition_variable cv_coord_;    // threads -> coordinator
  std::condition_variable cv_threads_;  // coordinator -> threads
};

thread_local std::size_t Engine::tls_self = 0;

// PCT-style chooser: threads run by seeded random priority; at `depth`
// seeded change points the just-scheduled thread drops below everyone,
// forcing a preemption exactly there.
class PctChooser {
 public:
  PctChooser(std::uint64_t seed, std::size_t threads, std::size_t depth,
             std::size_t horizon)
      : prio_(threads) {
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < threads; ++i) {
      prio_[i] = depth + 1 + i;
    }
    for (std::size_t i = threads; i > 1; --i) {  // Fisher-Yates
      std::swap(prio_[i - 1], prio_[rng.below(i)]);
    }
    for (std::size_t d = 0; d < depth; ++d) {
      change_steps_.push_back(rng.below(horizon));
    }
    std::sort(change_steps_.begin(), change_steps_.end());
    next_low_ = depth;  // change point d assigns priority depth-d (0 lowest)
  }

  std::size_t operator()(const std::vector<std::size_t>& eligible) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < eligible.size(); ++i) {
      if (prio_[eligible[i]] > prio_[eligible[best]]) best = i;
    }
    std::size_t chosen = eligible[best];
    while (next_change_ < change_steps_.size() &&
           change_steps_[next_change_] == step_) {
      prio_[chosen] = --next_low_;
      ++next_change_;
    }
    ++step_;
    return best;
  }

 private:
  std::vector<std::uint64_t> prio_;
  std::vector<std::size_t> change_steps_;
  std::size_t next_change_ = 0;
  std::size_t next_low_ = 0;
  std::size_t step_ = 0;
};

std::string join_choices(const std::vector<std::size_t>& choices) {
  std::ostringstream out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out << ",";
    out << choices[i];
  }
  return out.str();
}

std::vector<std::size_t> parse_choices(const std::string& text) {
  std::vector<std::size_t> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(std::stoull(item));
  }
  return out;
}

void fill_failure(ExploreResult& result, const Engine::Outcome& outcome) {
  result.violations = outcome.violations;
  result.failing_schedule = join_choices(outcome.choices);
  result.trace = outcome.trace;
}

}  // namespace

bool ScheduleExplorer::instrumentation_enabled() {
#if defined(FTDAG_SCHED_CHECK)
  return true;
#else
  return false;
#endif
}

ExploreResult ScheduleExplorer::explore(const Scenario& scenario,
                                        const ExploreOptions& opts) {
  ExploreResult result;
  if (!instrumentation_enabled()) {
    result.violations.push_back(Violation{
        Violation::Kind::kException,
        "FTDAG_SCHED_CHECK is off: the sync shim is not instrumented, so "
        "schedules cannot be controlled (rebuild with -DFTDAG_SCHED_CHECK=ON)"});
    return result;
  }

  ExploreOptions::Mode mode = opts.mode;
  if (mode == ExploreOptions::Mode::kAuto) {
    mode = scenario.exhaustive ? ExploreOptions::Mode::kExhaustive
                               : ExploreOptions::Mode::kPct;
  }
  Engine engine;

  if (mode == ExploreOptions::Mode::kReplay) {
    std::vector<std::size_t> prefix = parse_choices(opts.replay_schedule);
    std::size_t pos = 0;
    Engine::Outcome outcome = engine.run(
        scenario.make(),
        [&](const std::vector<std::size_t>&) {
          return pos < prefix.size() ? prefix[pos++] : 0;
        },
        scenario.max_steps);
    result.executions = 1;
    if (!outcome.violations.empty()) fill_failure(result, outcome);
    return result;
  }

  if (mode == ExploreOptions::Mode::kExhaustive) {
    const std::size_t budget =
        opts.max_executions != 0 ? opts.max_executions : scenario.max_executions;
    std::vector<std::size_t> prefix;
    for (;;) {
      std::size_t pos = 0;
      Engine::Outcome outcome = engine.run(
          scenario.make(),
          [&](const std::vector<std::size_t>&) {
            if (pos < prefix.size()) return prefix[pos++];
            prefix.push_back(0);
            ++pos;
            return std::size_t{0};
          },
          scenario.max_steps);
      ++result.executions;
      if (!outcome.violations.empty()) {
        fill_failure(result, outcome);
        return result;
      }
      // Backtrack: advance the deepest choice that still has siblings.
      // outcome.widths parallels this execution's choice sequence.
      while (!prefix.empty() &&
             prefix.back() + 1 >= outcome.widths[prefix.size() - 1]) {
        prefix.pop_back();
      }
      if (prefix.empty()) {
        result.exhausted = true;
        return result;
      }
      ++prefix.back();
      if (result.executions >= budget) return result;  // budget exhausted
    }
  }

  // PCT mode.
  const std::size_t schedules =
      opts.pct_schedules != 0 ? opts.pct_schedules : scenario.pct_schedules;
  const std::size_t threads = scenario.make().threads.size();
  for (std::size_t s = 0; s < schedules; ++s) {
    const std::uint64_t seed = opts.seed + s;
    PctChooser chooser(seed, threads, scenario.pct_depth,
                       /*horizon=*/256);
    Engine::Outcome outcome = engine.run(
        scenario.make(), [&](const std::vector<std::size_t>& e) {
          return chooser(e);
        },
        scenario.max_steps);
    ++result.executions;
    if (!outcome.violations.empty()) {
      fill_failure(result, outcome);
      result.failing_seed = seed;
      result.failing_seed_valid = true;
      return result;
    }
  }
  return result;
}

std::string describe_result(const Scenario& scenario,
                            const ExploreResult& r) {
  std::ostringstream out;
  out << (r.ok() ? "PASS" : "FAIL") << " " << scenario.name << ": "
      << r.executions << " executions"
      << (r.exhausted ? " (exhaustive)" : "") << "\n";
  for (const Violation& v : r.violations) {
    out << "  [" << violation_kind_name(v.kind) << "] " << v.message << "\n";
  }
  if (!r.ok()) {
    if (r.failing_seed_valid) {
      out << "  replay: seed=" << r.failing_seed
          << " (run PCT with pct_schedules=1 and this seed)\n";
    }
    out << "  replay schedule: " << r.failing_schedule << "\n";
    out << "  trace:\n" << r.trace;
  }
  return out.str();
}

}  // namespace ftdag::check
