#include "check/race_detector.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ftdag::check {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kThreadStart: return "thread-start";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kCas: return "cas";
    case OpKind::kPlainRead: return "plain-read";
    case OpKind::kPlainWrite: return "plain-write";
    case OpKind::kMutexLock: return "lock";
    case OpKind::kMutexTryLock: return "try-lock";
    case OpKind::kMutexUnlock: return "unlock";
    case OpKind::kAwait: return "await";
  }
  return "?";
}

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kDataRace: return "data-race";
    case Violation::Kind::kLockOrderCycle: return "lock-order-cycle";
    case Violation::Kind::kDeadlock: return "deadlock";
    case Violation::Kind::kLivelock: return "livelock";
    case Violation::Kind::kException: return "exception";
    case Violation::Kind::kInvariant: return "invariant";
  }
  return "?";
}

std::string describe_site(const SyncSite& site) {
  std::ostringstream out;
  if (site.tag != nullptr) out << "tag '" << site.tag << "' ";
  const char* file = site.file != nullptr ? site.file : "";
  // Basename only: reports stay readable and stable across build dirs.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  out << "(" << base << ":" << site.line << ")";
  return out.str();
}

bool RaceDetector::is_acquire(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst ||
         order == std::memory_order_consume;
}

bool RaceDetector::is_release(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

void RaceDetector::reset(std::size_t threads) {
  clocks_.assign(threads, VectorClock(threads));
  atomic_release_.clear();
  mutex_clock_.clear();
  plain_.clear();
  held_.assign(threads, {});
  lock_order_.clear();
  violations_.clear();
  // Tick every clock once so epoch 0 means "no access recorded".
  for (std::size_t t = 0; t < threads; ++t) clocks_[t].tick(t);
}

void RaceDetector::atomic_load(std::size_t t, const void* addr,
                               std::memory_order order, const SyncSite&) {
  clocks_[t].tick(t);
  if (is_acquire(order)) {
    auto it = atomic_release_.find(addr);
    if (it != atomic_release_.end()) clocks_[t].join(it->second);
  }
}

void RaceDetector::atomic_store(std::size_t t, const void* addr,
                                std::memory_order order, const SyncSite&) {
  clocks_[t].tick(t);
  VectorClock& w = atomic_release_[addr];
  if (is_release(order)) {
    w.assign(clocks_[t]);
  } else {
    // A relaxed store publishes a value no acquire load can synchronize
    // with; clearing W_a makes the detector treat subsequent readers as
    // unordered (conservative: ignores release-sequence repair).
    w.clear();
  }
}

void RaceDetector::atomic_rmw(std::size_t t, const void* addr,
                              std::memory_order order, const SyncSite&) {
  clocks_[t].tick(t);
  VectorClock& w = atomic_release_[addr];
  if (is_acquire(order)) clocks_[t].join(w);
  if (is_release(order)) {
    // Join, not assign: an RMW continues the release sequence headed by
    // the previous release store, so earlier publishers remain visible to
    // later acquirers.
    w.join(clocks_[t]);
  }
}

void RaceDetector::atomic_cas(std::size_t t, const void* addr, bool exchanged,
                              std::memory_order success,
                              std::memory_order failure, const SyncSite& site) {
  if (exchanged) {
    atomic_rmw(t, addr, success, site);
  } else {
    atomic_load(t, addr, failure, site);
  }
}

void RaceDetector::lock_acquired(std::size_t t, const void* mutex,
                                 const SyncSite& site) {
  clocks_[t].tick(t);
  auto it = mutex_clock_.find(mutex);
  if (it != mutex_clock_.end()) clocks_[t].join(it->second);
  for (const Held& h : held_[t]) {
    if (h.mutex == mutex) continue;  // recursive self-edge is a different bug
    lock_order_.try_emplace({h.mutex, mutex}, LockEdge{h.site, site});
  }
  held_[t].push_back(Held{mutex, site});
}

void RaceDetector::lock_released(std::size_t t, const void* mutex,
                                 const SyncSite&) {
  clocks_[t].tick(t);
  mutex_clock_[mutex].assign(clocks_[t]);
  auto& stack = held_[t];
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mutex == mutex) {
      stack.erase(std::next(it).base());
      break;
    }
  }
}

bool RaceDetector::ordered_before(const Access& a, std::size_t t) const {
  // Access a (by a.thread at a.epoch) happened before thread t's current
  // point iff t's clock has caught up to that epoch.
  return clocks_[t].at(a.thread) >= a.epoch;
}

void RaceDetector::report_race(const char* what, const Access& prior,
                               const SyncSite& now_site,
                               std::size_t now_thread) {
  std::ostringstream msg;
  msg << what << ": T" << prior.thread << " " << describe_site(prior.site)
      << " is unordered with T" << now_thread << " "
      << describe_site(now_site);
  add_violation(Violation::Kind::kDataRace, msg.str());
}

void RaceDetector::add_violation(Violation::Kind kind, std::string message) {
  // Dedup: the same pair of sites races in many schedules of one run.
  for (const Violation& v : violations_) {
    if (v.kind == kind && v.message == message) return;
  }
  violations_.push_back(Violation{kind, std::move(message)});
}

void RaceDetector::plain_read(std::size_t t, const void* addr,
                              const SyncSite& site) {
  clocks_[t].tick(t);
  PlainState& st = plain_[addr];
  if (st.write.valid && st.write.thread != t &&
      !ordered_before(st.write, t)) {
    report_race("data race (write vs read)", st.write, site, t);
  }
  // Record/update this thread's read epoch.
  for (Access& r : st.reads) {
    if (r.thread == t) {
      r.epoch = clocks_[t].at(t);
      r.site = site;
      return;
    }
  }
  st.reads.push_back(Access{true, t, clocks_[t].at(t), site});
}

void RaceDetector::plain_write(std::size_t t, const void* addr,
                               const SyncSite& site) {
  clocks_[t].tick(t);
  PlainState& st = plain_[addr];
  if (st.write.valid && st.write.thread != t &&
      !ordered_before(st.write, t)) {
    report_race("data race (write vs write)", st.write, site, t);
  }
  for (const Access& r : st.reads) {
    if (r.thread != t && !ordered_before(r, t)) {
      report_race("data race (read vs write)", r, site, t);
    }
  }
  st.write = Access{true, t, clocks_[t].at(t), site};
  st.reads.clear();
}

void RaceDetector::check_lock_order() {
  // DFS over the accumulated order graph; any cycle is a potential
  // deadlock (two schedules can interleave the chains in opposite order).
  struct Out {
    const void* to;
    const LockEdge* edge;
  };
  std::map<const void*, std::vector<Out>> adj;
  for (const auto& [key, edge] : lock_order_) {
    adj[key.first].push_back(Out{key.second, &edge});
    adj.try_emplace(key.second);  // ensure sink nodes exist
  }
  std::set<const void*> done;
  for (const auto& [start, unused] : adj) {
    if (done.count(start) != 0) continue;
    std::set<const void*> on_path;
    // Iterative DFS; each frame is (node, next-neighbor index).
    std::vector<std::pair<const void*, std::size_t>> stack;
    stack.push_back({start, 0});
    on_path.insert(start);
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const std::vector<Out>& outs = adj[node];
      if (idx >= outs.size()) {
        done.insert(node);
        on_path.erase(node);
        stack.pop_back();
        continue;
      }
      const Out& out = outs[idx++];
      if (on_path.count(out.to) != 0) {
        std::ostringstream msg;
        msg << "lock-order cycle: acquiring " << describe_site(out.edge->acq_site)
            << " while holding " << describe_site(out.edge->held_site)
            << " inverts an earlier acquisition order (" << stack.size()
            << " locks on the path)";
        add_violation(Violation::Kind::kLockOrderCycle, msg.str());
        continue;
      }
      if (done.count(out.to) != 0) continue;
      on_path.insert(out.to);
      stack.push_back({out.to, 0});
    }
  }
}

}  // namespace ftdag::check
