#pragma once
// ScheduleExplorer: drives small registered concurrency scenarios through
// many thread interleavings, checking every execution with the vector-clock
// race detector and the lock-order deadlock detector.
//
// How control works: scenario threads are real std::threads, but every
// instrumented operation (ftdag::Atomic, CheckMutex, check::Shared,
// check::await) parks the thread at a schedule point. A coordinator picks
// exactly one parked thread to advance per step, so an execution is fully
// determined by the sequence of choices — which makes every failure
// replayable from either the PCT seed or the recorded choice string.
//
// Exploration modes:
//  - exhaustive: depth-first enumeration of every schedule via a choice
//    stack (prefix replay + backtrack). Used for ≤4-thread scenarios.
//  - PCT: Probabilistic Concurrency Testing (Burckhardt et al.) — each
//    schedule runs threads by a seeded random priority order with d
//    priority-change points, giving probabilistic bug-depth guarantees at
//    a fixed per-schedule cost. Used for bigger scenarios.
//  - replay: re-run one recorded choice string (deterministic).
//
// Spin waits must be expressed as check::await(pred) in scenario code:
// await blocks the thread until the predicate holds instead of burning
// schedule points on spin iterations (and the coordinator treats a parked
// await whose predicate is false as *not runnable*, which is what makes
// deadlock detection meaningful).
//
// Everything here is compiled in all builds, but explore() reports a
// configuration error unless FTDAG_SCHED_CHECK is on (without the shim
// instrumentation there is nothing to observe).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/race_detector.hpp"
#include "check/sync_observer.hpp"

namespace ftdag::check {

// One concrete execution: thread bodies plus an optional end invariant.
// Bodies run as controlled threads; the invariant runs uncontrolled after
// they all finished (return false or throw to fail the execution; `why`
// feeds the violation message).
struct Execution {
  std::vector<std::function<void()>> threads;
  std::function<bool(std::string& why)> invariant;
};

// A registered scenario: a factory producing a fresh Execution per
// explored schedule, plus exploration budgets and expectations.
struct Scenario {
  std::string name;
  std::string description;
  std::function<Execution()> make;
  std::size_t thread_count = 0;
  // Exhaustive enumeration for small protocols (≤ 4 threads per ISSUE
  // criteria); PCT sampling otherwise.
  bool exhaustive = true;
  std::size_t max_executions = 200000;  // exhaustive safety budget
  std::size_t pct_schedules = 1000;     // PCT budget
  std::size_t pct_depth = 3;            // PCT priority-change points
  std::size_t max_steps = 20000;        // per-execution livelock bound
  // Mutation scenarios are EXPECTED to fail, with at least one violation
  // mentioning every listed tag. Empty for clean scenarios.
  std::vector<std::string> expect_tags;
};

struct ExploreOptions {
  enum class Mode : std::uint8_t { kAuto, kExhaustive, kPct, kReplay };
  Mode mode = Mode::kAuto;
  // PCT: schedule s runs with seed `seed + s`, so replaying a reported
  // failing_seed with pct_schedules=1 reproduces the failure exactly.
  std::uint64_t seed = 0x5EEDC0DEULL;
  std::size_t pct_schedules = 0;   // 0 = scenario default
  std::size_t max_executions = 0;  // 0 = scenario default
  std::string replay_schedule;     // kReplay: comma-separated choices
};

struct ExploreResult {
  std::size_t executions = 0;
  bool exhausted = false;  // exhaustive mode covered the full tree
  std::vector<Violation> violations;
  bool failing_seed_valid = false;
  std::uint64_t failing_seed = 0;  // PCT per-schedule seed that failed
  std::string failing_schedule;    // choice string replaying the failure
  std::string trace;               // formatted event trace of the failure
  bool ok() const { return violations.empty(); }
};

class ScheduleExplorer {
 public:
  static bool instrumentation_enabled();
  ExploreResult explore(const Scenario& scenario,
                        const ExploreOptions& opts = {});
};

// Scenario registry (scenarios.cpp): protocols transcribed from or built
// on the production classes. Clean scenarios must all pass; mutation
// scenarios reintroduce previously-fixed orderings and must all fail.
std::vector<Scenario> clean_scenarios();
std::vector<Scenario> mutation_scenarios();

// Formats one result block for logs: PASS/FAIL, executions, violations,
// and on failure the replay seed/schedule + trace.
std::string describe_result(const Scenario& scenario, const ExploreResult& r);

}  // namespace ftdag::check
