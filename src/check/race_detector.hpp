#pragma once
// Vector-clock happens-before race detector + lock-order-graph deadlock
// detector over the event stream a ScheduleExplorer session records.
//
// Model (a pragmatic FastTrack-style subset of C++11 happens-before):
//
//  - Each controlled thread t carries a clock C_t, ticked at every op.
//  - Mutexes: unlock copies C_t into the mutex clock M; lock joins M into
//    the acquirer. (CheckMutex is the repo's SpinLock, whose acquire
//    exchange / release store give exactly these edges.)
//  - Atomic stores: a release store copies C_t into the location's release
//    clock W_a; a relaxed store CLEARS W_a (the new value was not published
//    with release, so a later acquire load of it synchronizes with nothing
//    — this deliberately ignores release-sequence rescue by later stores,
//    a conservative approximation that flags exactly the bugs we hunt).
//  - Atomic RMWs: a release RMW JOINS C_t into W_a (an RMW continues the
//    release sequence, so earlier publishers stay visible); an acquire RMW
//    joins W_a into C_t. Relaxed RMWs leave W_a untouched (release
//    sequence continues through them).
//  - Atomic loads: an acquire load joins W_a into C_t; relaxed loads get
//    no edge. seq_cst is treated as acq_rel (we check happens-before
//    coverage, not sequential-consistency-total-order properties).
//  - Failed CAS = load with the failure order; successful CAS = RMW with
//    the success order.
//  - check::Shared plain accesses are the race-checked payload: a write
//    races with any prior read/write by another thread not ordered before
//    it; a read races with a prior unordered write.
//
// Lock order: every acquisition while other locks are held adds held→new
// edges to a global order graph; a cycle is a potential deadlock even if
// this particular schedule did not block. (Actual blocked-with-no-runnable
// deadlocks are reported live by the explorer.)

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/sync_observer.hpp"
#include "check/vector_clock.hpp"

namespace ftdag::check {

struct Violation {
  enum class Kind : std::uint8_t {
    kDataRace,
    kLockOrderCycle,
    kDeadlock,
    kLivelock,
    kException,
    kInvariant,
  };
  Kind kind;
  std::string message;
};

const char* violation_kind_name(Violation::Kind kind);

// Renders "tag 'x' (file.cpp:42)" or "file.cpp:42" for untagged sites.
std::string describe_site(const SyncSite& site);

class RaceDetector {
 public:
  // Starts a fresh execution with `threads` controlled threads.
  void reset(std::size_t threads);

  void atomic_load(std::size_t t, const void* addr, std::memory_order order,
                   const SyncSite& site);
  void atomic_store(std::size_t t, const void* addr, std::memory_order order,
                    const SyncSite& site);
  void atomic_rmw(std::size_t t, const void* addr, std::memory_order order,
                  const SyncSite& site);
  void atomic_cas(std::size_t t, const void* addr, bool exchanged,
                  std::memory_order success, std::memory_order failure,
                  const SyncSite& site);

  void lock_acquired(std::size_t t, const void* mutex, const SyncSite& site);
  void lock_released(std::size_t t, const void* mutex, const SyncSite& site);

  void plain_read(std::size_t t, const void* addr, const SyncSite& site);
  void plain_write(std::size_t t, const void* addr, const SyncSite& site);

  // Appends lock-order-cycle violations found in the accumulated order
  // graph (call once per execution, after it finished).
  void check_lock_order();

  const std::vector<Violation>& violations() const { return violations_; }

  static bool is_acquire(std::memory_order order);
  static bool is_release(std::memory_order order);

 private:
  struct Access {
    bool valid = false;
    std::size_t thread = 0;
    std::uint64_t epoch = 0;  // C_thread[thread] at access time
    SyncSite site;
  };

  struct PlainState {
    Access write;
    std::vector<Access> reads;  // one live entry per reading thread
  };

  struct LockEdge {
    SyncSite held_site;  // where the already-held lock was taken
    SyncSite acq_site;   // where the second lock was taken on top
  };

  struct Held {
    const void* mutex;
    SyncSite site;
  };

  // True when `a` happened before thread t's current point.
  bool ordered_before(const Access& a, std::size_t t) const;
  void report_race(const char* what, const Access& prior,
                   const SyncSite& now_site, std::size_t now_thread);
  void add_violation(Violation::Kind kind, std::string message);

  std::vector<VectorClock> clocks_;                 // C_t
  std::map<const void*, VectorClock> atomic_release_;  // W_a
  std::map<const void*, VectorClock> mutex_clock_;     // M
  std::map<const void*, PlainState> plain_;
  std::vector<std::vector<Held>> held_;             // per-thread lock stack
  std::map<std::pair<const void*, const void*>, LockEdge> lock_order_;
  std::vector<Violation> violations_;
};

}  // namespace ftdag::check
