#pragma once
// Instrumented synchronization shim: ftdag::Atomic<T>, ftdag::CheckMutex,
// ftdag::CheckMutexGuard, ftdag::check::Shared<T>.
//
// Normal builds: pure type aliases for std::atomic / SpinLock /
// SpinLockGuard — zero cost, zero codegen difference (bench_hotpath A/B
// against BENCH_hotpath.json guards this). FTDAG_SYNC_TAG(tag) expands to
// nothing, so tagged call sites compile to exactly the untagged form.
//
// FTDAG_SCHED_CHECK builds: thin wrappers that route every operation
// through check::tls_observer (when the calling thread is controlled by a
// ScheduleExplorer session) before performing the real operation. The
// observer serializes the thread, records (thread, address, memory order,
// source tag) and drives vector-clock happens-before + lock-order
// bookkeeping. Uncontrolled threads pay one thread-local load + branch.
//
// Call sites opt into richer reports by passing the `pairs:` tag of the
// synchronizes-with edge, e.g.:
//
//   pending_.fetch_sub(1, std::memory_order_acq_rel
//                      FTDAG_SYNC_TAG("group-pending"));
//
// CheckMutex under a controlled thread delegates mutual exclusion to the
// explorer (which never grants a lock while it is held) instead of spinning
// on the real SpinLock; scenarios must therefore be self-contained — a
// CheckMutex must not be contended by controlled and uncontrolled threads
// at the same time. Uncontrolled threads use the real SpinLock unchanged.

#include <atomic>

#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"

#if !defined(FTDAG_SCHED_CHECK)

#define FTDAG_SYNC_TAG(tag)

namespace ftdag {

template <typename T>
using Atomic = std::atomic<T>;

using CheckMutex = SpinLock;
using CheckMutexGuard = SpinLockGuard;

namespace check {

// Plain (non-atomic) datum a scenario deliberately races on. In normal
// builds it is a bare value; in check builds every get/set is a recorded
// schedule point the race detector checks for happens-before coverage.
template <typename T>
class Shared {
 public:
  Shared() = default;
  explicit Shared(T v) : v_(v) {}

  T get(const char* /*tag*/ = nullptr) const { return v_; }
  void set(T v, const char* /*tag*/ = nullptr) { v_ = v; }

 private:
  T v_{};
};

}  // namespace check
}  // namespace ftdag

#else  // FTDAG_SCHED_CHECK

#include <source_location>

#include "check/sync_observer.hpp"

#define FTDAG_SYNC_TAG(tag) , (tag)

namespace ftdag {
namespace check {

inline SyncSite make_site(const char* tag, const std::source_location& loc) {
  return SyncSite{tag, loc.file_name(), loc.line()};
}

inline void hook(OpKind kind, const void* addr, std::memory_order order,
                 const char* tag, const std::source_location& loc) {
  if (SyncObserver* o = tls_observer) {
    o->sync_point(kind, addr, order, make_site(tag, loc));
  }
}

// The CAS failure order implied by the one-order compare_exchange forms
// ([atomics.types.operations]: failure = success stripped of release).
inline std::memory_order cas_failure_order(std::memory_order success) {
  switch (success) {
    case std::memory_order_acq_rel:
      return std::memory_order_acquire;
    case std::memory_order_release:
      return std::memory_order_relaxed;
    default:
      return success;
  }
}

template <typename T>
class Shared {
 public:
  Shared() = default;
  explicit Shared(T v) : v_(v) {}

  T get(const char* tag = nullptr,
        const std::source_location loc = std::source_location::current()) const {
    hook(OpKind::kPlainRead, &v_, std::memory_order_relaxed, tag, loc);
    return v_;
  }

  void set(T v, const char* tag = nullptr,
           const std::source_location loc = std::source_location::current()) {
    hook(OpKind::kPlainWrite, &v_, std::memory_order_relaxed, tag, loc);
    v_ = v;
  }

 private:
  T v_{};
};

}  // namespace check

template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept : v_() {}
  constexpr Atomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order, const char* tag = nullptr,
         const std::source_location loc =
             std::source_location::current()) const {
    check::hook(check::OpKind::kLoad, &v_, order, tag, loc);
    return v_.load(order);
  }

  void store(T v, std::memory_order order, const char* tag = nullptr,
             const std::source_location loc = std::source_location::current()) {
    check::hook(check::OpKind::kStore, &v_, order, tag, loc);
    v_.store(v, order);
  }

  T exchange(T v, std::memory_order order, const char* tag = nullptr,
             const std::source_location loc = std::source_location::current()) {
    check::hook(check::OpKind::kRmw, &v_, order, tag, loc);
    return v_.exchange(v, order);
  }

  template <typename U>
  T fetch_add(U arg, std::memory_order order, const char* tag = nullptr,
              const std::source_location loc = std::source_location::current()) {
    check::hook(check::OpKind::kRmw, &v_, order, tag, loc);
    return v_.fetch_add(arg, order);
  }

  template <typename U>
  T fetch_sub(U arg, std::memory_order order, const char* tag = nullptr,
              const std::source_location loc = std::source_location::current()) {
    check::hook(check::OpKind::kRmw, &v_, order, tag, loc);
    return v_.fetch_sub(arg, order);
  }

  template <typename U>
  T fetch_and(U arg, std::memory_order order, const char* tag = nullptr,
              const std::source_location loc = std::source_location::current()) {
    check::hook(check::OpKind::kRmw, &v_, order, tag, loc);
    return v_.fetch_and(arg, order);
  }

  template <typename U>
  T fetch_or(U arg, std::memory_order order, const char* tag = nullptr,
             const std::source_location loc = std::source_location::current()) {
    check::hook(check::OpKind::kRmw, &v_, order, tag, loc);
    return v_.fetch_or(arg, order);
  }

  bool compare_exchange_strong(
      T& expected, T desired, std::memory_order success,
      std::memory_order failure, const char* tag = nullptr,
      const std::source_location loc = std::source_location::current()) {
    return cas(/*weak=*/false, expected, desired, success, failure, tag, loc);
  }

  bool compare_exchange_strong(
      T& expected, T desired, std::memory_order order,
      const char* tag = nullptr,
      const std::source_location loc = std::source_location::current()) {
    return cas(/*weak=*/false, expected, desired, order,
               check::cas_failure_order(order), tag, loc);
  }

  bool compare_exchange_weak(
      T& expected, T desired, std::memory_order success,
      std::memory_order failure, const char* tag = nullptr,
      const std::source_location loc = std::source_location::current()) {
    return cas(/*weak=*/true, expected, desired, success, failure, tag, loc);
  }

  bool compare_exchange_weak(
      T& expected, T desired, std::memory_order order,
      const char* tag = nullptr,
      const std::source_location loc = std::source_location::current()) {
    return cas(/*weak=*/true, expected, desired, order,
               check::cas_failure_order(order), tag, loc);
  }

 private:
  bool cas(bool weak, T& expected, T desired, std::memory_order success,
           std::memory_order failure, const char* tag,
           const std::source_location& loc) {
    check::SyncObserver* o = check::tls_observer;
    check::SyncSite site = check::make_site(tag, loc);
    if (o != nullptr) {
      // Schedule point BEFORE the CAS; the outcome (which decides whether
      // the op counts as an RMW or a failure-ordered load for the vector
      // clocks) is reported right after, while this thread still holds its
      // grant — no other controlled thread can run in between.
      o->sync_point(check::OpKind::kCas, &v_, success, site);
    }
    bool ok = weak ? v_.compare_exchange_weak(expected, desired, success, failure)
                   : v_.compare_exchange_strong(expected, desired, success, failure);
    if (o != nullptr) o->cas_outcome(&v_, ok, success, failure, site);
    return ok;
  }

  std::atomic<T> v_;
};

class FTDAG_CAPABILITY("spin lock") CheckMutex {
 public:
  CheckMutex() = default;
  CheckMutex(const CheckMutex&) = delete;
  CheckMutex& operator=(const CheckMutex&) = delete;

  void lock(const char* tag = nullptr,
            const std::source_location loc = std::source_location::current())
      FTDAG_ACQUIRE() {
    if (check::SyncObserver* o = check::tls_observer) {
      // Controlled thread: the explorer provides mutual exclusion (a lock
      // is only granted while free) and the happens-before edge.
      o->mutex_lock(this, check::make_site(tag, loc));
      return;
    }
    impl_.lock();
  }

  bool try_lock(const char* tag = nullptr,
                const std::source_location loc = std::source_location::current())
      FTDAG_TRY_ACQUIRE(true) {
    if (check::SyncObserver* o = check::tls_observer) {
      return o->mutex_try_lock(this, check::make_site(tag, loc));
    }
    return impl_.try_lock();
  }

  void unlock(const char* tag = nullptr,
              const std::source_location loc = std::source_location::current())
      FTDAG_RELEASE() {
    if (check::SyncObserver* o = check::tls_observer) {
      o->mutex_unlock(this, check::make_site(tag, loc));
      return;
    }
    impl_.unlock();
  }

 private:
  SpinLock impl_;
};

class FTDAG_SCOPED_CAPABILITY CheckMutexGuard {
 public:
  explicit CheckMutexGuard(CheckMutex& lock, const char* tag = nullptr,
                           const std::source_location loc =
                               std::source_location::current())
      FTDAG_ACQUIRE(lock)
      : lock_(lock), tag_(tag), loc_(loc) {
    lock_.lock(tag_, loc_);
  }
  ~CheckMutexGuard() FTDAG_RELEASE() { lock_.unlock(tag_, loc_); }

  CheckMutexGuard(const CheckMutexGuard&) = delete;
  CheckMutexGuard& operator=(const CheckMutexGuard&) = delete;

 private:
  CheckMutex& lock_;
  const char* tag_;
  std::source_location loc_;
};

}  // namespace ftdag

#endif  // FTDAG_SCHED_CHECK
