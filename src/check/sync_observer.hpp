#pragma once
// SyncObserver: the seam between the instrumented synchronization shim
// (check/sync_shim.hpp) and the schedule-exploration engine.
//
// In an FTDAG_SCHED_CHECK build every ftdag::Atomic operation, CheckMutex
// lock/unlock and check::Shared plain access on a *controlled* thread calls
// into the observer installed in `tls_observer`. The observer serializes the
// thread at that point (a schedule point: the thread blocks until the
// explorer grants it), records the event with its memory order and source
// tag, and feeds the happens-before bookkeeping of the race detector.
//
// Threads outside an exploration session (the real work-stealing pool, test
// setup code, the explorer's own coordinator) have a null `tls_observer` and
// pay one thread-local load + branch per operation; in non-check builds the
// shim compiles down to std::atomic/SpinLock and this header is unused by
// the hot path entirely.

#include <cstdint>
#include <functional>

#include <atomic>

namespace ftdag::check {

enum class OpKind : std::uint8_t {
  kThreadStart,  // first schedule point of a controlled thread
  kLoad,         // atomic load
  kStore,        // atomic store
  kRmw,          // unconditionally-succeeding RMW (exchange, fetch_*)
  kCas,          // compare_exchange_*; outcome reported via cas_outcome
  kPlainRead,    // check::Shared read (race-checked, no ordering)
  kPlainWrite,   // check::Shared write (race-checked, no ordering)
  kMutexLock,    // CheckMutex::lock — blocks while the mutex is held
  kMutexTryLock, // CheckMutex::try_lock — never blocks
  kMutexUnlock,  // CheckMutex::unlock
  kAwait,        // check::await — blocks until the predicate holds
};

const char* op_kind_name(OpKind kind);

// Where an operation happened, for violation reports: the `pairs:`-style
// source tag when the call site passed one (via FTDAG_SYNC_TAG), plus the
// file:line captured from std::source_location.
struct SyncSite {
  const char* tag = nullptr;
  const char* file = "";
  unsigned line = 0;
};

// Implemented by the ScheduleExplorer engine. Every method is called from
// the controlled thread itself; all of them except cas_outcome are schedule
// points (they block until the scheduler grants the thread).
class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  // Atomic load/store/RMW/CAS-attempt and Shared plain accesses.
  virtual void sync_point(OpKind kind, const void* addr,
                          std::memory_order order, const SyncSite& site) = 0;

  // CAS result fixup, called immediately after the hardware CAS executed
  // (the calling thread still holds its scheduling grant, so no other
  // controlled thread ran in between). Not a schedule point.
  virtual void cas_outcome(const void* addr, bool exchanged,
                           std::memory_order success,
                           std::memory_order failure, const SyncSite& site) = 0;

  // CheckMutex operations. mutex_lock blocks until the mutex is free AND
  // the scheduler picks this thread; try_lock reports whether it acquired.
  virtual void mutex_lock(const void* addr, const SyncSite& site) = 0;
  virtual bool mutex_try_lock(const void* addr, const SyncSite& site) = 0;
  virtual void mutex_unlock(const void* addr, const SyncSite& site) = 0;

  // Bounded stand-in for spin waits: blocks the calling thread until `pred`
  // returns true (evaluated by the coordinator between steps, outside any
  // controlled thread). Scenarios follow it with an acquire load to collect
  // the happens-before edge; await itself establishes no ordering.
  virtual void await(const std::function<bool()>& pred,
                     const SyncSite& site) = 0;
};

// Observer controlling the calling thread; null outside a session.
extern thread_local SyncObserver* tls_observer;

inline SyncObserver* controlled() noexcept { return tls_observer; }

// Scenario-side helper: cooperative wait usable from controlled threads
// (delegates to the observer) and, as a fallback, from ordinary threads
// (plain spin), so scenario code compiles and runs in every build.
void await(const std::function<bool()>& pred, const char* tag = nullptr);

}  // namespace ftdag::check
