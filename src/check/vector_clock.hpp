#pragma once
// Fixed-size vector clock for the schedule checker's happens-before
// bookkeeping. Scenario thread counts are tiny (≤ 8), so this is a plain
// vector with O(n) join/compare — clarity over cleverness.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftdag::check {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t threads) : c_(threads, 0) {}

  std::size_t size() const { return c_.size(); }

  std::uint64_t at(std::size_t t) const { return t < c_.size() ? c_[t] : 0; }

  void ensure(std::size_t threads) {
    if (c_.size() < threads) c_.resize(threads, 0);
  }

  // Advance thread t's own component (one tick per recorded operation).
  void tick(std::size_t t) {
    ensure(t + 1);
    ++c_[t];
  }

  // Pointwise max: acquire side of a synchronizes-with edge.
  void join(const VectorClock& o) {
    ensure(o.c_.size());
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }

  void assign(const VectorClock& o) { c_ = o.c_; }

  void clear() { std::fill(c_.begin(), c_.end(), 0); }

  bool is_zero() const {
    return std::all_of(c_.begin(), c_.end(),
                       [](std::uint64_t v) { return v == 0; });
  }

 private:
  std::vector<std::uint64_t> c_;
};

}  // namespace ftdag::check
