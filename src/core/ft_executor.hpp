#pragma once
// FaultTolerantExecutor: the paper's contribution (Sections IV-V).
//
// Schedules a dynamic task graph with work stealing exactly like the
// baseline NABBIT executor, but augmented per Figures 2 and 3 so that
// corruption of task descriptors or data-block versions — signalled as
// exceptions by the access sites — triggers *selective, localized* recovery:
// only threads that need the failed task participate, no global
// synchronization, arbitrary numbers of failures (including failures during
// recovery) are tolerated, and the final result equals the fault-free result
// (the paper's Theorem 1).
//
// The executor is the component under test in every experiment of Section
// VI; the injector argument reproduces the paper's fault scenarios.

#include "engine/job_context.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "persist/durability.hpp"
#include "replication/replication_policy.hpp"
#include "runtime/scheduler.hpp"
#include "trace/trace.hpp"

namespace ftdag {

struct ExecutorOptions {
  // Liveness watchdog: when > 0, a monitor thread samples progress and, if
  // no compute completes for this many seconds while work is outstanding,
  // dumps a task-status breakdown to stderr (Visited/Computed/Completed
  // counts, join-counter histogram of stuck tasks). Diagnostic only; the
  // execution continues. 0 disables.
  double watchdog_seconds = 0.0;

  // Silent-data-corruption detection by task replication: selected tasks
  // run their compute body twice (once into shadow scratch buffers), the
  // output digests are voted on before successors are notified, and an
  // unresolved mismatch marks the outputs Corrupted and hands the task to
  // the ordinary selective-recovery path. Default off: the fast path then
  // does no shadow allocation and no digest work.
  ReplicationPolicy replication;

  // Durable checkpoint/restart (src/persist/): when `durability.dir` is
  // non-empty, every committed task is journaled to a write-ahead log in
  // that directory (with optional periodic snapshots), prior state found
  // there is loaded before execution, and restored tasks skip their
  // compute. Default off: the executor then instantiates the NoDurability
  // engine, which compiles the whole subsystem out of the walk.
  persist::DurabilityOptions durability;
};

class FaultTolerantExecutor {
 public:
  // Runs the graph to completion, recovering from every fault the injector
  // introduces. `injector` may be nullptr for fault-free runs (the paper's
  // "w/ FT support" bars of Figure 4). `trace`, when given, records compute
  // spans and recovery events per worker (exportable to chrome://tracing).
  // The caller resets problem data between runs.
  ExecReport execute(TaskGraphProblem& problem, WorkStealingPool& pool,
                     FaultInjector* injector = nullptr,
                     ExecutionTrace* trace = nullptr,
                     const ExecutorOptions& options = {});

  // Job-scoped entry point: the injector, trace sink and durability target
  // come from the job's context (Runtime threads one per submitted job).
  // ctx.durability, already resolved to the job's persist subdirectory,
  // overrides options.durability when enabled.
  ExecReport execute(TaskGraphProblem& problem, WorkStealingPool& pool,
                     const engine::JobContext& ctx,
                     const ExecutorOptions& options = {});
};

}  // namespace ftdag
