#pragma once
// CheckpointRestartExecutor: the *collective* recovery comparator.
//
// The paper motivates selective recovery by contrast with checkpoint/
// restart (Section II): "Collective recovery approaches ... would
// synchronize all threads, possibly rolling them back to a prior execution.
// These approaches will require the overhead of synchronization even when
// there are no failures, and, with frequent errors, the application's
// progress may be extremely slow." This executor implements exactly that
// strawman so the claim is measurable (bench_ablation_checkpoint):
//
//  - the graph runs bulk-synchronously, one topological level at a time
//    (the global synchronization a coordinated checkpoint needs anyway);
//  - every `interval_levels` completed levels the entire block store is
//    snapshotted (stable-storage write, modeled as an in-memory copy -
//    generous to the comparator);
//  - ANY detected fault rolls the whole computation back to the most recent
//    snapshot whose state is clean, discarding every task finished since -
//    including the work of threads the fault never touched.
//
// The same TaskGraphProblem and FaultInjector plug in unchanged.

#include <cstdint>

#include "engine/job_context.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "runtime/scheduler.hpp"

namespace ftdag {

struct CheckpointOptions {
  int interval_levels = 4;  // checkpoint every N completed levels
  int max_snapshots = 8;    // older checkpoints are discarded
};

// The comparator reports through the same uniform record as every other
// executor; the checkpoint-specific counters (levels, checkpoints,
// rollbacks, checkpoint_seconds) are zero for the dynamic-walk executors.
using CheckpointReport = ExecReport;

class CheckpointRestartExecutor {
 public:
  CheckpointReport execute(TaskGraphProblem& problem, WorkStealingPool& pool,
                           FaultInjector* injector = nullptr,
                           const CheckpointOptions& options = {});

  // Job-scoped entry point: the fault domain comes from the job's context
  // (trace and durability are not supported by the BSP comparator).
  CheckpointReport execute(TaskGraphProblem& problem, WorkStealingPool& pool,
                           const engine::JobContext& ctx,
                           const CheckpointOptions& options = {});
};

}  // namespace ftdag
