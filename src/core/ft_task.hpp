#pragma once
// FtTask: the fault-tolerant task descriptor (shaded additions of Fig. 2).
//
// Compared with the baseline descriptor it adds:
//   life       incarnation number; bumped each time REPLACETASK re-inserts
//              the task after a failure (Guarantee 1/2)
//   bits       notification bit vector, one bit per predecessor plus a
//              self slot at index |preds|; a join-counter decrement is
//              allowed only by the thread that clears the bit, so each
//              predecessor decrements exactly once per incarnation/epoch
//              even under re-notification (Guarantee 3)
//   corrupted  sticky detected-error flag; every runtime access calls
//              check() which throws TaskDescriptorFault when set
//   recovery   marks incarnations created by RecoverTask (stats only)
//
// The descriptor is fully initialized at construction (join = 1 + |preds|,
// all bits set), so publishing it in the hash map is safe without extra
// synchronization.

#include <atomic>
#include <cstdint>
#include <vector>

#include "concurrent/atomic_bitset.hpp"
#include "fault/fault.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_key.hpp"
#include "support/assert.hpp"
#include "support/spin_lock.hpp"

namespace ftdag {

struct FtTask final : CorruptibleTask {
  FtTask(TaskKey k, std::uint64_t life_number, KeyList predecessors)
      : key(k),
        life(life_number),
        preds(std::move(predecessors)),
        join(1 + static_cast<int>(preds.size())),
        bits(preds.size() + 1) {}

  const TaskKey key;
  const std::uint64_t life;
  const KeyList preds;  // ordered predecessor list, cached at creation

  std::atomic<int> join;
  std::atomic<TaskStatus> status{TaskStatus::kVisited};
  SpinLock lock;                     // guards notify_array
  std::vector<TaskKey> notify_array;  // successors awaiting notification
  AtomicBitset bits;                  // |preds| + 1, all-ones at start
  std::atomic<bool> corrupted{false};
  std::atomic<bool> recovery{false};

  // --- CorruptibleTask -------------------------------------------------------
  TaskKey task_key() const override { return key; }
  void corrupt_descriptor() override {
    corrupted.store(true, std::memory_order_release);
  }

  // Detected-error check: "once an error is detected, all subsequent
  // accesses to that object will observe the error" (Section II).
  void check() const {
    if (corrupted.load(std::memory_order_acquire)) [[unlikely]]
      throw TaskDescriptorFault(key, life);
  }

  // CONVERTPREDKEYTOINDEX: position of pkey in the ordered predecessor
  // list; the task's own key maps to the self slot.
  std::size_t pred_index(TaskKey pkey) const {
    if (pkey == key) return preds.size();
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == pkey) return i;
    FTDAG_ASSERT(false, "pkey is not a predecessor of this task");
    return 0;
  }
};

}  // namespace ftdag
