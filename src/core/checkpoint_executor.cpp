#include "core/checkpoint_executor.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/compute_context.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace ftdag {
namespace {

// Minimal corruptible descriptor for the injector.
struct ChkTask final : CorruptibleTask {
  explicit ChkTask(TaskKey k) : key(k) {}
  TaskKey key;
  std::atomic<bool> corrupted{false};

  TaskKey task_key() const override { return key; }
  void corrupt_descriptor() override {
    corrupted.store(true, std::memory_order_release);
  }
};

bool snapshot_is_clean(const BlockStore::Snapshot& snap) {
  for (VersionState st : snap.states)
    if (st == VersionState::kCorrupted) return false;
  return true;
}

}  // namespace

CheckpointReport CheckpointRestartExecutor::execute(
    TaskGraphProblem& problem, WorkStealingPool& pool, FaultInjector* injector,
    const CheckpointOptions& options) {
  Timer total;
  CheckpointReport report;
  BlockStore& store = problem.block_store();

  // --- build topological levels (the BSP schedule) ---------------------------
  // Iterative post-order from the sink, then level = 1 + max(level(preds)).
  struct Frame {
    TaskKey key;
    KeyList preds;
    std::size_t next = 0;
  };
  std::vector<TaskKey> order;
  {
    std::vector<Frame> stack;
    std::unordered_map<TaskKey, bool> seen;
    stack.push_back({problem.sink(), {}, 0});
    problem.predecessors(problem.sink(), stack.back().preds);
    seen[problem.sink()] = false;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < f.preds.size()) {
        const TaskKey p = f.preds[f.next++];
        if (!seen.count(p)) {
          seen[p] = false;
          stack.push_back({p, {}, 0});
          problem.predecessors(p, stack.back().preds);
        }
        continue;
      }
      order.push_back(f.key);
      stack.pop_back();
    }
  }
  std::unordered_map<TaskKey, std::size_t> level_of;
  std::vector<std::vector<TaskKey>> levels;
  {
    KeyList preds;
    for (TaskKey key : order) {
      preds.clear();
      problem.predecessors(key, preds);
      std::size_t lvl = 0;
      for (TaskKey p : preds) lvl = std::max(lvl, level_of.at(p) + 1);
      level_of.emplace(key, lvl);
      if (lvl >= levels.size()) levels.resize(lvl + 1);
      levels[lvl].push_back(key);
    }
  }
  report.levels = levels.size();

  std::unordered_map<TaskKey, std::unique_ptr<ChkTask>> handles;
  handles.reserve(order.size());
  for (TaskKey key : order) handles.emplace(key, std::make_unique<ChkTask>(key));

  // --- bulk-synchronous execution with coordinated checkpoints ---------------
  struct Checkpoint {
    std::size_t level;  // first level NOT contained in the snapshot
    BlockStore::Snapshot snap;
  };
  std::deque<Checkpoint> checkpoints;
  std::atomic<std::uint64_t> computes{0};
  std::size_t level = 0;
  int since_checkpoint = 0;

  while (level < levels.size()) {
    const std::vector<TaskKey>& tasks = levels[level];
    std::atomic<bool> fault{false};
    pool.parallel_for(
        0, static_cast<std::int64_t>(tasks.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const TaskKey key = tasks[static_cast<std::size_t>(i)];
            ChkTask& h = *handles.at(key);
            try {
              if (injector != nullptr)
                injector->at_point(FaultPhase::kBeforeCompute, h, store,
                                   problem);
              if (h.corrupted.load(std::memory_order_acquire))
                throw TaskDescriptorFault(key, 0);
              {
                ComputeContext ctx(store, key);
                problem.compute(key, ctx);
                ctx.finalize();
              }
              computes.fetch_add(1, std::memory_order_relaxed);
              if (injector != nullptr) {
                // In the BSP model a task's successors observe it at the
                // level boundary, so both post-compute lifetime points of
                // the paper's fault taxonomy fire here.
                injector->at_point(FaultPhase::kAfterCompute, h, store,
                                   problem);
                injector->at_point(FaultPhase::kAfterNotify, h, store,
                                   problem);
              }
            } catch (const FaultException&) {
              fault.store(true, std::memory_order_release);
            }
          }
        });

    if (!fault.load(std::memory_order_acquire)) {
      ++level;
      if (++since_checkpoint >= options.interval_levels &&
          level < levels.size()) {
        Timer ck;
        checkpoints.push_back({level, store.snapshot()});
        if (checkpoints.size() >
            static_cast<std::size_t>(options.max_snapshots))
          checkpoints.pop_front();
        report.checkpoint_seconds += ck.seconds();
        ++report.checkpoints;
        since_checkpoint = 0;
      }
      continue;
    }

    // Global rollback: restore the most recent *clean* checkpoint (a
    // snapshot can itself contain a latent corrupted version from an
    // after-notify fault; those are poisoned and discarded).
    ++report.rollbacks;
    while (!checkpoints.empty() && !snapshot_is_clean(checkpoints.back().snap))
      checkpoints.pop_back();
    if (checkpoints.empty()) {
      store.reset_states();  // restart from the beginning
      level = 0;
    } else {
      store.restore(checkpoints.back().snap);
      level = checkpoints.back().level;
    }
    since_checkpoint = 0;
    for (auto& [key, handle] : handles)
      handle->corrupted.store(false, std::memory_order_relaxed);
  }

  report.computes = computes.load();
  report.re_executed = report.computes - order.size();
  report.seconds = total.seconds();
  return report;
}

}  // namespace ftdag
