#include "check/sync_shim.hpp"
#include "core/checkpoint_executor.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/discovery.hpp"
#include "engine/observation.hpp"
#include "engine/retention_policy.hpp"
#include "graph/compute_context.hpp"
#include "support/timer.hpp"

namespace ftdag {
namespace {

// Minimal corruptible descriptor for the injector.
struct ChkTask final : CorruptibleTask {
  explicit ChkTask(TaskKey k) : key(k) {}
  TaskKey key;
  Atomic<bool> corrupted{false};

  TaskKey task_key() const override { return key; }
  void corrupt_descriptor() override {
    // pairs: chk-poison
    corrupted.store(true, std::memory_order_release);
  }
};

}  // namespace

CheckpointReport CheckpointRestartExecutor::execute(
    TaskGraphProblem& problem, WorkStealingPool& pool, FaultInjector* injector,
    const CheckpointOptions& options) {
  Timer total;
  CheckpointReport report;
  BlockStore& store = problem.block_store();

  // --- the BSP schedule: engine discovery walk + level assignment ------------
  // The traversal engine (inline backend, no-op computes) emits the
  // reachable graph in topological order; level = 1 + max(level(preds)) is
  // then a plain post-pass.
  const std::vector<TaskKey> order = engine::topological_order(problem);
  std::unordered_map<TaskKey, std::size_t> level_of;
  std::vector<std::vector<TaskKey>> levels;
  {
    KeyList preds;
    for (TaskKey key : order) {
      preds.clear();
      problem.predecessors(key, preds);
      std::size_t lvl = 0;
      for (TaskKey p : preds) lvl = std::max(lvl, level_of.at(p) + 1);
      level_of.emplace(key, lvl);
      if (lvl >= levels.size()) levels.resize(lvl + 1);
      levels[lvl].push_back(key);
    }
  }
  report.levels = levels.size();
  report.tasks_discovered = order.size();

  std::unordered_map<TaskKey, std::unique_ptr<ChkTask>> handles;
  handles.reserve(order.size());
  for (TaskKey key : order) handles.emplace(key, std::make_unique<ChkTask>(key));

  // --- bulk-synchronous execution with coordinated checkpoints ---------------
  // Levels run under a global barrier; the retention policy fires at the
  // barrier — the one place a consistent whole-store snapshot exists — and
  // decides rollback targets when a level observes a fault.
  engine::ObservationPolicy obs;
  engine::CheckpointRetention retention(options.interval_levels,
                                        options.max_snapshots);
  std::size_t level = 0;

  while (level < levels.size()) {
    const std::vector<TaskKey>& tasks = levels[level];
    Atomic<bool> fault{false};
    pool.parallel_for(
        0, static_cast<std::int64_t>(tasks.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const TaskKey key = tasks[static_cast<std::size_t>(i)];
            ChkTask& h = *handles.at(key);
            try {
              if (injector != nullptr)
                injector->at_point(FaultPhase::kBeforeCompute, h, store,
                                   problem);
              // pairs: chk-poison
              if (h.corrupted.load(std::memory_order_acquire))
                throw TaskDescriptorFault(key, 0);
              {
                ComputeContext ctx(store, key);
                problem.compute(key, ctx);
                ctx.finalize();
              }
              obs.count_compute();
              if (injector != nullptr) {
                // In the BSP model a task's successors observe it at the
                // level boundary, so both post-compute lifetime points of
                // the paper's fault taxonomy fire here.
                injector->at_point(FaultPhase::kAfterCompute, h, store,
                                   problem);
                injector->at_point(FaultPhase::kAfterNotify, h, store,
                                   problem);
              }
            } catch (const FaultException&) {
              obs.count_fault();
              // pairs: chk-fault — publishes the caught fault to the
              // level-boundary check after the parallel_for joins.
              fault.store(true, std::memory_order_release);
            }
          }
        });

    if (!fault.load(std::memory_order_acquire)) {  // pairs: chk-fault
      ++level;
      retention.on_barrier(store, level, levels.size(), report);
      continue;
    }

    // Global rollback to the most recent clean snapshot (or level 0 with a
    // full state reset), discarding every task finished since — including
    // the work of threads the fault never touched.
    level = retention.rollback(store, report);
    for (auto& [key, handle] : handles)
      handle->corrupted.store(false, std::memory_order_relaxed);
  }

  obs.fill(report);
  report.re_executed = report.computes - order.size();
  report.injected = injector != nullptr ? injector->injected() : 0;
  report.seconds = total.seconds();
  return report;
}

CheckpointReport CheckpointRestartExecutor::execute(
    TaskGraphProblem& problem, WorkStealingPool& pool,
    const engine::JobContext& ctx, const CheckpointOptions& options) {
  return execute(problem, pool, ctx.injector, options);
}

}  // namespace ftdag
