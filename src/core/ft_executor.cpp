#include "core/ft_executor.hpp"

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "engine/backend.hpp"
#include "engine/detection_policy.hpp"
#include "engine/durability_policy.hpp"
#include "engine/fault_policy.hpp"
#include "engine/retention_policy.hpp"
#include "engine/traversal_engine.hpp"
#include "persist/durability.hpp"
#include "support/assert.hpp"

namespace ftdag {
namespace {

template <class Durability>
using FtEngine =
    engine::TraversalEngine<engine::SelectiveRecoveryPolicy,
                            engine::ReplicationDetection, engine::NoRetention,
                            engine::WorkStealingBackend, Durability>;

// Diagnostic liveness monitor: samples the compute counter; on stall,
// prints a status breakdown of the task map so a hung execution (e.g. a
// lost notification) is attributable without a debugger.
template <class Engine>
class Watchdog {
 public:
  Watchdog(Engine& eng, engine::ObservationPolicy& obs,
           double interval_seconds)
      : eng_(eng), obs_(obs), interval_(interval_seconds) {
    if (interval_ > 0.0) thread_ = std::thread([this] { main(); });
  }

  ~Watchdog() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void main() {
    std::uint64_t last = obs_.computes();
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_),
                   [this] { return stop_; });
      if (stop_) return;
      const std::uint64_t now = obs_.computes();
      if (now != last) {
        last = now;
        continue;
      }
      // No compute finished for a whole interval: dump status counts.
      std::size_t visited = 0, computed = 0, completed = 0, corrupted = 0;
      eng_.for_each_task([&](TaskKey, const engine::FtTask* t) {
        if (t == nullptr) return;
        if (t->corrupted.load(std::memory_order_relaxed)) ++corrupted;
        switch (t->status.load(std::memory_order_relaxed)) {
          case TaskStatus::kVisited:
            ++visited;
            break;
          case TaskStatus::kComputed:
            ++computed;
            break;
          case TaskStatus::kCompleted:
            ++completed;
            break;
        }
      });
      std::fprintf(stderr,
                   "[ftdag watchdog] no compute for %.1fs: computes=%llu "
                   "tasks{visited=%zu computed=%zu completed=%zu "
                   "corrupted=%zu} recoveries=%llu resets=%llu\n",
                   interval_, (unsigned long long)now, visited, computed,
                   completed, corrupted,
                   (unsigned long long)obs_.recoveries(),
                   (unsigned long long)obs_.resets());
    }
  }

  Engine& eng_;
  engine::ObservationPolicy& obs_;
  double interval_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

template <class Durability>
ExecReport run_with(TaskGraphProblem& problem, WorkStealingPool& pool,
                    FaultInjector* injector, ExecutionTrace* trace,
                    const ExecutorOptions& options, Durability& durability) {
  engine::WorkStealingBackend backend(pool);
  engine::ObservationPolicy obs(trace);
  engine::SelectiveRecoveryPolicy fault(obs, injector);
  engine::ReplicationDetection detection(options.replication,
                                         pool.thread_count(), obs);
  engine::NoRetention retention;
  FtEngine<Durability> eng(problem, backend, fault, detection, retention,
                           durability, obs);

  Watchdog<FtEngine<Durability>> watchdog(eng, obs, options.watchdog_seconds);
  return eng.run();
}

}  // namespace

ExecReport FaultTolerantExecutor::execute(TaskGraphProblem& problem,
                                          WorkStealingPool& pool,
                                          FaultInjector* injector,
                                          ExecutionTrace* trace,
                                          const ExecutorOptions& options) {
  if (options.durability.enabled()) {
    // Constructed before the walk: loads any persisted state into the
    // (reset) store and result slots, so restored tasks skip their compute.
    persist::WalDurability durability(problem, options.durability);
    return run_with(problem, pool, injector, trace, options, durability);
  }
  engine::NoDurability durability;
  return run_with(problem, pool, injector, trace, options, durability);
}

ExecReport FaultTolerantExecutor::execute(TaskGraphProblem& problem,
                                          WorkStealingPool& pool,
                                          const engine::JobContext& ctx,
                                          const ExecutorOptions& options) {
  ExecutorOptions effective = options;
  if (ctx.durability.enabled()) effective.durability = ctx.durability;
  return execute(problem, pool, ctx.injector, ctx.trace, effective);
}

}  // namespace ftdag
