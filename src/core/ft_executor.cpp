#include "core/ft_executor.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrent/sharded_map.hpp"
#include "core/ft_task.hpp"
#include "core/recovery_table.hpp"
#include "graph/compute_context.hpp"
#include "replication/digest_voter.hpp"
#include "replication/shadow_context.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace ftdag {
namespace {

// Hash-map entry: holds the *current incarnation* of a task. REPLACETASK
// swaps the pointer; superseded incarnations are retired to a garbage list
// (threads may still hold them) and freed after quiescence.
struct TaskSlot {
  explicit TaskSlot(FtTask* t) : task(t) {}
  ~TaskSlot() { delete task.load(std::memory_order_relaxed); }
  std::atomic<FtTask*> task;
};

// Per-key compute completions, for the re-execution statistics of Table II.
struct ComputeCount {
  std::atomic<std::uint32_t> runs{0};
};

struct Run {
  TaskGraphProblem& problem;
  WorkStealingPool& pool;
  FaultInjector* injector;
  ExecutionTrace* trace;
  BlockStore& store;
  const ReplicationPolicy replication;

  ShardedMap<TaskSlot> tasks;
  RecoveryTable recovery;
  ShardedMap<ComputeCount> compute_counts;

  SpinLock garbage_lock;
  std::vector<FtTask*> garbage;  // superseded incarnations

  // One replica scratch arena per worker (index current_worker_index();
  // external callers share arena 0 — the arena itself is thread-safe).
  // Empty when replication is off: the fast path allocates nothing.
  std::vector<std::unique_ptr<ShadowArena>> arenas;

  std::atomic<std::uint64_t> computes{0};
  std::atomic<std::uint64_t> faults_caught{0};
  std::atomic<std::uint64_t> recoveries{0};
  std::atomic<std::uint64_t> resets{0};
  std::atomic<std::uint64_t> replicated{0};
  std::atomic<std::uint64_t> digest_mismatches{0};
  std::atomic<std::uint64_t> votes_resolved{0};

  Run(TaskGraphProblem& p, WorkStealingPool& wp, FaultInjector* inj,
      ExecutionTrace* tr, const ReplicationPolicy& rp)
      : problem(p), pool(wp), injector(inj), trace(tr),
        store(p.block_store()), replication(rp) {
    if (replication.enabled()) {
      arenas.resize(pool.thread_count());
      for (auto& a : arenas) a = std::make_unique<ShadowArena>();
    }
  }

  ShadowArena& arena() {
    const int w = pool.current_worker_index();
    return *arenas[w >= 0 ? static_cast<std::size_t>(w) : 0];
  }

  void trace_span(TraceKind kind, TaskKey key, std::uint64_t life,
                  double begin) {
    if (trace != nullptr)
      trace->record(pool.current_worker_index(), kind, key, life, begin,
                    trace->now());
  }
  void trace_instant(TraceKind kind, TaskKey key, std::uint64_t life) {
    if (trace != nullptr) {
      const double t = trace->now();
      trace->record(pool.current_worker_index(), kind, key, life, t, t);
    }
  }

  ~Run() {
    for (FtTask* t : garbage) delete t;
  }

  // --- task lifetime ---------------------------------------------------------

  FtTask* make_task(TaskKey key, std::uint64_t life) {
    KeyList preds;
    problem.predecessors(key, preds);
    return new FtTask(key, life, std::move(preds));
  }

  // INSERTTASKIFABSENT + GETTASK fused: returns the current incarnation.
  std::pair<FtTask*, bool> insert_task_if_absent(TaskKey key) {
    auto [slot, inserted] = tasks.insert_if_absent(
        key, [&] { return new TaskSlot(make_task(key, 0)); });
    return {slot->task.load(std::memory_order_acquire), inserted};
  }

  FtTask* find_task(TaskKey key) {
    TaskSlot* slot = tasks.find(key);
    return slot ? slot->task.load(std::memory_order_acquire) : nullptr;
  }

  // REPLACETASK: publishes a fresh incarnation with life + 1. The superseded
  // descriptor is poisoned first so threads still holding it observe the
  // error on their next access and defer to the recovery table.
  FtTask* replace_task(TaskKey key) {
    TaskSlot* slot = tasks.find(key);
    FTDAG_ASSERT(slot != nullptr, "REPLACETASK on unknown key");
    FtTask* old = slot->task.load(std::memory_order_acquire);
    FtTask* fresh = make_task(key, old->life + 1);
    old->corrupt_descriptor();
    const bool swapped = slot->task.compare_exchange_strong(
        old, fresh, std::memory_order_acq_rel);
    FTDAG_ASSERT(swapped, "concurrent REPLACETASK on the same incarnation");
    {
      std::lock_guard<SpinLock> guard(garbage_lock);
      garbage.push_back(old);
    }
    return fresh;
  }

  // --- fault plumbing --------------------------------------------------------

  void injector_point(FaultPhase phase, FtTask* a) {
    if (injector != nullptr) injector->at_point(phase, *a, store, problem);
  }

  // Throws DataBlockFault if any output version of a task that claims to
  // have Computed is not Valid (the "B.overwritten" test of Fig. 2
  // TRYINITCOMPUTE, extended to corrupted outputs: a soft error matters iff
  // it hits the descriptor or an output). Absent outputs of a Computed task
  // are equally fatal - an aborted recovery rewrite leaves a version
  // Absent, and a consumer's compute observes that as a missing-input
  // fault. The traversal check must cover every state the compute can
  // throw on, or the reset-retraverse loop of Guarantee 5 cannot converge.
  void throw_if_outputs_unusable(TaskKey key) {
    OutputList outs;
    problem.outputs(key, outs);
    for (const ProducedVersion& pv : outs) {
      const VersionState st = store.state(pv.block, pv.version);
      if (st == VersionState::kValid) continue;
      BlockFaultReason reason;
      switch (st) {
        case VersionState::kCorrupted:
          reason = BlockFaultReason::kCorrupted;
          break;
        case VersionState::kOverwritten:
          reason = BlockFaultReason::kOverwritten;
          break;
        default:
          reason = BlockFaultReason::kMissing;
          break;
      }
      throw DataBlockFault(key, pv.block, pv.version, reason);
    }
  }

  void note_compute(TaskKey key) {
    computes.fetch_add(1, std::memory_order_relaxed);
    auto [count, inserted] =
        compute_counts.insert_if_absent(key, [] { return new ComputeCount; });
    (void)inserted;
    count->runs.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Figure 2 routines -----------------------------------------------------

  // INITANDCOMPUTE: traverse predecessors, then self-notify. The descriptor
  // itself was fully initialized at construction (INIT).
  void init_and_compute(FtTask* a, TaskKey key, std::uint64_t life) {
    for (TaskKey pkey : a->preds)
      pool.spawn(
          [this, a, key, life, pkey] { try_init_compute(a, key, life, pkey); });
    notify_once(a, key, key, life);
  }

  void try_init_compute(FtTask* a, TaskKey key, std::uint64_t life,
                        TaskKey pkey) {
    auto [b, inserted] = insert_task_if_absent(pkey);
    const std::uint64_t blife = b->life;
    if (inserted)
      pool.spawn([this, b, pkey, blife] { init_and_compute(b, pkey, blife); });

    bool finished = true;
    try {
      b->check();
      {
        std::lock_guard<SpinLock> guard(b->lock);
        if (b->status.load(std::memory_order_acquire) <
            TaskStatus::kComputed) {
          // B notifies A once computed (and will produce fresh outputs).
          b->notify_array.push_back(key);
          finished = false;
        }
      }
      // B claims Computed: for *flow* predecessors its outputs must be
      // live. Anti-dependence predecessors' data is legitimately dead once
      // their readers ran, so it is never checked.
      if (finished && problem.data_dependence(key, pkey))
        throw_if_outputs_unusable(pkey);
    } catch (const FaultException& e) {
      faults_caught.fetch_add(1, std::memory_order_relaxed);
      trace_instant(TraceKind::kFault, e.failed_key(), blife);
      finished = false;
      recover_task_once(pkey, blife);
    }
    if (finished) notify_once(a, key, pkey, life);
  }

  // NOTIFYONCE: clear the bit for pkey; only the clearing thread may
  // decrement the join counter (Guarantee 3).
  void notify_once(FtTask* a, TaskKey key, TaskKey pkey, std::uint64_t life) {
    try {
      a->check();
      const std::size_t ind = a->pred_index(pkey);
      if (a->bits.fetch_unset(ind)) {
        const int val = a->join.fetch_sub(1, std::memory_order_acq_rel) - 1;
        FTDAG_ASSERT(val >= 0, "join counter went negative");
        if (val == 0) compute_and_notify(a, key, life);
      }
    } catch (const FaultException& e) {
      faults_caught.fetch_add(1, std::memory_order_relaxed);
      trace_instant(TraceKind::kFault, e.failed_key(), life);
      recover_task_once(key, life);
    }
  }

  void notify_successor(TaskKey key, TaskKey skey) {
    FtTask* s = find_task(skey);
    FTDAG_ASSERT(s != nullptr, "notify target was never inserted");
    notify_once(s, skey, key, s->life);
  }

  // --- replication (dual-execution digest voting) ----------------------------

  // Replicate iff the policy selects this task; pure control tasks (no
  // outputs) are never replicated. `outs` is filled as a side effect for the
  // voter. Called only when replication is enabled.
  bool should_replicate(TaskKey key, OutputList& outs) {
    problem.outputs(key, outs);
    std::uint64_t bytes = 0;
    for (const ProducedVersion& pv : outs) bytes += store.block_bytes(pv.block);
    return replication.should_replicate(key, bytes);
  }

  // Runs the compute body once against shadow scratch buffers. Reads are
  // re-validated like a primary run's; a DataBlockFault propagates into the
  // ordinary recovery path of the caller. Returns the replica's digests.
  DigestList run_replica(TaskKey key, std::uint64_t life,
                         ComputeContext::StagedResults& staged) {
    const double begin = trace != nullptr ? trace->now() : 0.0;
    ShadowContext sctx(store, key, arena());
    problem.compute(key, sctx);
    sctx.finalize();  // re-validate replica reads; publishes nothing
    replicated.fetch_add(1, std::memory_order_relaxed);
    trace_span(TraceKind::kReplica, key, life, begin);
    staged = sctx.staged_results();
    return sctx.output_digests();
  }

  // Votes replica vs. published outputs after commit. On mismatch, tries a
  // tie-breaking third run (TMR) when the primary did not consume its
  // inputs in place; if the tie-breaker sides with the primary, execution
  // proceeds (the replica was the corrupted run). Otherwise the outputs are
  // marked Corrupted and ReplicaMismatchFault sends the task — a detected
  // fault now — through RECOVERTASK, whose re-execution (and, for consumed
  // inputs, the re-execution chain behind it) regenerates everything.
  void vote_or_recover(TaskKey key, const OutputList& outs,
                       const DigestList& replica_digests,
                       const ComputeContext::StagedResults& replica_staged,
                       const ComputeContext::StagedResults& primary_staged,
                       bool primary_consumed_inputs, std::uint64_t life) {
    DigestList published;
    const bool readable = DigestVoter::committed_digests(store, outs, published);
    if (readable && DigestVoter::agree(published, replica_digests) &&
        DigestVoter::agree(primary_staged, replica_staged))
      return;

    digest_mismatches.fetch_add(1, std::memory_order_relaxed);
    if (readable && !primary_consumed_inputs) {
      try {
        ComputeContext::StagedResults tie_staged;
        const DigestList tie = run_replica(key, life, tie_staged);
        if (DigestVoter::agree(tie, published) &&
            DigestVoter::agree(tie_staged, primary_staged)) {
          // Two against one for the published outputs: the shadow replica
          // was the corrupted execution. Nothing to repair.
          votes_resolved.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      } catch (const FaultException&) {
        // An input vanished under the tie-breaker (displaced by unrelated
        // recovery): the vote stays unresolved, fall through to recovery.
      }
    }
    // Unresolved: turn the silent corruption into a detected one. Consumers
    // cannot have read these outputs yet — the task has not been marked
    // Computed nor notified anyone.
    for (const ProducedVersion& pv : outs) store.corrupt(pv.block, pv.version);
    throw ReplicaMismatchFault(key);
  }

  // --- Figure 2 routines (continued) -----------------------------------------

  void compute_and_notify(FtTask* a, TaskKey key, std::uint64_t life) {
    try {
      a->check();
      injector_point(FaultPhase::kBeforeCompute, a);
      a->check();  // a before-compute fault is detected here, pre-COMPUTE

      OutputList outs;
      DigestList replica_digests;
      ComputeContext::StagedResults replica_staged, primary_staged;
      bool replicate = false, primary_consumed_inputs = false;
      if (replication.enabled()) replicate = should_replicate(key, outs);

      {
        // Replica first: it must observe the same inputs as the primary,
        // and with memory reuse the primary consumes same-slot inputs.
        if (replicate) replica_digests = run_replica(key, life, replica_staged);

        const double begin = trace != nullptr ? trace->now() : 0.0;
        ComputeContext ctx(store, key);
        problem.compute(key, ctx);  // reads throw on corrupt/overwritten input
        a->check();                  // descriptor died mid-compute?
        ctx.finalize();              // re-validate reads, commit outputs
        trace_span(TraceKind::kCompute, key, life, begin);
        if (replicate) {
          primary_staged = ctx.staged_results();
          primary_consumed_inputs = ctx.consumed_inputs();
        }
      }
      note_compute(key);
      // The injector fires before the digest vote and before the Computed
      // status is published: a bit flipped in the committed outputs here is
      // precisely the silent corruption the vote must catch, and no
      // consumer can read the outputs until the status flips below.
      injector_point(FaultPhase::kAfterCompute, a);
      if (replicate)
        vote_or_recover(key, outs, replica_digests, replica_staged,
                        primary_staged, primary_consumed_inputs, life);
      a->status.store(TaskStatus::kComputed, std::memory_order_release);

      // Notify enqueued successors; re-check the array under the lock before
      // flipping to Completed so late registrations are not lost.
      std::size_t notified = 0;
      for (;;) {
        a->check();  // an after-compute fault on self is detected here
        KeyList batch;
        {
          std::lock_guard<SpinLock> guard(a->lock);
          for (std::size_t i = notified; i < a->notify_array.size(); ++i)
            batch.push_back(a->notify_array[i]);
          if (batch.empty()) {
            a->status.store(TaskStatus::kCompleted,
                            std::memory_order_release);
            break;
          }
          notified = a->notify_array.size();
        }
        for (TaskKey skey : batch)
          pool.spawn([this, key, skey] { notify_successor(key, skey); });
      }
      injector_point(FaultPhase::kAfterNotify, a);
      // After-notify faults stay latent until (and unless) a later access
      // observes them - matching the paper's after-notify scenarios.
    } catch (const FaultException& e) {
      faults_caught.fetch_add(1, std::memory_order_relaxed);
      trace_instant(TraceKind::kFault, e.failed_key(), life);
      if (e.failed_key() == key)
        recover_task_once(key, life);  // error in A itself
      else
        reset_node(a, key, life);  // a predecessor's data failed mid-compute
    }
  }

  // --- Figure 3 routines -----------------------------------------------------

  void recover_task_once(TaskKey key, std::uint64_t life) {
    if (!recovery.is_recovering(key, life)) recover_task(key);
  }

  // RESETNODE: re-arm the join counter and bit vector, then re-traverse the
  // predecessors; the traversal observes whichever predecessor failed and
  // recovers it (Guarantee 5). Resetting join *before* the bits keeps stale
  // duplicate notifications harmless: in the window between the two stores
  // all bits are clear, so stragglers cannot decrement.
  void reset_node(FtTask* a, TaskKey key, std::uint64_t life) {
    try {
      FTDAG_DASSERT(a->status.load() == TaskStatus::kVisited,
                    "reset of a task that already computed");
      a->join.store(1 + static_cast<int>(a->preds.size()),
                    std::memory_order_release);
      a->bits.set_all();
      resets.fetch_add(1, std::memory_order_relaxed);
      trace_instant(TraceKind::kReset, key, life);
      init_and_compute(a, key, life);
    } catch (const FaultException& e) {
      faults_caught.fetch_add(1, std::memory_order_relaxed);
      trace_instant(TraceKind::kFault, e.failed_key(), life);
      recover_task_once(key, life);
    }
  }

  // REINITNOTIFYENTRY: while recovering T, re-enqueue successor S iff S is
  // still Visited and has not yet been notified by T (its bit for T is still
  // set). Entries of the lost notify array are reconstructed from successor
  // state instead of from any backup (Guarantee 4).
  void reinit_notify_entry(FtTask* t, TaskKey key, FtTask* s, TaskKey skey,
                           std::uint64_t slife) {
    try {
      s->check();
      if (s->status.load(std::memory_order_acquire) != TaskStatus::kVisited)
        return;  // Computed/Completed successors need nothing from T
      const std::size_t ind = s->pred_index(key);
      if (s->bits.test(ind)) {
        std::lock_guard<SpinLock> guard(t->lock);
        t->notify_array.push_back(skey);
      }
    } catch (const FaultException& e) {
      faults_caught.fetch_add(1, std::memory_order_relaxed);
      trace_instant(TraceKind::kFault, e.failed_key(), slife);
      if (e.failed_key() == skey)
        recover_task_once(skey, slife);
      else
        throw;  // fault on T itself: let RECOVERTASK's retry loop handle it
    }
  }

  // RECOVERTASK: replace the incarnation, rebuild its notify array from its
  // successors, and re-process it as a fresh task. Failures during recovery
  // restart the loop with yet another incarnation (Guarantee 6), unless a
  // different thread already claimed the newer recovery.
  void recover_task(TaskKey key) {
    for (;;) {
      bool success = true;
      std::uint64_t life = 0;
      const double begin = trace != nullptr ? trace->now() : 0.0;
      try {
        FtTask* t = replace_task(key);
        life = t->life;
        t->recovery.store(true, std::memory_order_relaxed);
        recoveries.fetch_add(1, std::memory_order_relaxed);

        KeyList succs;
        problem.successors(key, succs);
        for (TaskKey skey : succs) {
          FtTask* s = find_task(skey);
          if (s == nullptr) continue;  // successor not yet created: it will
                                       // observe the fresh incarnation itself
          reinit_notify_entry(t, key, s, skey, s->life);
        }
        pool.spawn([this, t, key, life] { init_and_compute(t, key, life); });
        trace_span(TraceKind::kRecovery, key, life, begin);
      } catch (const FaultException& e) {
        faults_caught.fetch_add(1, std::memory_order_relaxed);
        trace_instant(TraceKind::kFault, e.failed_key(), life);
        if (!recovery.is_recovering(key, life)) success = false;
      }
      if (success) return;
    }
  }
};

}  // namespace

namespace {

// Diagnostic liveness monitor: samples the compute counter; on stall,
// prints a status breakdown of the task map so a hung execution (e.g. a
// lost notification) is attributable without a debugger.
class Watchdog {
 public:
  Watchdog(Run& run, double interval_seconds)
      : run_(run), interval_(interval_seconds) {
    if (interval_ > 0.0) thread_ = std::thread([this] { main(); });
  }

  ~Watchdog() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void main() {
    std::uint64_t last = run_.computes.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_),
                   [this] { return stop_; });
      if (stop_) return;
      const std::uint64_t now = run_.computes.load(std::memory_order_relaxed);
      if (now != last) {
        last = now;
        continue;
      }
      // No compute finished for a whole interval: dump status counts.
      std::size_t visited = 0, computed = 0, completed = 0, corrupted = 0;
      run_.tasks.for_each([&](MapKey, TaskSlot& slot) {
        const FtTask* t = slot.task.load(std::memory_order_acquire);
        if (t == nullptr) return;
        if (t->corrupted.load(std::memory_order_relaxed)) ++corrupted;
        switch (t->status.load(std::memory_order_relaxed)) {
          case TaskStatus::kVisited:
            ++visited;
            break;
          case TaskStatus::kComputed:
            ++computed;
            break;
          case TaskStatus::kCompleted:
            ++completed;
            break;
        }
      });
      std::fprintf(stderr,
                   "[ftdag watchdog] no compute for %.1fs: computes=%llu "
                   "tasks{visited=%zu computed=%zu completed=%zu "
                   "corrupted=%zu} recoveries=%llu resets=%llu\n",
                   interval_, (unsigned long long)now, visited, computed,
                   completed, corrupted,
                   (unsigned long long)run_.recoveries.load(),
                   (unsigned long long)run_.resets.load());
    }
  }

  Run& run_;
  double interval_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

ExecReport FaultTolerantExecutor::execute(TaskGraphProblem& problem,
                                          WorkStealingPool& pool,
                                          FaultInjector* injector,
                                          ExecutionTrace* trace,
                                          const ExecutorOptions& options) {
  Run run(problem, pool, injector, trace, options.replication);
  const TaskKey sink = problem.sink();

  Timer timer;
  {
    Watchdog watchdog(run, options.watchdog_seconds);
    pool.run_to_quiescence([&run, sink] {
      auto [t, inserted] = run.insert_task_if_absent(sink);
      FTDAG_ASSERT(inserted, "sink already present");
      run.init_and_compute(t, sink, t->life);
    });
  }

  ExecReport report;
  report.seconds = timer.seconds();
  report.tasks_discovered = run.tasks.size();
  report.computes = run.computes.load();
  run.compute_counts.for_each([&report](TaskKey, const ComputeCount& c) {
    const std::uint32_t n = c.runs.load(std::memory_order_relaxed);
    if (n > 1) report.re_executed += n - 1;
  });
  report.faults_caught = run.faults_caught.load();
  report.recoveries = run.recoveries.load();
  report.resets = run.resets.load();
  report.injected = injector != nullptr ? injector->injected() : 0;
  report.replicated = run.replicated.load();
  report.digest_mismatches = run.digest_mismatches.load();
  report.votes_resolved = run.votes_resolved.load();

  FtTask* sink_task = run.find_task(sink);
  FTDAG_ASSERT(sink_task != nullptr &&
                   sink_task->status.load() == TaskStatus::kCompleted,
               "sink did not complete");
  return report;
}

}  // namespace ftdag
