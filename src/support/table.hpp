#pragma once
// ASCII table rendering for the bench harness: every bench binary prints the
// same rows/series the paper's corresponding table or figure reports.

#include <string>
#include <vector>

namespace ftdag {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds one row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  // Renders with column alignment and a header separator.
  std::string render() const;

  // Convenience: renders to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style formatting into std::string for table cells.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ftdag
