#pragma once
// Cache-line geometry and padding helpers for contended data.

#include <cstddef>
#include <new>

namespace ftdag {

// std::hardware_destructive_interference_size is not reliably provided by
// all standard libraries; 64 bytes is correct for every x86-64 and most
// AArch64 parts this library targets.
inline constexpr std::size_t kCacheLine = 64;

// Wraps a value so that adjacent instances never share a cache line,
// eliminating false sharing between per-worker slots.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace ftdag
