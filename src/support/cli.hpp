#pragma once
// Minimal command-line flag parser for the bench harness binaries.
//
// Usage: Cli cli(argc, argv);
//        int p = cli.get_int("threads", 4);
//        auto apps = cli.get_string("apps", "lcs,sw,fw,lu,cholesky");
// Flags are written --name=value or --name value. Unknown flags are an error
// so experiment scripts fail loudly on typos.
//
// Every get_* query registers the flag and its default, so `--help` (handled
// in check_unknown(), after a binary has declared all its flags by querying
// them) can print the full flag list with defaults plus the library version
// — making scripted bench failures debuggable without reading the source.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ftdag {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  // Numeric getters reject malformed values outright: trailing garbage,
  // empty strings and out-of-range magnitudes print a one-line error naming
  // the flag and exit 2 (same contract as an unknown flag — experiment
  // scripts fail loudly, not with a silently-parsed 0).
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;

  // Bounded variants for count-like flags: get_positive_int rejects values
  // < 1 (--threads=0, --reps=-3), get_nonneg_int rejects values < 0
  // (--snapshot-every=-1). Same exit-2-with-flag-name contract.
  std::int64_t get_positive_int(const std::string& name,
                                std::int64_t def) const;
  std::int64_t get_nonneg_int(const std::string& name, std::int64_t def) const;

  // Splits a comma-separated flag into items, e.g. --apps=lcs,fw.
  std::vector<std::string> get_list(const std::string& name,
                                    const std::string& def) const;

  // Comma-separated list of integers >= 1 (e.g. --threads=1,2,4 for sweep
  // benches); empty lists and malformed or nonpositive entries exit 2.
  std::vector<std::int64_t> get_positive_int_list(const std::string& name,
                                                  const std::string& def) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  // Marks a flag as recognized; after parsing, `check_unknown` aborts on any
  // flag never queried. Queries register automatically. When --help was
  // passed, prints every registered flag with its default plus version info
  // and exits 0 instead.
  void check_unknown() const;

 private:
  void note(const std::string& name, std::string def) const;
  [[noreturn]] void print_help() const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> seen_;
  mutable std::map<std::string, std::string> defaults_;
  std::vector<std::string> positional_;
};

std::vector<std::string> split_csv(const std::string& text);

}  // namespace ftdag
