#pragma once
// Clang thread-safety-analysis annotations (-Wthread-safety).
//
// These macros make the repo's locking discipline a *compile-time contract*:
// which lock guards which field (FTDAG_GUARDED_BY), which functions may only
// run with a lock held (FTDAG_REQUIRES), and which functions acquire or
// release a capability (FTDAG_ACQUIRE / FTDAG_RELEASE). Clang's analysis
// checks every annotated access path; the static-analysis CI job compiles
// the tree with `-Wthread-safety -Werror`, so an unguarded access to an
// annotated field is a build break, not a TSan roll of the dice.
//
// Under GCC (which has no thread-safety analysis) and under clang versions
// without the capability attribute, every macro expands to nothing, so the
// annotations cost nothing in any build.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FTDAG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef FTDAG_THREAD_ANNOTATION
#define FTDAG_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares a class to be a capability (a lock). The string names the
// capability kind in diagnostics ("spin lock 'shard.lock' is not held...").
#define FTDAG_CAPABILITY(x) FTDAG_THREAD_ANNOTATION(capability(x))

// Declares an RAII class whose constructor acquires and destructor releases
// a capability (our SpinLockGuard; std::lock_guard in libstdc++ carries no
// annotations, which is why the repo uses its own guard for annotated locks).
#define FTDAG_SCOPED_CAPABILITY FTDAG_THREAD_ANNOTATION(scoped_lockable)

// Field annotation: may only be read or written while holding `x`.
#define FTDAG_GUARDED_BY(x) FTDAG_THREAD_ANNOTATION(guarded_by(x))

// Pointer-field annotation: the *pointee* is guarded by `x` (the pointer
// itself may be read freely).
#define FTDAG_PT_GUARDED_BY(x) FTDAG_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotation: callers must hold the listed capabilities.
#define FTDAG_REQUIRES(...) \
  FTDAG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function annotation: acquires the listed capabilities (held on return).
#define FTDAG_ACQUIRE(...) \
  FTDAG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function annotation: releases the listed capabilities.
#define FTDAG_RELEASE(...) \
  FTDAG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function annotation: acquires the capability iff the return value equals
// the first argument (e.g. FTDAG_TRY_ACQUIRE(true) for bool try_lock()).
#define FTDAG_TRY_ACQUIRE(...) \
  FTDAG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function annotation: callers must NOT hold the listed capabilities
// (deadlock prevention for functions that acquire them internally).
#define FTDAG_EXCLUDES(...) FTDAG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function annotation: returns a reference to the given capability.
#define FTDAG_RETURN_CAPABILITY(x) FTDAG_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Used only where the
// locking protocol is correct but outside the analysis' model — e.g. the
// BlockStore write-ticket protocol, which holds a dynamically-indexed
// per-slot lock across begin_write()/commit() function boundaries. Every
// use must carry a comment explaining why the analysis cannot follow.
#define FTDAG_NO_THREAD_SAFETY_ANALYSIS \
  FTDAG_THREAD_ANNOTATION(no_thread_safety_analysis)
