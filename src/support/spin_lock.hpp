#pragma once
// Test-and-test-and-set spin lock with exponential backoff.
//
// Used for the short critical sections the paper's algorithm needs: the
// per-task notify-array lock and the hash-map shard locks. Sections are a few
// dozen instructions, so spinning beats parking; the backoff keeps the lock
// usable even when the machine is oversubscribed (threads > cores).

#include <atomic>
#include <thread>

#include "support/cache.hpp"

namespace ftdag {

class Backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      for (int i = 0; i < (1 << spins_); ++i) cpu_relax();
      ++spins_;
    } else {
      // Oversubscribed or long wait: cede the core so the lock holder runs.
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  static constexpr int kSpinLimit = 6;
  int spins_ = 0;
};

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace ftdag
