#pragma once
// Test-and-test-and-set spin lock with exponential backoff.
//
// Used for the short critical sections the paper's algorithm needs: the
// per-task notify-array lock and the hash-map shard locks. Sections are a few
// dozen instructions, so spinning beats parking; the backoff keeps the lock
// usable even when the machine is oversubscribed (threads > cores).

#include <atomic>
#include <thread>

#include "support/cache.hpp"
#include "support/thread_safety.hpp"

namespace ftdag {

class Backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      for (int i = 0; i < (1 << spins_); ++i) cpu_relax();
      ++spins_;
    } else {
      // Oversubscribed or long wait: cede the core so the lock holder runs.
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  static constexpr int kSpinLimit = 6;
  int spins_ = 0;
};

class FTDAG_CAPABILITY("spin lock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() FTDAG_ACQUIRE() {
    Backoff backoff;
    for (;;) {
      // pairs: spinlock — the acquire exchange synchronizes with the release
      // store in unlock(), making everything the previous holder wrote under
      // the lock visible to this new holder.
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  bool try_lock() FTDAG_TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           // pairs: spinlock
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() FTDAG_RELEASE() {
    // pairs: spinlock — publishes the critical section to the next acquirer.
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

// RAII guard for SpinLock, annotated so clang's thread-safety analysis
// tracks the critical section (std::lock_guard in libstdc++ has no
// annotations and would leave FTDAG_GUARDED_BY fields unprovable).
class FTDAG_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) FTDAG_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() FTDAG_RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace ftdag
