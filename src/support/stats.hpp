#pragma once
// Summary statistics used by the experiment harness: the paper reports
// arithmetic means over 10 runs with standard deviations as error bars
// (Section VI), and Table II reports avg/min/max/std of re-execution counts.

#include <cstddef>
#include <string>
#include <vector>

namespace ftdag {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

// Computes a Summary over the samples; all-zero Summary when empty.
Summary summarize(const std::vector<double>& samples);

// Percentage overhead of `measured` over `baseline`; 0 when baseline == 0.
double overhead_pct(double baseline, double measured);

// Renders "12.34 +- 0.56" style strings for harness tables.
std::string format_mean_std(const Summary& s, int precision = 2);

}  // namespace ftdag
