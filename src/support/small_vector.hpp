#pragma once
// SmallVector<T, N>: vector with inline storage for the first N elements.
//
// Task-graph fan-in/fan-out in the paper's benchmarks is a small constant
// (2-4 for the DP codes, O(blocks) only for a few LU/Cholesky rows), so
// predecessor/successor lists almost never touch the heap.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace ftdag {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N >= 1, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) {
    FTDAG_DASSERT(i < size_, "SmallVector index out of range");
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    FTDAG_DASSERT(i < size_, "SmallVector index out of range");
    return data_[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    FTDAG_DASSERT(size_ > 0, "pop_back on empty SmallVector");
    data_[--size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  void resize(std::size_t n) {
    reserve(n);
    while (size_ < n) emplace_back();
    while (size_ > n) pop_back();
  }

  bool contains(const T& v) const {
    return std::find(begin(), end(), v) != end();
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  bool inline_storage() const {
    return data_ == reinterpret_cast<const T*>(inline_buf_);
  }

  void grow(std::size_t cap) {
    cap = std::max<std::size_t>(cap, N * 2);
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T), align()));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = fresh;
    capacity_ = cap;
  }

  void release_heap() {
    if (!inline_storage()) ::operator delete(data_, align());
  }

  void destroy() {
    clear();
    release_heap();
    data_ = reinterpret_cast<T*>(inline_buf_);
    capacity_ = N;
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.inline_storage()) {
      data_ = reinterpret_cast<T*>(inline_buf_);
      capacity_ = N;
      size_ = 0;
      for (std::size_t i = 0; i < other.size_; ++i)
        emplace_back(std::move(other.data_[i]));
      other.clear();
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = reinterpret_cast<T*>(other.inline_buf_);
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  static std::align_val_t align() { return std::align_val_t{alignof(T)}; }

  alignas(T) unsigned char inline_buf_[N * sizeof(T)];
  T* data_ = reinterpret_cast<T*>(inline_buf_);
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace ftdag
