#include "support/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/version.hpp"

namespace ftdag {
namespace {

[[noreturn]] void flag_value_error(const std::string& name,
                                   const std::string& value,
                                   const char* want) {
  std::fprintf(stderr, "invalid value for --%s: '%s' (want %s)\n", name.c_str(),
               value.c_str(), want);
  std::exit(2);
}

// Full-string integer parse: the whole value must be one in-range decimal
// integer. strtoll's permissive prefix parse ("8x" -> 8, "" -> 0) is how
// --threads=true or a mistyped --reps=1O silently became a bogus config.
std::int64_t parse_int_value(const std::string& name, const std::string& value,
                             const char* want) {
  const char* s = value.c_str();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE)
    flag_value_error(name, value, want);
  return v;
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare flag, boolean style
    }
  }
}

void Cli::note(const std::string& name, std::string def) const {
  seen_[name] = true;
  defaults_.emplace(name, std::move(def));
}

bool Cli::has(const std::string& name) const {
  seen_[name] = true;
  return flags_.count(name) > 0;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  note(name, std::to_string(def));
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return parse_int_value(name, it->second, "an integer");
}

std::int64_t Cli::get_positive_int(const std::string& name,
                                   std::int64_t def) const {
  note(name, std::to_string(def));
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::int64_t v = parse_int_value(name, it->second, "an integer >= 1");
  if (v < 1) flag_value_error(name, it->second, "an integer >= 1");
  return v;
}

std::int64_t Cli::get_nonneg_int(const std::string& name,
                                 std::int64_t def) const {
  note(name, std::to_string(def));
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::int64_t v = parse_int_value(name, it->second, "an integer >= 0");
  if (v < 0) flag_value_error(name, it->second, "an integer >= 0");
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", def);
  note(name, buf);
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE)
    flag_value_error(name, it->second, "a number");
  return v;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  note(name, def.empty() ? "\"\"" : def);
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  note(name, def ? "true" : "false");
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Cli::get_list(const std::string& name,
                                       const std::string& def) const {
  return split_csv(get_string(name, def));
}

std::vector<std::int64_t> Cli::get_positive_int_list(
    const std::string& name, const std::string& def) const {
  const std::string value = get_string(name, def);
  std::vector<std::int64_t> out;
  for (const std::string& item : split_csv(value)) {
    const std::int64_t v =
        parse_int_value(name, item, "a comma-separated list of integers >= 1");
    if (v < 1)
      flag_value_error(name, item, "a comma-separated list of integers >= 1");
    out.push_back(v);
  }
  if (out.empty())
    flag_value_error(name, value, "a comma-separated list of integers >= 1");
  return out;
}

void Cli::check_unknown() const {
  if (flags_.count("help")) print_help();
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!seen_.count(name)) {
      std::fprintf(stderr, "unknown flag: --%s (try --help)\n", name.c_str());
      std::exit(2);
    }
  }
}

void Cli::print_help() const {
  std::printf("%s (ftdag %s)\n",
              program_.empty() ? "ftdag" : program_.c_str(), kVersionString);
  std::printf("\nFlags (--name=value or --name value):\n");
  for (const auto& [name, def] : defaults_)
    std::printf("  --%-24s (default: %s)\n", name.c_str(), def.c_str());
  std::printf("  --%-24s (this message)\n", "help");
  std::exit(0);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace ftdag
