#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ftdag {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) return s;

  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);

  if (s.n > 1) {
    double sq = 0.0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  }
  return s;
}

double overhead_pct(double baseline, double measured) {
  if (baseline == 0.0) return 0.0;
  return (measured - baseline) / baseline * 100.0;
}

std::string format_mean_std(const Summary& s, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f +- %.*f", precision, s.mean, precision,
                s.stddev);
  return buf;
}

}  // namespace ftdag
