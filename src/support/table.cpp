#include "support/table.hpp"

#include <cstdarg>
#include <cstdio>

namespace ftdag {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[256];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace ftdag
