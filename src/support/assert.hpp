#pragma once
// Lightweight always-on assertion support.
//
// FTDAG_ASSERT is active in all build types: the runtime's correctness
// arguments (join-counter accounting, life-number monotonicity, quiescence)
// are cheap to check and expensive to debug when silently violated.
// FTDAG_DASSERT compiles away outside debug builds and is used on hot paths.

#include <cstdio>
#include <cstdlib>

namespace ftdag::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ftdag assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace ftdag::detail

#define FTDAG_ASSERT(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) [[unlikely]]                                        \
      ::ftdag::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifndef NDEBUG
#define FTDAG_DASSERT(expr, msg) FTDAG_ASSERT(expr, msg)
#else
#define FTDAG_DASSERT(expr, msg) \
  do {                           \
  } while (0)
#endif
