#pragma once
// Library version. Follows semver; bumped on public-API changes.

namespace ftdag {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 8;
inline constexpr int kVersionPatch = 0;

inline constexpr const char* kVersionString = "1.8.0";

}  // namespace ftdag
