#pragma once
// xoshiro256** PRNG (Blackman & Vigna) plus SplitMix64 seeding.
//
// Work stealing needs a fast per-worker generator for victim selection, and
// the fault planner needs reproducible streams: the same seed must yield the
// same fault plan across runs so experiments are repeatable.

#include <cstdint>

namespace ftdag {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Also usable directly as a cheap hash finalizer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ftdag
