#pragma once
// DigestVoter: compares the output digests of independent executions of the
// same task.
//
// A task execution is summarized as the list of (block, version, hash)
// triples of its outputs plus the values it staged into app-owned result
// memory (both are pure functions of the inputs, per the task model's
// determinism requirement). Two executions agree iff the summaries are
// identical; anything else is a detected silent data corruption. The hashes
// reuse BlockStore::hash_bytes — the same error-detection code checksum
// mode uses, so a single flipped bit is always visible.

#include <cstdint>

#include "blocks/block_store.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"
#include "support/small_vector.hpp"

namespace ftdag {

struct OutputDigest {
  BlockId block = 0;
  Version version = 0;
  std::uint64_t digest = 0;

  bool operator==(const OutputDigest& o) const {
    return block == o.block && version == o.version && digest == o.digest;
  }
};

using DigestList = SmallVector<OutputDigest, 2>;

class DigestVoter {
 public:
  // Digest lists agree iff identical element-wise. Both sides come from the
  // same deterministic compute body, so the output order is identical by
  // construction and no sorting is needed.
  static bool agree(const DigestList& a, const DigestList& b);

  // Staged result values agree iff identical (slot, value) sequences.
  static bool agree(const ComputeContext::StagedResults& a,
                    const ComputeContext::StagedResults& b);

  // Hashes the *committed* bytes of every output of a task, i.e. what the
  // store actually published (so a bit flipped between commit and the vote
  // is caught too, not just a wrong compute). Returns false when any output
  // is not Valid — the caller treats that exactly like a digest mismatch.
  static bool committed_digests(const BlockStore& store, const OutputList& outs,
                                DigestList& out);
};

}  // namespace ftdag
