#include "replication/replication_policy.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/assert.hpp"

namespace ftdag {

const char* replication_mode_name(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kOff:
      return "off";
    case ReplicationMode::kAll:
      return "all";
    case ReplicationMode::kSample:
      return "sample";
    case ReplicationMode::kCostThreshold:
      return "cost";
  }
  return "?";
}

ReplicationPolicy ReplicationPolicy::parse(const std::string& spec) {
  ReplicationPolicy p;
  if (spec == "off" || spec.empty()) return p;
  if (spec == "all") {
    p.mode = ReplicationMode::kAll;
    return p;
  }
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  if (head == "sample") {
    p.mode = ReplicationMode::kSample;
    char* end = nullptr;
    p.sample_rate = std::strtod(arg.c_str(), &end);
    FTDAG_ASSERT(end != arg.c_str() && *end == '\0' && p.sample_rate >= 0.0 &&
                     p.sample_rate <= 1.0,
                 "--replicate=sample:<p> needs p in [0,1]");
    return p;
  }
  if (head == "cost") {
    p.mode = ReplicationMode::kCostThreshold;
    char* end = nullptr;
    p.min_output_bytes = std::strtoull(arg.c_str(), &end, 10);
    FTDAG_ASSERT(end != arg.c_str() && *end == '\0',
                 "--replicate=cost:<bytes> needs an integer byte count");
    return p;
  }
  FTDAG_ASSERT(false,
               "unknown replication policy (want off|all|sample:<p>|cost:<bytes>)");
  return p;
}

std::string ReplicationPolicy::to_string() const {
  char buf[64];
  switch (mode) {
    case ReplicationMode::kOff:
    case ReplicationMode::kAll:
      return replication_mode_name(mode);
    case ReplicationMode::kSample:
      std::snprintf(buf, sizeof(buf), "sample:%g", sample_rate);
      return buf;
    case ReplicationMode::kCostThreshold:
      std::snprintf(buf, sizeof(buf), "cost:%llu",
                    static_cast<unsigned long long>(min_output_bytes));
      return buf;
  }
  return "?";
}

}  // namespace ftdag
