#pragma once
// ShadowContext: runs a task's compute body without side effects on the
// BlockStore — the replica half of dual-execution digest voting.
//
// The replica must observe exactly the inputs the primary will observe and
// produce bytes the voter can hash, while never publishing, locking, or
// consuming anything:
//  - reads go to the store like any other read (recorded, re-validated in
//    finalize(), throwing the usual DataBlockFault on displaced inputs —
//    which routes the replica run into the ordinary recovery path);
//  - writes land in ShadowArena scratch buffers keyed by (block, version);
//  - update() NEVER takes the in-place path: the input version is read
//    (not consumed, not locked) and its bytes are copied into the scratch
//    output buffer first, reproducing the aliased-update semantics where
//    unwritten cells retain the input's values;
//  - finalize() re-validates reads only — no commits, no staged-result
//    stores. The staged values stay queued for the voter to compare.
//
// The digest contract assumes what determinism (Theorem 1's precondition)
// already requires of compute bodies: every byte of an output block is a
// pure function of the inputs — fully written, or (via update) inherited
// from the input version.

#include <cstddef>

#include "graph/compute_context.hpp"
#include "replication/digest_voter.hpp"
#include "replication/shadow_arena.hpp"

namespace ftdag {

class ShadowContext final : public ComputeContext {
 public:
  ShadowContext(BlockStore& store, TaskKey key, ShadowArena& arena)
      : ComputeContext(store, key), arena_(arena) {}

  ~ShadowContext() override {
    for (const ShadowOutput& o : outputs_) arena_.release(o.data, o.bytes);
  }

  // Re-validates recorded reads (throws DataBlockFault if an input went bad
  // mid-replica); publishes and applies nothing.
  void finalize() override { revalidate_reads(); }

  // Digest of every scratch output buffer, in production order.
  DigestList output_digests() const {
    DigestList out;
    for (const ShadowOutput& o : outputs_)
      out.push_back({o.block, o.version,
                     BlockStore::hash_bytes(o.data, o.bytes)});
    return out;
  }

  std::size_t outputs_produced() const { return outputs_.size(); }

 protected:
  void* raw_write(BlockId block, Version version) override {
    return stage_shadow_output(block, version);
  }

  RawUpdate raw_update(BlockId block, Version from, Version to) override {
    const void* in = raw_read(block, from);
    std::byte* out = stage_shadow_output(block, to);
    // Aliased-update semantics without the aliasing: cells the body leaves
    // untouched must hold the input version's bytes, as they would when the
    // primary updates the slot in place.
    __builtin_memcpy(out, in, store_.block_bytes(block));
    return {in, out};
  }

 private:
  struct ShadowOutput {
    BlockId block;
    Version version;
    std::byte* data;
    std::size_t bytes;
  };

  std::byte* stage_shadow_output(BlockId block, Version version) {
    const std::size_t bytes = store_.block_bytes(block);
    std::byte* buf = arena_.acquire(bytes);
    outputs_.push_back({block, version, buf, bytes});
    return buf;
  }

  ShadowArena& arena_;
  SmallVector<ShadowOutput, 2> outputs_;
};

}  // namespace ftdag
