#pragma once
// ShadowArena: recycled scratch buffers for replica runs.
//
// A ShadowContext needs one private buffer per output block so the replica
// compute never touches BlockStore slots. Buffers are recycled through a
// per-size free list because replica runs are as frequent as computes under
// --replicate=all and a malloc/free pair per output would dominate small
// tasks. The fault-tolerant executor keeps one arena per worker thread, so
// the lock below is effectively uncontended; it exists only for the
// external-thread fallback and keeps the arena safe under any caller.

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "check/sync_shim.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"

namespace ftdag {

class ShadowArena {
 public:
  ShadowArena() = default;
  ShadowArena(const ShadowArena&) = delete;
  ShadowArena& operator=(const ShadowArena&) = delete;

  std::byte* acquire(std::size_t bytes) {
    {
      CheckMutexGuard guard(lock_);
      auto it = free_.find(bytes);
      if (it != free_.end() && !it->second.empty()) {
        std::byte* p = it->second.back().release();
        it->second.pop_back();
        return p;
      }
      ++allocations_;
    }
    return new std::byte[bytes];
  }

  void release(std::byte* p, std::size_t bytes) {
    CheckMutexGuard guard(lock_);
    free_[bytes].emplace_back(p);
  }

  // Buffers that had to be allocated fresh (not served from the free list);
  // steady-state replication should plateau at the high-water buffer count.
  std::size_t allocations() const {
    CheckMutexGuard guard(lock_);
    return allocations_;
  }

 private:
  mutable CheckMutex lock_;
  std::map<std::size_t, std::vector<std::unique_ptr<std::byte[]>>> free_
      FTDAG_GUARDED_BY(lock_);
  std::size_t allocations_ FTDAG_GUARDED_BY(lock_) = 0;
};

}  // namespace ftdag
