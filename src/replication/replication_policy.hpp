#pragma once
// ReplicationPolicy: per-task decision whether to re-execute the compute
// body for silent-data-corruption detection by digest voting.
//
// The paper assumes soft errors are *detected* (Section II: hardware or
// software error-detection codes); the selective-replication literature
// (Reitz & Fohry; Nather, Fohry & Reitz — see PAPERS.md) supplies the
// standard software alternative when no such code exists: run each task
// twice, hash the outputs, and treat a digest mismatch as a detected fault.
// Replicating everything doubles compute, so the policy spectrum mirrors
// those papers' selective schemes:
//
//   off              no replication (the seed executor's fast path)
//   all              every task with outputs runs twice (full DMR)
//   sample(p)        a deterministic, key-hashed fraction p of tasks
//   cost(bytes)      only tasks whose total output footprint is at least
//                    `bytes` (big outputs are the expensive ones to lose:
//                    their recovery chains re-execute the most work)
//
// Decisions are pure functions of (key, output bytes), so a recovered
// incarnation of a task makes the same choice as its first run.

#include <cstdint>
#include <string>

#include "graph/task_key.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

enum class ReplicationMode : std::uint8_t {
  kOff = 0,
  kAll,
  kSample,
  kCostThreshold,
};

const char* replication_mode_name(ReplicationMode mode);

struct ReplicationPolicy {
  ReplicationMode mode = ReplicationMode::kOff;
  double sample_rate = 0.0;            // kSample: fraction of tasks in [0,1]
  std::uint64_t min_output_bytes = 0;  // kCostThreshold
  std::uint64_t seed = 0x5DEECE66DULL; // salts the kSample key hash

  bool enabled() const { return mode != ReplicationMode::kOff; }

  // Should this task run a verification replica? `output_bytes` is the sum
  // of the task's output block sizes (0 for pure control tasks, which are
  // never replicated: there is nothing to vote on).
  bool should_replicate(TaskKey key, std::uint64_t output_bytes) const {
    if (output_bytes == 0) return false;
    switch (mode) {
      case ReplicationMode::kOff:
        return false;
      case ReplicationMode::kAll:
        return true;
      case ReplicationMode::kSample:
        // Deterministic coin: the top 53 bits of a salted key hash give a
        // uniform double in [0, 1).
        return static_cast<double>(
                   mix64(static_cast<std::uint64_t>(key) ^ seed) >> 11) *
                   0x1.0p-53 <
               sample_rate;
      case ReplicationMode::kCostThreshold:
        return output_bytes >= min_output_bytes;
    }
    return false;
  }

  // Parses "off" | "all" | "sample:<p>" | "cost:<bytes>" (the --replicate
  // CLI syntax). Aborts on malformed specs so scripts fail loudly.
  static ReplicationPolicy parse(const std::string& spec);

  // Inverse of parse(), for report headers.
  std::string to_string() const;
};

}  // namespace ftdag
