#include "replication/digest_voter.hpp"

namespace ftdag {

bool DigestVoter::agree(const DigestList& a, const DigestList& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

bool DigestVoter::agree(const ComputeContext::StagedResults& a,
                        const ComputeContext::StagedResults& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].first != b[i].first || a[i].second != b[i].second) return false;
  return true;
}

bool DigestVoter::committed_digests(const BlockStore& store,
                                    const OutputList& outs, DigestList& out) {
  out.clear();
  for (const ProducedVersion& pv : outs) {
    std::uint64_t h = 0;
    if (!store.content_hash(pv.block, pv.version, h)) return false;
    out.push_back({pv.block, pv.version, h});
  }
  return true;
}

}  // namespace ftdag
