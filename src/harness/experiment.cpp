#include "harness/experiment.hpp"

#include <cstdio>

#include "support/assert.hpp"

namespace ftdag {

RepeatedRuns run_executor(TaskGraphProblem& problem, WorkStealingPool& pool,
                          const RunSpec& spec) {
  Runtime runtime(pool);
  JobHandle job = runtime.run_sync(problem, spec);
  const JobState state = job->state();
  if (state != JobState::kCompleted) {
    // Preserve the historical abort-with-message contract of the harness.
    std::fprintf(stderr, "ftdag run_executor: job %s: %s\n",
                 job_state_name(state), job->error().c_str());
    FTDAG_ASSERT(state == JobState::kCompleted,
                 "run_executor job did not complete");
  }
  return job->runs();
}

RepeatedRuns run_baseline(TaskGraphProblem& problem, WorkStealingPool& pool,
                          int reps) {
  RunSpec spec;
  spec.kind = ExecutorKind::kBaseline;
  spec.reps = reps;
  return run_executor(problem, pool, spec);
}

RepeatedRuns run_ft(TaskGraphProblem& problem, WorkStealingPool& pool,
                    int reps, FaultInjector* injector,
                    const ExecutorOptions& options) {
  RunSpec spec;
  spec.kind = ExecutorKind::kFaultTolerant;
  spec.reps = reps;
  spec.injector = injector;
  spec.ft = options;
  return run_executor(problem, pool, spec);
}

}  // namespace ftdag
