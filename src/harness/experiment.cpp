#include "harness/experiment.hpp"

#include "support/assert.hpp"

namespace ftdag {

const char* executor_kind_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kBaseline:
      return "baseline";
    case ExecutorKind::kFaultTolerant:
      return "ft";
    case ExecutorKind::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

Summary RepeatedRuns::reexecution_summary() const {
  std::vector<double> counts;
  counts.reserve(reports.size());
  for (const ExecReport& r : reports)
    counts.push_back(static_cast<double>(r.re_executed));
  return summarize(counts);
}

namespace {

void validate(TaskGraphProblem& problem) {
  const std::uint64_t got = problem.result_checksum();
  const std::uint64_t want = problem.reference_checksum();
  FTDAG_ASSERT(got == want,
               "result checksum does not match the sequential reference");
}

ExecReport run_once(TaskGraphProblem& problem, WorkStealingPool& pool,
                    const RunSpec& spec) {
  switch (spec.kind) {
    case ExecutorKind::kSerial: {
      SerialExecutor exec;
      return exec.execute(problem).exec;
    }
    case ExecutorKind::kBaseline: {
      NabbitExecutor exec;
      return exec.execute(problem, pool);
    }
    case ExecutorKind::kFaultTolerant: {
      FaultTolerantExecutor exec;
      ExecutorOptions options = spec.ft;
      if (spec.durability.enabled()) options.durability = spec.durability;
      return exec.execute(problem, pool, spec.injector, spec.trace, options);
    }
    case ExecutorKind::kCheckpoint: {
      CheckpointRestartExecutor exec;
      return exec.execute(problem, pool, spec.injector, spec.checkpoint);
    }
  }
  FTDAG_ASSERT(false, "unknown executor kind");
  return {};
}

}  // namespace

RepeatedRuns run_executor(TaskGraphProblem& problem, WorkStealingPool& pool,
                          const RunSpec& spec) {
  FTDAG_ASSERT(spec.injector == nullptr ||
                   spec.kind == ExecutorKind::kFaultTolerant ||
                   spec.kind == ExecutorKind::kCheckpoint,
               "fault injection requires a fault-tolerant executor");
  RepeatedRuns out;
  for (int r = 0; r < spec.reps; ++r) {
    problem.reset_data();
    if (spec.injector != nullptr) spec.injector->reset();
    ExecReport report = run_once(problem, pool, spec);
    if (spec.validate) validate(problem);
    out.seconds.push_back(report.seconds);
    out.reports.push_back(report);
  }
  return out;
}

RepeatedRuns run_baseline(TaskGraphProblem& problem, WorkStealingPool& pool,
                          int reps) {
  RunSpec spec;
  spec.kind = ExecutorKind::kBaseline;
  spec.reps = reps;
  return run_executor(problem, pool, spec);
}

RepeatedRuns run_ft(TaskGraphProblem& problem, WorkStealingPool& pool,
                    int reps, FaultInjector* injector,
                    const ExecutorOptions& options) {
  RunSpec spec;
  spec.kind = ExecutorKind::kFaultTolerant;
  spec.reps = reps;
  spec.injector = injector;
  spec.ft = options;
  return run_executor(problem, pool, spec);
}

}  // namespace ftdag
