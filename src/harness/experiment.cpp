#include "harness/experiment.hpp"

#include "support/assert.hpp"

namespace ftdag {

Summary RepeatedRuns::reexecution_summary() const {
  std::vector<double> counts;
  counts.reserve(reports.size());
  for (const ExecReport& r : reports)
    counts.push_back(static_cast<double>(r.re_executed));
  return summarize(counts);
}

namespace {

void validate(TaskGraphProblem& problem) {
  const std::uint64_t got = problem.result_checksum();
  const std::uint64_t want = problem.reference_checksum();
  FTDAG_ASSERT(got == want,
               "result checksum does not match the sequential reference");
}

}  // namespace

RepeatedRuns run_baseline(TaskGraphProblem& problem, WorkStealingPool& pool,
                          int reps) {
  RepeatedRuns out;
  NabbitExecutor exec;
  for (int r = 0; r < reps; ++r) {
    problem.reset_data();
    ExecReport report = exec.execute(problem, pool);
    validate(problem);
    out.seconds.push_back(report.seconds);
    out.reports.push_back(report);
  }
  return out;
}

RepeatedRuns run_ft(TaskGraphProblem& problem, WorkStealingPool& pool,
                    int reps, FaultInjector* injector,
                    const ExecutorOptions& options) {
  RepeatedRuns out;
  FaultTolerantExecutor exec;
  for (int r = 0; r < reps; ++r) {
    problem.reset_data();
    if (injector != nullptr) injector->reset();
    ExecReport report = exec.execute(problem, pool, injector, nullptr, options);
    validate(problem);
    out.seconds.push_back(report.seconds);
    out.reports.push_back(report);
  }
  return out;
}

}  // namespace ftdag
