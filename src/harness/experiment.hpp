#pragma once
// Experiment harness: repeated validated runs, the measurement protocol of
// the paper's Section VI (10 repetitions, arithmetic mean, standard
// deviation as error bars; every run's result checked against the
// sequential reference — the paper's Theorem 1 made executable).
//
// Since the multi-job runtime landed, these entry points are thin wrappers:
// each call scopes an ftdag::Runtime over the caller's pool and runs the
// RunSpec synchronously through it (Runtime::run_sync — same admission
// validation and repetition loop as submitted jobs, executed on the calling
// thread with no dispatcher hand-off). ExecutorKind / RunSpec /
// RepeatedRuns themselves live in runtime/run_spec.hpp; long-lived
// multi-job service use goes through runtime/runtime.hpp directly.

#include "graph/task_graph_problem.hpp"
#include "runtime/run_spec.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"

namespace ftdag {

// Runs `spec.reps` repetitions of the selected executor, resetting problem
// data and the injector before each and validating the result checksum
// after each (with faults the check is exactly the paper's
// same-result-with-and-without-faults claim). Aborts on an invalid spec or
// a failed repetition (checksum mismatch), matching the historical
// fail-fast contract; the Runtime submit() path reports the same conditions
// as kRejected/kFailed instead.
RepeatedRuns run_executor(TaskGraphProblem& problem, WorkStealingPool& pool,
                          const RunSpec& spec);

// Runs the baseline (non-fault-tolerant) executor `reps` times; validates
// the result checksum after every run. No injector: the baseline cannot
// recover.
RepeatedRuns run_baseline(TaskGraphProblem& problem, WorkStealingPool& pool,
                          int reps);

// Runs the fault-tolerant executor `reps` times, optionally under fault
// injection; validates the result checksum after every run. `options`
// passes through executor configuration, notably the replication policy
// for dual-execution digest voting.
RepeatedRuns run_ft(TaskGraphProblem& problem, WorkStealingPool& pool,
                    int reps, FaultInjector* injector = nullptr,
                    const ExecutorOptions& options = {});

}  // namespace ftdag
