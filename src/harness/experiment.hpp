#pragma once
// Experiment harness: repeated validated runs, the measurement protocol of
// the paper's Section VI (10 repetitions, arithmetic mean, standard
// deviation as error bars; every run's result checked against the
// sequential reference — the paper's Theorem 1 made executable).

#include <vector>

#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "nabbit/executor.hpp"
#include "runtime/scheduler.hpp"
#include "support/stats.hpp"

namespace ftdag {

struct RepeatedRuns {
  std::vector<double> seconds;
  std::vector<ExecReport> reports;

  Summary time_summary() const { return summarize(seconds); }
  Summary reexecution_summary() const;
  double mean_seconds() const { return time_summary().mean; }
};

// Runs the baseline (non-fault-tolerant) executor `reps` times; validates
// the result checksum after every run. No injector: the baseline cannot
// recover.
RepeatedRuns run_baseline(TaskGraphProblem& problem, WorkStealingPool& pool,
                          int reps);

// Runs the fault-tolerant executor `reps` times, optionally under fault
// injection; validates the result checksum after every run (with faults the
// check is exactly the paper's same-result-with-and-without-faults claim).
// `options` passes through executor configuration, notably the replication
// policy for dual-execution digest voting.
RepeatedRuns run_ft(TaskGraphProblem& problem, WorkStealingPool& pool,
                    int reps, FaultInjector* injector = nullptr,
                    const ExecutorOptions& options = {});

}  // namespace ftdag
