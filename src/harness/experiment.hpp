#pragma once
// Experiment harness: repeated validated runs, the measurement protocol of
// the paper's Section VI (10 repetitions, arithmetic mean, standard
// deviation as error bars; every run's result checked against the
// sequential reference — the paper's Theorem 1 made executable).
//
// `run_executor` is the single driver shared by benches and tests: pick an
// executor kind, pass its options through RunSpec, and get back uniform
// ExecReports. The older run_baseline/run_ft entry points are thin wrappers
// kept for their many call sites.

#include <vector>

#include "core/checkpoint_executor.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "nabbit/executor.hpp"
#include "nabbit/serial_executor.hpp"
#include "runtime/scheduler.hpp"
#include "support/stats.hpp"

namespace ftdag {

// The four engine instantiations (src/engine/traversal_engine.hpp) behind
// one switch. kSerial runs the inline-backend oracle; kBaseline the NABBIT
// walk with all policies compiled out; kFaultTolerant the selective-recovery
// + detection composition; kCheckpoint the BSP collective comparator.
enum class ExecutorKind {
  kSerial,
  kBaseline,
  kFaultTolerant,
  kCheckpoint,
};

const char* executor_kind_name(ExecutorKind kind);

struct RunSpec {
  ExecutorKind kind = ExecutorKind::kBaseline;
  int reps = 1;
  // Fault injection is honoured by the fault-tolerant and checkpoint
  // executors only; passing an injector to kSerial/kBaseline is an error
  // (they cannot recover).
  FaultInjector* injector = nullptr;
  ExecutorOptions ft;            // kFaultTolerant knobs (replication, watchdog)
  CheckpointOptions checkpoint;  // kCheckpoint knobs (interval, snapshots)
  ExecutionTrace* trace = nullptr;  // kFaultTolerant only
  bool validate = true;  // checksum against the sequential reference per run

  // Durable checkpoint/restart (kFaultTolerant only): when enabled
  // (non-empty dir) this overrides ft.durability, so sweeps can point runs
  // at a persist dir without rebuilding the whole options struct. Note that
  // with resume on and reps > 1, every rep after the first restores the
  // finished state and skips all tasks — crash/restart experiments want
  // reps = 1 per process.
  persist::DurabilityOptions durability;
};

struct RepeatedRuns {
  std::vector<double> seconds;
  std::vector<ExecReport> reports;

  Summary time_summary() const { return summarize(seconds); }
  Summary reexecution_summary() const;
  double mean_seconds() const { return time_summary().mean; }
};

// Runs `spec.reps` repetitions of the selected executor, resetting problem
// data and the injector before each and validating the result checksum
// after each (with faults the check is exactly the paper's
// same-result-with-and-without-faults claim).
RepeatedRuns run_executor(TaskGraphProblem& problem, WorkStealingPool& pool,
                          const RunSpec& spec);

// Runs the baseline (non-fault-tolerant) executor `reps` times; validates
// the result checksum after every run. No injector: the baseline cannot
// recover.
RepeatedRuns run_baseline(TaskGraphProblem& problem, WorkStealingPool& pool,
                          int reps);

// Runs the fault-tolerant executor `reps` times, optionally under fault
// injection; validates the result checksum after every run. `options`
// passes through executor configuration, notably the replication policy
// for dual-execution digest voting.
RepeatedRuns run_ft(TaskGraphProblem& problem, WorkStealingPool& pool,
                    int reps, FaultInjector* injector = nullptr,
                    const ExecutorOptions& options = {});

}  // namespace ftdag
