#include "check/sync_shim.hpp"
#include "blocks/block_store.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {

BlockId BlockStore::add_block(std::size_t bytes, Version num_versions) {
  FTDAG_ASSERT(num_versions >= 1, "block needs at least one version");
  Block b;
  b.bytes = bytes;
  b.num_versions = num_versions;
  b.slots = (retention_ == 0 || retention_ >= num_versions) ? num_versions
                                                            : retention_;
  b.storage = std::make_unique<std::byte[]>(bytes * b.slots);
  b.producers.assign(num_versions, TaskKey{-1});
  b.states = std::make_unique<Atomic<VersionState>[]>(num_versions);
  for (Version v = 0; v < num_versions; ++v)
    b.states[v].store(VersionState::kAbsent, std::memory_order_relaxed);
  b.slot_locks = std::make_unique<CheckMutex[]>(b.slots);
  b.sums = std::make_unique<Atomic<std::uint64_t>[]>(num_versions);
  for (Version v = 0; v < num_versions; ++v)
    b.sums[v].store(0, std::memory_order_relaxed);
  storage_bytes_ += bytes * b.slots;
  blocks_.push_back(std::move(b));
  return static_cast<BlockId>(blocks_.size() - 1);
}

void BlockStore::set_producer(BlockId block, Version version,
                              TaskKey producer) {
  Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  b.producers[version] = producer;
}

const BlockStore::Block& BlockStore::block_ref(BlockId id) const {
  FTDAG_ASSERT(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

BlockStore::Block& BlockStore::block_ref(BlockId id) {
  FTDAG_ASSERT(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

void BlockStore::displace_slot(Block& b, Version slot, Version keep) {
  for (Version v = slot; v < b.num_versions; v += b.slots) {
    if (v == keep) {
      // The version being written: downgrade Valid -> Absent so stale
      // readers fail re-validation while the rewrite is in progress.
      VersionState expected = VersionState::kValid;
      b.states[v].compare_exchange_strong(expected, VersionState::kAbsent,
                                          std::memory_order_acq_rel);  // pairs: block-state
      continue;
    }
    VersionState cur = b.states[v].load(std::memory_order_acquire);  // pairs: block-state
    while (cur == VersionState::kValid || cur == VersionState::kCorrupted) {
      if (b.states[v].compare_exchange_weak(cur, VersionState::kOverwritten,
                                            std::memory_order_acq_rel))  // pairs: block-state
        break;
    }
  }
}

// Write-ticket protocol: the slot lock acquired here is released by
// commit()/abort() on the same ticket, possibly on another call path. The
// lock identity (slot_locks[version % slots]) is runtime data, so the
// acquire/release pairing cannot be expressed to the thread-safety analysis;
// the pairing is instead enforced by WriteTicket::active asserts and
// exercised by the block-store and conformance test suites.
WriteTicket BlockStore::begin_write(BlockId block, Version version)
    FTDAG_NO_THREAD_SAFETY_ANALYSIS {
  Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  const Version slot = version % b.slots;
  b.slot_locks[slot].lock();
  displace_slot(b, slot, version);
  return WriteTicket{
      block, version,
      b.storage.get() + static_cast<std::size_t>(slot) * b.bytes, true};
}

// See begin_write: the slot lock outlives this function by design.
WriteTicket BlockStore::begin_update(BlockId block, Version from, Version to)
    FTDAG_NO_THREAD_SAFETY_ANALYSIS {
  Block& b = block_ref(block);
  FTDAG_ASSERT(from < b.num_versions && to < b.num_versions,
               "version out of range");
  const Version slot = to % b.slots;
  FTDAG_ASSERT(from % b.slots == slot,
               "begin_update requires versions sharing a slot");
  b.slot_locks[slot].lock();
  // Validate the input under the lock: a chain re-execution that regenerated
  // `from` has fully committed before we got the lock, and nothing can touch
  // the slot while we hold it.
  const VersionState st = b.states[from].load(std::memory_order_acquire);  // pairs: block-state
  if (st != VersionState::kValid) {
    b.slot_locks[slot].unlock();
    throw_for(b, block, from, st);
  }
  if (checksums_ && !verify_checksum(b, from)) {
    b.slot_locks[slot].unlock();
    throw_for(b, block, from, VersionState::kCorrupted);
  }
  // Consume `from`: its bytes stay intact until the caller overwrites them,
  // but other readers must now fail fast and trigger producer recovery.
  b.states[from].store(VersionState::kOverwritten, std::memory_order_release);  // pairs: block-state
  displace_slot(b, slot, to);
  return WriteTicket{
      block, to, b.storage.get() + static_cast<std::size_t>(slot) * b.bytes,
      true};
}

bool BlockStore::same_slot(BlockId block, Version a, Version b_) const {
  const Block& b = block_ref(block);
  return a % b.slots == b_ % b.slots;
}

// Releases the slot lock taken by begin_write/begin_update (see there).
void BlockStore::commit(WriteTicket& ticket) FTDAG_NO_THREAD_SAFETY_ANALYSIS {
  FTDAG_ASSERT(ticket.active, "commit of inactive ticket");
  Block& b = block_ref(ticket.block);
  if (checksums_)
    b.sums[ticket.version].store(
        hash_bytes(static_cast<const std::byte*>(ticket.data), b.bytes),
        std::memory_order_release);  // pairs: block-sum
  b.states[ticket.version].store(VersionState::kValid,
                                 std::memory_order_release);  // pairs: block-state
  b.slot_locks[ticket.version % b.slots].unlock();
  ticket.active = false;
}

// Releases the slot lock taken by begin_write/begin_update (see there).
void BlockStore::abort(WriteTicket& ticket) FTDAG_NO_THREAD_SAFETY_ANALYSIS {
  FTDAG_ASSERT(ticket.active, "abort of inactive ticket");
  Block& b = block_ref(ticket.block);
  b.slot_locks[ticket.version % b.slots].unlock();
  ticket.active = false;
}

const void* BlockStore::read(BlockId block, Version version) const {
  const Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  const VersionState st = b.states[version].load(std::memory_order_acquire);  // pairs: block-state
  if (st != VersionState::kValid) [[unlikely]]
    throw_for(b, block, version, st);
  if (checksums_ && !verify_checksum(b, version)) [[unlikely]]
    throw_for(b, block, version, VersionState::kCorrupted);
  const Version slot = version % b.slots;
  return b.storage.get() + static_cast<std::size_t>(slot) * b.bytes;
}

void BlockStore::revalidate(BlockId block, Version version) const {
  const Block& b = block_ref(block);
  const VersionState st = b.states[version].load(std::memory_order_acquire);  // pairs: block-state
  if (st != VersionState::kValid) [[unlikely]]
    throw_for(b, block, version, st);
  if (checksums_ && !verify_checksum(b, version)) [[unlikely]]
    throw_for(b, block, version, VersionState::kCorrupted);
}

std::uint64_t BlockStore::hash_bytes(const std::byte* data, std::size_t n) {
  // FNV-1a over 8-byte chunks with a mix64 finalizer: fast and sensitive to
  // any single flipped bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word = 0;
    __builtin_memcpy(&word, data + i, 8);
    h = (h ^ word) * 0x100000001b3ULL;
  }
  for (; i < n; ++i)
    h = (h ^ static_cast<std::uint64_t>(data[i])) * 0x100000001b3ULL;
  return mix64(h);
}

bool BlockStore::verify_checksum(const Block& b, Version v) const {
  const Version slot = v % b.slots;
  const std::uint64_t want = b.sums[v].load(std::memory_order_acquire);  // pairs: block-sum
  const std::uint64_t got = hash_bytes(
      b.storage.get() + static_cast<std::size_t>(slot) * b.bytes, b.bytes);
  if (got == want) return true;
  // Detection event: make the error sticky so traversal-side checks (which
  // look only at states) observe exactly what this reader observed.
  VersionState expected = VersionState::kValid;
  b.states[v].compare_exchange_strong(expected, VersionState::kCorrupted,
                                      std::memory_order_acq_rel);  // pairs: block-state
  return false;
}

bool BlockStore::flip_bit(BlockId block, Version version, std::size_t bit) {
  Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  if (b.states[version].load(std::memory_order_acquire) !=  // pairs: block-state
      VersionState::kValid)
    return false;
  const Version slot = version % b.slots;
  std::byte* base = b.storage.get() + static_cast<std::size_t>(slot) * b.bytes;
  const std::size_t which = (bit / 8) % b.bytes;
  base[which] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
  return true;
}

bool BlockStore::content_hash(BlockId block, Version version,
                              std::uint64_t& out) const {
  const Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  if (b.states[version].load(std::memory_order_acquire) !=  // pairs: block-state
      VersionState::kValid)
    return false;
  const Version slot = version % b.slots;
  out = hash_bytes(b.storage.get() + static_cast<std::size_t>(slot) * b.bytes,
                   b.bytes);
  return true;
}

void BlockStore::throw_for(const Block& b, BlockId id, Version v,
                           VersionState st) {
  BlockFaultReason reason;
  switch (st) {
    case VersionState::kCorrupted:
      reason = BlockFaultReason::kCorrupted;
      break;
    case VersionState::kOverwritten:
      reason = BlockFaultReason::kOverwritten;
      break;
    default:
      reason = BlockFaultReason::kMissing;
      break;
  }
  throw DataBlockFault(b.producers[v], id, v, reason);
}

TaskKey BlockStore::producer(BlockId block, Version version) const {
  const Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  return b.producers[version];
}

VersionState BlockStore::state(BlockId block, Version version) const {
  const Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  return b.states[version].load(std::memory_order_acquire);  // pairs: block-state
}

Version BlockStore::num_versions(BlockId block) const {
  return block_ref(block).num_versions;
}

Version BlockStore::slot_count(BlockId block) const {
  return block_ref(block).slots;
}

std::size_t BlockStore::block_bytes(BlockId block) const {
  return block_ref(block).bytes;
}

void BlockStore::corrupt(BlockId block, Version version) {
  Block& b = block_ref(block);
  FTDAG_ASSERT(version < b.num_versions, "version out of range");
  VersionState expected = VersionState::kValid;
  b.states[version].compare_exchange_strong(expected, VersionState::kCorrupted,
                                            std::memory_order_acq_rel);  // pairs: block-state
}

void BlockStore::reset_states() {
  for (Block& b : blocks_)
    for (Version v = 0; v < b.num_versions; ++v)
      b.states[v].store(VersionState::kAbsent, std::memory_order_relaxed);
}

void BlockStore::clear() {
  blocks_.clear();
  storage_bytes_ = 0;
}

BlockStore::Snapshot BlockStore::snapshot() const {
  Snapshot snap;
  snap.bytes.reserve(storage_bytes_);
  for (const Block& b : blocks_) {
    snap.bytes.insert(snap.bytes.end(), b.storage.get(),
                      b.storage.get() + b.bytes * b.slots);
    for (Version v = 0; v < b.num_versions; ++v) {
      snap.states.push_back(b.states[v].load(std::memory_order_acquire));  // pairs: block-state
      snap.sums.push_back(b.sums[v].load(std::memory_order_acquire));  // pairs: block-sum
    }
  }
  return snap;
}

void BlockStore::restore(const Snapshot& snap) {
  std::size_t byte_at = 0, state_at = 0;
  for (Block& b : blocks_) {
    const std::size_t n = b.bytes * b.slots;
    FTDAG_ASSERT(byte_at + n <= snap.bytes.size(),
                 "snapshot does not match block layout");
    std::copy(snap.bytes.begin() + static_cast<std::ptrdiff_t>(byte_at),
              snap.bytes.begin() + static_cast<std::ptrdiff_t>(byte_at + n),
              b.storage.get());
    byte_at += n;
    for (Version v = 0; v < b.num_versions; ++v) {
      b.states[v].store(snap.states[state_at], std::memory_order_release);  // pairs: block-state
      b.sums[v].store(snap.sums[state_at], std::memory_order_release);  // pairs: block-sum
      ++state_at;
    }
  }
  FTDAG_ASSERT(byte_at == snap.bytes.size() &&
                   state_at == snap.states.size(),
               "snapshot does not match block layout");
}

}  // namespace ftdag
