#pragma once
// Basic identifiers for versioned data blocks.

#include <cstdint>

namespace ftdag {

using BlockId = std::uint32_t;
using Version = std::uint32_t;

inline constexpr Version kNoVersion = ~Version{0};

}  // namespace ftdag
