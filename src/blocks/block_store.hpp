#pragma once
// BlockStore: versioned data blocks with configurable retention.
//
// The paper's task model allows *updates* to data blocks: each task produces
// one or more (block, version) outputs, and with the memory-reuse strategy
// (Section VI) the storage of version v is recycled for version v + r, where
// r is the retention depth:
//   retention 1   -> full reuse (LU, Cholesky, SW): one slot per block
//   retention 2   -> Floyd-Warshall's two-version scheme (doubles memory to
//                    damp cascading recomputation)
//   retention 0   -> single assignment (LCS): every version kept
//
// Every (block, version) carries a sticky state:
//   Absent      never produced, reset, or currently being (re)written
//   Valid       produced, readable
//   Corrupted   fault injector hit it; reads throw (detected soft error)
//   Overwritten storage reused by a different version; reads throw, and the
//               producer must be re-executed to regenerate it (the paper's
//               re-execution chains, Fig 7b)
//
// Reads of non-Valid versions throw DataBlockFault carrying the *producer*
// task key, which is how the fault-tolerant executor attributes the failure
// to the task that must be recovered.
//
// Writer protocol. Failure recovery can re-execute the producer of an *old*
// version while unrelated work is in flight, so writes are bracketed:
// begin_write/begin_update take a per-slot spin lock (serializing writers of
// versions that share storage), displace every other version mapped to the
// slot, and downgrade the target version itself to Absent; commit publishes
// Valid and releases the lock. Readers never lock: they validate the state
// on read and the executors re-validate every recorded read after the
// compute body, so a displaced read can only ever discard a result, never
// publish a torn one.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "check/sync_shim.hpp"
#include "blocks/block_types.hpp"
#include "fault/fault.hpp"
#include "graph/task_key.hpp"
#include "support/spin_lock.hpp"
#include "support/thread_safety.hpp"

namespace ftdag {

enum class VersionState : std::uint8_t {
  kAbsent = 0,
  kValid = 1,
  kCorrupted = 2,
  kOverwritten = 3,
};

// Handle for an in-progress write; returned by begin_write/begin_update and
// resolved by commit or abort (which release the slot lock).
struct WriteTicket {
  BlockId block = 0;
  Version version = kNoVersion;
  void* data = nullptr;
  bool active = false;
};

class BlockStore {
 public:
  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  // --- setup (single-threaded, before execution) ---------------------------

  // Retention depth applied to blocks added afterwards. 0 keeps all versions.
  void set_retention(Version keep) { retention_ = keep; }
  Version retention() const { return retention_; }

  // Declares a block of `bytes` bytes that will reach `num_versions`
  // versions over the graph's lifetime. Returns its id.
  BlockId add_block(std::size_t bytes, Version num_versions);

  // Records which task produces (block, version); required for fault
  // attribution on reads.
  void set_producer(BlockId block, Version version, TaskKey producer);

  // --- execution-time access ------------------------------------------------

  // Starts writing `version`: locks its slot, displaces every other version
  // sharing the slot, and marks the version itself Absent until commit.
  WriteTicket begin_write(BlockId block, Version version);

  // Starts an in-place update reading `from` and producing `to` *in the same
  // slot* (read-modify-write under retention 1). Validates `from` under the
  // slot lock (throws DataBlockFault if it is not Valid), then marks it
  // Overwritten — the caller reads the bytes through the returned ticket
  // while exclusively holding the slot. Only legal when the two versions map
  // to the same slot; use read + begin_write otherwise.
  WriteTicket begin_update(BlockId block, Version from, Version to);

  // Do `from` and `to` share physical storage in this block?
  bool same_slot(BlockId block, Version a, Version b) const;

  // Publishes the version as Valid and releases the slot lock.
  void commit(WriteTicket& ticket);

  // Releases the slot lock without publishing (failure path). The version
  // stays Absent.
  void abort(WriteTicket& ticket);

  // Read-only pointer to a Valid version; throws DataBlockFault otherwise.
  const void* read(BlockId block, Version version) const;

  // Re-checks that a previously read version is still Valid; throws
  // DataBlockFault if it was displaced or corrupted since.
  void revalidate(BlockId block, Version version) const;

  // --- queries ---------------------------------------------------------------

  TaskKey producer(BlockId block, Version version) const;
  VersionState state(BlockId block, Version version) const;
  bool is_valid(BlockId block, Version version) const {
    return state(block, version) == VersionState::kValid;
  }

  std::size_t block_count() const { return blocks_.size(); }
  Version num_versions(BlockId block) const;
  // Physical slots backing the block (= retained versions; version v lives
  // in slot v % slot_count). The persistence layer mirrors the slot mapping
  // when folding WAL records into its shadow frontier.
  Version slot_count(BlockId block) const;
  std::size_t block_bytes(BlockId block) const;
  std::size_t total_storage_bytes() const { return storage_bytes_; }

  // --- fault-injection & lifecycle -------------------------------------------

  // Marks a Valid version Corrupted (detected soft error). No-op on versions
  // that are Absent (nothing computed yet) or already unusable.
  void corrupt(BlockId block, Version version);

  // --- checksum (software error-detection code) mode -------------------------
  //
  // The paper assumes detected errors ("hardware or software error
  // detection codes, such as ECC", Section II). The default injection path
  // simulates the *detector* with sticky flags. Checksum mode implements a
  // real software detector instead: commit() stores a 64-bit hash of the
  // slot bytes, and every read/revalidate recomputes and compares it —
  // an actual flipped data bit is then caught at the next access, flipping
  // the version to Corrupted exactly like a flagged fault. Detection costs
  // O(bytes) per read; it exists for fidelity experiments and tests, not
  // for the timing benchmarks.

  // Enables checksum verification for blocks of this store. Call before
  // execution; applies to all blocks.
  void set_checksum_mode(bool on) { checksums_ = on; }
  bool checksum_mode() const { return checksums_; }

  // Flips one bit in the *resident* bytes of a version's slot (a genuine
  // silent data corruption). Returns false when the version is not
  // resident/valid. Without checksum mode the corruption stays silent —
  // which is the scenario the paper's detectability assumption excludes.
  bool flip_bit(BlockId block, Version version, std::size_t bit);

  // Hash of the resident bytes of a Valid version (the digest the
  // replication voter compares against a replica run). Returns false
  // without touching `out` when the version is not Valid — the voter
  // treats that as a failed vote.
  bool content_hash(BlockId block, Version version, std::uint64_t& out) const;

  // The checksum/digest function shared by checksum mode and the
  // replication subsystem's digest voting: FNV-1a over 8-byte chunks with a
  // mix64 finalizer — fast and sensitive to any single flipped bit.
  static std::uint64_t hash_bytes(const std::byte* data, std::size_t n);

  // Resets every version state to Absent; storage is kept. Run between
  // repeated executions of the same problem.
  void reset_states();

  // Drops all blocks entirely (used by problems that rebuild their layout).
  void clear();

  // --- snapshot / restore (collective checkpoint-restart comparator) -------

  // A full copy of all slot bytes and version states. Used by the
  // CheckpointRestartExecutor to model classic coordinated checkpointing;
  // the selective-recovery executor never needs this.
  struct Snapshot {
    std::vector<std::byte> bytes;        // concatenated slot storage
    std::vector<VersionState> states;    // concatenated version states
    std::vector<std::uint64_t> sums;     // concatenated checksums
  };

  // Both must be called while no writes are in flight (quiescent store).
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  struct Block {
    std::size_t bytes = 0;
    Version num_versions = 0;
    Version slots = 0;  // number of physical slots (= retained versions)
    std::unique_ptr<std::byte[]> storage;
    std::vector<TaskKey> producers;  // per version
    // Mutable: checksum verification during const reads flips a version to
    // Corrupted when the stored hash no longer matches the bytes (that IS
    // the detection event).
    mutable std::unique_ptr<Atomic<VersionState>[]> states;
    // Per-slot writer locks. Held from begin_write/begin_update until
    // commit/abort — across function boundaries, with the lock chosen by
    // slot index at runtime — so the write-ticket protocol sits outside
    // clang's lock-scope model; the four protocol functions carry
    // FTDAG_NO_THREAD_SAFETY_ANALYSIS with the invariant documented there.
    // Readers never take these locks: they validate `states` on access and
    // the executors re-validate every recorded read after the compute body.
    std::unique_ptr<CheckMutex[]> slot_locks;              // per slot
    std::unique_ptr<Atomic<std::uint64_t>[]> sums;  // per version
  };

  // Verifies the stored checksum of a Valid version; on mismatch flips the
  // state to Corrupted and returns false.
  bool verify_checksum(const Block& b, Version v) const;

  const Block& block_ref(BlockId id) const;
  Block& block_ref(BlockId id);
  // Marks every version mapped to `slot` other than `keep` as Overwritten
  // (Valid/Corrupted only) and downgrades `keep` itself Valid -> Absent.
  static void displace_slot(Block& b, Version slot, Version keep);
  [[noreturn]] static void throw_for(const Block& b, BlockId id, Version v,
                                     VersionState st);

  std::vector<Block> blocks_;
  Version retention_ = 1;
  std::size_t storage_bytes_ = 0;
  bool checksums_ = false;
};

}  // namespace ftdag
