#include "nabbit/executor.hpp"

#include "engine/backend.hpp"
#include "engine/detection_policy.hpp"
#include "engine/fault_policy.hpp"
#include "engine/retention_policy.hpp"
#include "engine/traversal_engine.hpp"
#include "support/assert.hpp"

namespace ftdag {

ExecReport NabbitExecutor::execute(TaskGraphProblem& problem,
                                   WorkStealingPool& pool) {
  return execute(problem, pool, engine::JobContext{});
}

ExecReport NabbitExecutor::execute(TaskGraphProblem& problem,
                                   WorkStealingPool& pool,
                                   const engine::JobContext& ctx) {
  FTDAG_ASSERT(ctx.injector == nullptr,
               "fault injection requires a fault-tolerant executor");
  engine::WorkStealingBackend backend(pool);
  engine::ObservationPolicy obs(ctx.trace);
  engine::NoFaultPolicy fault;
  engine::NoDetectionPolicy detection;
  engine::NoRetention retention;
  engine::NoDurability durability;
  engine::TraversalEngine<engine::NoFaultPolicy, engine::NoDetectionPolicy,
                          engine::NoRetention, engine::WorkStealingBackend>
      eng(problem, backend, fault, detection, retention, durability, obs);

  ExecReport report = eng.run();
  FTDAG_ASSERT(report.computes == report.tasks_discovered,
               "baseline computed a task more than once");
  return report;
}

}  // namespace ftdag
