#include "nabbit/executor.hpp"

#include <atomic>
#include <vector>

#include "concurrent/sharded_map.hpp"
#include "graph/compute_context.hpp"
#include "support/assert.hpp"
#include "support/spin_lock.hpp"
#include "support/timer.hpp"

namespace ftdag {
namespace {

// Baseline task descriptor: join counter, status, notify array (Section III).
struct NbTask {
  explicit NbTask(TaskKey k) : key(k) {}

  TaskKey key;
  std::atomic<int> join{0};
  std::atomic<TaskStatus> status{TaskStatus::kVisited};
  SpinLock lock;
  std::vector<TaskKey> notify_array;
};

struct Run {
  TaskGraphProblem& problem;
  WorkStealingPool& pool;
  ShardedMap<NbTask> tasks;
  std::atomic<std::uint64_t> computes{0};

  explicit Run(TaskGraphProblem& p, WorkStealingPool& wp)
      : problem(p), pool(wp) {}

  NbTask* get_task(TaskKey key) {
    NbTask* t = tasks.find(key);
    FTDAG_ASSERT(t != nullptr, "task referenced before insertion");
    return t;
  }

  // Returns {task, inserted}.
  std::pair<NbTask*, bool> insert_task_if_absent(TaskKey key) {
    return tasks.insert_if_absent(key, [key] { return new NbTask(key); });
  }

  void init_and_compute(NbTask* a, TaskKey key) {
    KeyList preds;
    problem.predecessors(key, preds);
    // join = 1 + |preds|: the +1 holds the task back until this traversal
    // finishes, released by the self-notification below.
    a->join.store(1 + static_cast<int>(preds.size()),
                  std::memory_order_release);
    for (TaskKey pkey : preds)
      pool.spawn([this, a, key, pkey] { try_init_compute(a, key, pkey); });
    notify_once(a, key);
  }

  void try_init_compute(NbTask* a, TaskKey key, TaskKey pkey) {
    auto [b, inserted] = insert_task_if_absent(pkey);
    if (inserted)
      pool.spawn([this, b, pkey] { init_and_compute(b, pkey); });

    bool finished = true;
    {
      std::lock_guard<SpinLock> guard(b->lock);
      if (b->status.load(std::memory_order_acquire) < TaskStatus::kComputed) {
        // B will notify A once computed.
        b->notify_array.push_back(key);
        finished = false;
      }
    }
    if (finished) notify_once(a, key);
  }

  void notify_once(NbTask* a, TaskKey key) {
    const int val = a->join.fetch_sub(1, std::memory_order_acq_rel) - 1;
    FTDAG_DASSERT(val >= 0, "baseline join counter went negative");
    if (val == 0) compute_and_notify(a, key);
  }

  void compute_and_notify(NbTask* a, TaskKey key) {
    {
      ComputeContext ctx(problem.block_store(), key);
      problem.compute(key, ctx);
      ctx.finalize();
    }
    computes.fetch_add(1, std::memory_order_relaxed);
    a->status.store(TaskStatus::kComputed, std::memory_order_release);

    // Drain the notify array; late registrations are picked up by the
    // re-check under the lock before flipping to Completed.
    std::size_t notified = 0;
    for (;;) {
      KeyList batch;
      {
        std::lock_guard<SpinLock> guard(a->lock);
        for (std::size_t i = notified; i < a->notify_array.size(); ++i)
          batch.push_back(a->notify_array[i]);
        if (batch.empty()) {
          a->status.store(TaskStatus::kCompleted, std::memory_order_release);
          return;
        }
        notified = a->notify_array.size();
      }
      for (TaskKey skey : batch)
        pool.spawn([this, skey] { notify_successor(skey); });
    }
  }

  void notify_successor(TaskKey skey) {
    NbTask* s = get_task(skey);
    notify_once(s, skey);
  }
};

}  // namespace

ExecReport NabbitExecutor::execute(TaskGraphProblem& problem,
                                   WorkStealingPool& pool) {
  Run run(problem, pool);
  const TaskKey sink = problem.sink();

  Timer timer;
  pool.run_to_quiescence([&run, sink] {
    auto [t, inserted] = run.insert_task_if_absent(sink);
    FTDAG_ASSERT(inserted, "sink already present");
    run.init_and_compute(t, sink);
  });

  ExecReport report;
  report.seconds = timer.seconds();
  report.tasks_discovered = run.tasks.size();
  report.computes = run.computes.load();
  report.re_executed = 0;  // baseline never re-executes

  NbTask* sink_task = run.tasks.find(sink);
  FTDAG_ASSERT(sink_task != nullptr &&
                   sink_task->status.load() == TaskStatus::kCompleted,
               "sink did not complete");
  FTDAG_ASSERT(report.computes == report.tasks_discovered,
               "baseline computed a task more than once");
  return report;
}

}  // namespace ftdag
