#include "nabbit/serial_executor.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/compute_context.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace ftdag {

SerialReport SerialExecutor::execute(TaskGraphProblem& problem) {
  Timer total;

  // Iterative post-order DFS over predecessors from the sink: emits a
  // topological order (every predecessor before its consumer).
  struct Frame {
    TaskKey key;
    KeyList preds;
    std::size_t next = 0;
  };
  std::vector<TaskKey> order;
  std::vector<Frame> stack;
  std::unordered_map<TaskKey, bool> visited;  // false = on stack

  stack.push_back({problem.sink(), {}, 0});
  problem.predecessors(problem.sink(), stack.back().preds);
  visited[problem.sink()] = false;

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next < f.preds.size()) {
      const TaskKey p = f.preds[f.next++];
      auto it = visited.find(p);
      if (it == visited.end()) {
        visited[p] = false;
        stack.push_back({p, {}, 0});
        problem.predecessors(p, stack.back().preds);
      } else {
        FTDAG_ASSERT(it->second, "cycle detected in task graph");
      }
      continue;
    }
    visited[f.key] = true;
    order.push_back(f.key);
    stack.pop_back();
  }

  // Execute in order, timing each compute; finish[A] is the weighted
  // longest-path completion time ending at A.
  SerialReport report;
  std::unordered_map<TaskKey, double> finish;
  finish.reserve(order.size());
  KeyList preds;
  BlockStore& store = problem.block_store();
  for (TaskKey key : order) {
    Timer t;
    {
      ComputeContext ctx(store, key);
      problem.compute(key, ctx);
      ctx.finalize();
    }
    const double dt = t.seconds();
    report.t1 += dt;
    report.max_task = std::max(report.max_task, dt);

    preds.clear();
    problem.predecessors(key, preds);
    double ready = 0.0;
    for (TaskKey p : preds) ready = std::max(ready, finish[p]);
    finish[key] = ready + dt;
  }
  report.tasks = order.size();
  report.t_inf = finish[problem.sink()];
  report.seconds = total.seconds();
  return report;
}

}  // namespace ftdag
