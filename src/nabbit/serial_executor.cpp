#include "nabbit/serial_executor.hpp"

#include <algorithm>
#include <unordered_map>

#include "engine/backend.hpp"
#include "engine/detection_policy.hpp"
#include "engine/fault_policy.hpp"
#include "engine/retention_policy.hpp"
#include "engine/traversal_engine.hpp"

namespace ftdag {

SerialReport SerialExecutor::execute(TaskGraphProblem& problem) {
  // The same traversal as the parallel executors, on the inline backend: a
  // single-threaded FIFO run queue. The join-counter discipline already
  // guarantees every task computes after all its predecessors, so the
  // engine's compute timeline arrives in topological order.
  engine::InlineBackend backend;
  engine::ComputeTimeline timeline;
  engine::ObservationPolicy obs(nullptr, &timeline);
  engine::NoFaultPolicy fault;
  engine::NoDetectionPolicy detection;
  engine::NoRetention retention;
  engine::NoDurability durability;
  engine::TraversalEngine<engine::NoFaultPolicy, engine::NoDetectionPolicy,
                          engine::NoRetention, engine::InlineBackend>
      eng(problem, backend, fault, detection, retention, durability, obs);

  SerialReport report;
  report.exec = eng.run();
  report.seconds = report.exec.seconds;
  report.tasks = report.exec.tasks_discovered;

  // Section V quantities from the per-task timings: T1 is total work,
  // finish[A] the weighted longest-path completion time ending at A, so
  // finish[sink] is T_inf (the span).
  std::unordered_map<TaskKey, double> finish;
  finish.reserve(timeline.events.size());
  KeyList preds;
  for (const auto& [key, dt] : timeline.events) {
    report.t1 += dt;
    report.max_task = std::max(report.max_task, dt);

    preds.clear();
    problem.predecessors(key, preds);
    double ready = 0.0;
    for (TaskKey p : preds) ready = std::max(ready, finish[p]);
    finish[key] = ready + dt;
  }
  report.t_inf = finish[problem.sink()];
  return report;
}

}  // namespace ftdag
