#pragma once
// NabbitExecutor: the baseline dynamic task-graph scheduler of Section III
// (the non-shaded portions of the paper's Figure 2), with *no* fault
// tolerance structures — no life numbers, no bit vectors, no recovery table.
// This is the `baseline` the paper compares against in Figure 4.
//
// Execution starts by inserting the sink task and invoking InitAndCompute;
// the traversal expands the graph toward the sources, registering each task
// in the notify arrays of its uncomputed predecessors. A task's join counter
// starts at 1 + |preds| (the extra count is released by the self-notification
// at the end of its traversal) and the thread that drives it to zero runs
// ComputeAndNotify.

#include <cstdint>

#include "engine/job_context.hpp"
#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"
#include "runtime/scheduler.hpp"

namespace ftdag {

class NabbitExecutor {
 public:
  // Runs the task graph to completion on the pool. The caller is responsible
  // for problem.reset_data() before repeated runs. Not fault tolerant: must
  // not be combined with fault injection.
  ExecReport execute(TaskGraphProblem& problem, WorkStealingPool& pool);

  // Job-scoped entry point. The baseline honours only the trace sink;
  // ctx.injector must be null (the baseline cannot recover) and durability
  // is compiled out of this instantiation.
  ExecReport execute(TaskGraphProblem& problem, WorkStealingPool& pool,
                     const engine::JobContext& ctx);
};

}  // namespace ftdag
