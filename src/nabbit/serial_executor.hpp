#pragma once
// SerialExecutor: single-threaded topological execution of a task graph
// through the same ComputeContext machinery as the parallel executors.
//
// Two roles:
//  - an independent oracle (no scheduler, no concurrency) for validating
//    the parallel executors, and
//  - the measurement instrument for the paper's Section V quantities: it
//    times every compute function, yielding T1 (total work) and T_inf (the
//    weighted critical path), which bench_theory compares against measured
//    P-processor times via the work-stealing bound O(T1/P + T_inf).

#include <cstdint>

#include "graph/exec_report.hpp"
#include "graph/task_graph_problem.hpp"

namespace ftdag {

struct SerialReport {
  double seconds = 0.0;   // wall clock for the whole execution
  std::uint64_t tasks = 0;
  double t1 = 0.0;        // sum of per-task compute times (work)
  double t_inf = 0.0;     // longest path weighted by compute times (span)
  double max_task = 0.0;  // heaviest single task
  ExecReport exec;        // the uniform counters (all fault counters zero)
};

class SerialExecutor {
 public:
  // Expands the graph from the sink (reverse reachability, like the dynamic
  // schedulers) and runs every task once in topological order. The caller
  // resets problem data between runs.
  SerialReport execute(TaskGraphProblem& problem);
};

}  // namespace ftdag
