// Validates the Section V performance analysis empirically: a randomized
// work-stealing scheduler completes a computation with work T1 and span
// T_inf in O(T1/P + T_inf) time (Theorem 2 reduces to the plain NABBIT
// bound when there are no failures). The serial executor measures T1 (total
// compute time) and T_inf (the weighted critical path); we then report the
// measured parallel times against the T1/P + T_inf yardstick.
//
// With faults, Theorem 2's a-posteriori bound adds the re-executed work: we
// report T1' = T1 + (re-executed fraction) and the same comparison.

#include <cstdio>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "nabbit/serial_executor.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1,2,4");
  cli.check_unknown();

  print_header("Section V - completion time vs the T1/P + T_inf bound",
               "Theorem 2 / the NABBIT bound O(T1/P + T_inf min{P,d})");

  Table t({"bench", "T1(s)", "Tinf(s)", "parallelism", "P", "measured(s)",
           "T1/P+Tinf(s)", "ratio"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();

    SerialExecutor serial;
    app->reset_data();
    SerialReport sr = serial.execute(*app);

    for (int threads : opt.threads) {
      WorkStealingPool pool(static_cast<unsigned>(threads));
      RepeatedRuns ft = run_ft(*app, pool, opt.reps);
      const double bound = sr.t1 / threads + sr.t_inf;
      t.add_row({name, strf("%.3f", sr.t1), strf("%.3f", sr.t_inf),
                 strf("%.1f", sr.t1 / sr.t_inf), strf("%d", threads),
                 strf("%.3f", ft.mean_seconds()), strf("%.3f", bound),
                 strf("%.2f", ft.mean_seconds() / bound)});
    }
  }
  t.print();

  // Theorem 2's a-posteriori bound with failures: each node A executed
  // N(A) times contributes N(A) copies of its work, i.e. T1 grows by the
  // re-executed fraction. Run one faulty configuration per app at P=1.
  std::printf("\nWith failures (after-compute, v=rand, 5%% loss, P=1):\n");
  Table tf({"bench", "reexec", "T1'(s)", "measured(s)", "T1'+Tinf(s)",
            "ratio"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    SerialExecutor serial;
    app->reset_data();
    SerialReport sr = serial.execute(*app);

    FaultPlanner planner(*app);
    FaultPlanSpec spec;
    spec.phase = FaultPhase::kAfterCompute;
    spec.type = VictimType::kVersionRand;
    spec.target_fraction = 0.05;
    spec.seed = opt.seed;
    PlannedFaultInjector injector(planner.plan(spec).faults);
    WorkStealingPool pool(1);
    RepeatedRuns faulty = run_ft(*app, pool, opt.reps, &injector);
    const double re = faulty.reexecution_summary().mean;
    const double t1p =
        sr.t1 * (1.0 + re / static_cast<double>(sr.tasks));
    tf.add_row({name, strf("%.0f", re), strf("%.3f", t1p),
                strf("%.3f", faulty.mean_seconds()), strf("%.3f", t1p + sr.t_inf),
                strf("%.2f", faulty.mean_seconds() / (t1p + sr.t_inf))});
  }
  tf.print();
  std::printf(
      "\nThe bound holds when `ratio` stays below a small scheduler constant\n"
      "(~1-2x at P=1). On this single-core container, P>1 rows oversubscribe\n"
      "one core, so measured times track T1, not T1/P; on a real multicore\n"
      "the ratio stays O(1) as P grows - that is the paper's Theorem 2.\n");
  return 0;
}
