// Ablation: selective recovery vs collective checkpoint/restart.
//
// The paper's Section II argument made measurable: a coordinated
// checkpoint/restart scheme (a) pays synchronization + snapshot cost even
// with no failures, and (b) on each failure discards the work of *all*
// threads back to the last checkpoint, so with frequent errors progress
// collapses. Selective recovery pays ~nothing fault-free and work
// proportional to what was actually lost.
//
// Sweeps the number of injected after-compute faults and reports both
// executors' times and re-execution counts, plus the checkpoint scheme's
// snapshot overhead.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint_executor.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "4");
  const int interval = static_cast<int>(cli.get_int("interval", 4));
  cli.check_unknown();

  print_header("Ablation - selective recovery vs checkpoint/restart",
               "Section II: collective recovery 'requires the overhead of "
               "synchronization even when there are no failures'");

  const int threads = opt.threads.front();
  Table t({"bench", "faults", "selective(s)", "sel-reexec", "ckpt(s)",
           "ckpt-reexec", "rollbacks", "snapshot(s)"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    WorkStealingPool pool(static_cast<unsigned>(threads));
    FaultPlanner planner(*app);

    for (std::uint64_t faults : {std::uint64_t{0}, std::uint64_t{1},
                                 std::uint64_t{4}, std::uint64_t{16}}) {
      FaultPlanSpec spec;
      spec.phase = FaultPhase::kAfterCompute;
      spec.type = VictimType::kVersionRand;
      spec.target_count = faults;
      spec.seed = opt.seed;
      FaultPlan plan = planner.plan(spec);

      // Selective (the paper's scheme).
      PlannedFaultInjector sel_inj(plan.faults);
      RunSpec sel_spec;
      sel_spec.kind = ExecutorKind::kFaultTolerant;
      sel_spec.reps = opt.reps;
      sel_spec.injector = faults ? &sel_inj : nullptr;
      RepeatedRuns sel = run_executor(*app, pool, sel_spec);

      // Collective comparator.
      PlannedFaultInjector ck_inj(plan.faults);
      RunSpec ck_spec;
      ck_spec.kind = ExecutorKind::kCheckpoint;
      ck_spec.reps = opt.reps;
      ck_spec.injector = faults ? &ck_inj : nullptr;
      ck_spec.checkpoint.interval_levels = interval;
      RepeatedRuns ck = run_executor(*app, pool, ck_spec);
      const ExecReport& last = ck.reports.back();

      t.add_row({name, strf("%llu", (unsigned long long)faults),
                 strf("%.3f", sel.mean_seconds()),
                 strf("%.0f", sel.reexecution_summary().mean),
                 strf("%.3f", ck.time_summary().mean),
                 strf("%llu", (unsigned long long)last.re_executed),
                 strf("%llu", (unsigned long long)last.rollbacks),
                 strf("%.3f", last.checkpoint_seconds)});
    }
  }
  t.print();
  std::printf(
      "\nExpected shape: at 0 faults the checkpoint scheme already pays the\n"
      "snapshot column; as faults grow, its re-executed work (whole levels\n"
      "x rollbacks) explodes while selective recovery's stays proportional\n"
      "to the work actually lost.\n");
  return 0;
}
