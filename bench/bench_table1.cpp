// Reproduces Table I: per-benchmark configuration and task-graph structure
// (matrix size N, block size B, total tasks T, total dependences E, critical
// path length S), plus the degree bound and storage footprint the analysis
// of Section V depends on.

#include <cstdio>

#include "bench_common.hpp"
#include "graph/graph_metrics.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli);
  cli.check_unknown();

  print_header("Table I - benchmark task graph structure",
               "Table I: N, B, T (tasks), E (dependences), S (span)");

  Table t({"bench", "N", "B", "T", "E", "S", "max-deg", "sources",
           "storage(KB)"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    GraphMetrics m = analyze_graph(*app);
    const std::size_t deg = std::max(m.max_in_degree, m.max_out_degree);
    t.add_row({name, strf("%lldx%lld", (long long)cfg.n, (long long)cfg.n),
               strf("%lldx%lld", (long long)cfg.block, (long long)cfg.block),
               strf("%zu", m.tasks), strf("%zu", m.edges), strf("%zu", m.span),
               strf("%zu", deg), strf("%zu", m.sources),
               strf("%zu", app->block_store().total_storage_bytes() / 1024)});
  }
  t.print();
  std::printf(
      "\nNote: configurations are scaled from the paper's (10K-class inputs\n"
      "on 44 cores) to seconds-per-run on this machine; the graph *shapes*\n"
      "(wavefront, stage, in-place chains) and the S ~ T relationships are\n"
      "preserved. Paper values for comparison: LCS T=65536 E=195585 S=510;\n"
      "LU T=173880 E=508760 S=238; Cholesky T=88560 E=255960 S=238;\n"
      "FW T=64000 E=308880 S=120; SW T=132650 E=262600 S=1475.\n");
  return 0;
}
