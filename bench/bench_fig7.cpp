// Reproduces Figure 7: scalability of recovery. After-compute faults on
// v=rand victims, swept over worker counts, for (a) a fixed small loss and
// (b) a 5% loss. The paper's finding: constant losses stay in the noise at
// every P, while proportional losses cost more at higher P because
// recovery's re-execution chains are serial and starve the extra workers.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1,2,4");
  const double count_frac = cli.get_double("count-frac", 0.01);
  cli.check_unknown();

  print_header("Figure 7 - recovery overhead vs worker count",
               "Fig. 7: (a) fixed loss, (b) 5% loss; after compute, v=rand");

  Table t({"bench", "P", "scenario", "ft-nofault(s)", "faulty(s)",
           "overhead(%)", "measured-reexec"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    FaultPlanner planner(*app);
    const std::uint64_t fixed = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               count_frac * static_cast<double>(planner.total_tasks())));

    for (int threads : opt.threads) {
      WorkStealingPool pool(static_cast<unsigned>(threads));
      RepeatedRuns clean = run_ft(*app, pool, opt.reps);
      const double base = clean.mean_seconds();

      struct Scen {
        std::uint64_t count;
        double fraction;
        const char* label;
      };
      const Scen scens[] = {{fixed, 0.0, "fixed"}, {0, 0.05, "5%"}};
      for (const Scen& sc : scens) {
        FaultPlanSpec spec;
        spec.phase = FaultPhase::kAfterCompute;
        spec.type = VictimType::kVersionRand;
        spec.target_count = sc.count;
        spec.target_fraction = sc.fraction;
        spec.seed = opt.seed;
        FaultPlan plan = planner.plan(spec);
        PlannedFaultInjector injector(plan.faults);
        RepeatedRuns faulty = run_ft(*app, pool, opt.reps, &injector);
        t.add_row({name, strf("%d", threads), sc.label, strf("%.3f", base),
                   strf("%.3f", faulty.mean_seconds()),
                   strf("%+.2f", overhead_pct(base, faulty.mean_seconds())),
                   strf("%.0f", faulty.reexecution_summary().mean)});
      }
    }
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): 'fixed' rows flat and tiny across P;\n"
      "'5%%' rows grow with P (serial recovery chains limit concurrency).\n"
      "Note: this container has one physical core, so P > 1 rows measure\n"
      "protocol behaviour under oversubscription, not real parallelism.\n");
  return 0;
}
