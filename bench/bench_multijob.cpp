// Multi-job runtime throughput: N jobs through one ftdag::Runtime sharing
// one WorkStealingPool, versus the same N jobs run back-to-back solo (the
// pre-runtime lifecycle: each job gets the whole pool to itself). Every job
// validates against the sequential reference, so the concurrent rows also
// re-prove per-job isolation under contention on every bench run.
//
// Rows (bench_hotpath schema, gated by bench_compare.py --check-format):
//   multijob-seq-<app>    N jobs sequentially; mean_s = wall, ops = N,
//                         ns_per_op = wall / N (per-job cost, ns)
//   multijob-conc-<app>   N jobs concurrently via Runtime::submit;
//                         same fields — conc/seq mean_s is the throughput
//                         gain of sharing the pool
//   multijob-p50-<app>    p50 of concurrent per-job run latency (mean_s)
//   multijob-p95-<app>    p95 of the same
//
// Flags: --apps, --jobs, --max-inflight, --threads (single count), --reps
// (per job), --smoke, --out. Defaults are sized so CI's smoke run finishes
// in seconds.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/runtime.hpp"
#include "support/timer.hpp"

using namespace ftdag;

namespace {

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int threads =
      static_cast<int>(cli.get_positive_int("threads", smoke ? 2 : 4));
  const int jobs = static_cast<int>(cli.get_positive_int("jobs", smoke ? 4 : 8));
  const int max_inflight =
      static_cast<int>(cli.get_positive_int("max-inflight", smoke ? 2 : 4));
  const int reps = static_cast<int>(cli.get_positive_int("reps", 1));
  const double scale = cli.get_double("scale", smoke ? 0.25 : 0.5);
  const std::vector<std::string> apps = cli.get_list("apps", "lcs,fw");
  const std::string out_path = cli.get_string("out", "BENCH_multijob.json");
  cli.check_unknown();

  print_header("multi-job runtime throughput",
               "long-lived scheduler service vs one-shot lifecycle");
  std::printf("threads=%d jobs=%d max-inflight=%d reps=%d scale=%g\n\n",
              threads, jobs, max_inflight, reps, scale);

  JsonRows json;
  for (const std::string& app : apps) {
    const AppConfig cfg = scale_config(default_config(app), scale);

    // One problem instance per in-flight job (problems are stateful); the
    // reference checksum each job validates against is computed once per
    // instance, outside the timed regions.
    std::vector<std::unique_ptr<TaskGraphProblem>> problems;
    for (int j = 0; j < jobs; ++j) {
      problems.push_back(make_app(app, cfg));
      (void)problems.back()->reference_checksum();
    }

    RunSpec spec;
    spec.kind = ExecutorKind::kFaultTolerant;
    spec.reps = reps;

    Runtime::Options opts;
    opts.threads = static_cast<unsigned>(threads);
    opts.max_inflight = static_cast<std::size_t>(max_inflight);

    // Sequential reference: same Runtime, one job at a time on the calling
    // thread — the old create/run/tear-down lifecycle minus pool start-up.
    double seq_wall = 0.0;
    {
      Runtime runtime(opts);
      Timer wall;
      for (auto& p : problems) {
        JobHandle job = runtime.run_sync(*p, spec);
        if (job->state() != JobState::kCompleted) {
          std::fprintf(stderr, "sequential job failed: %s\n",
                       job->error().c_str());
          return 1;
        }
      }
      seq_wall = wall.seconds();
    }

    // Concurrent: submit everything, wait for all handles.
    double conc_wall = 0.0;
    std::vector<double> latencies;
    {
      Runtime runtime(opts);
      Timer wall;
      std::vector<JobHandle> handles;
      for (auto& p : problems) handles.push_back(runtime.submit(*p, spec));
      for (const JobHandle& job : handles) {
        if (job->wait() != JobState::kCompleted) {
          std::fprintf(stderr, "concurrent job failed: %s\n",
                       job->error().c_str());
          return 1;
        }
        latencies.push_back(job->run_seconds());
      }
      conc_wall = wall.seconds();
    }

    const double n = static_cast<double>(jobs);
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    std::printf(
        "%-10s seq %.3fs  conc %.3fs  (%.2fx)  job latency p50 %.3fs "
        "p95 %.3fs\n",
        app.c_str(), seq_wall, conc_wall, seq_wall / conc_wall, p50, p95);

    json.field("name", "multijob-seq-" + app)
        .field("threads", threads)
        .field("ns_per_op", seq_wall / n * 1e9, 3)
        .field("mean_s", seq_wall)
        .field("std_s", 0.0)
        .field("ops", static_cast<std::uint64_t>(jobs));
    json.end_row();
    json.field("name", "multijob-conc-" + app)
        .field("threads", threads)
        .field("ns_per_op", conc_wall / n * 1e9, 3)
        .field("mean_s", conc_wall)
        .field("std_s", 0.0)
        .field("ops", static_cast<std::uint64_t>(jobs));
    json.end_row();
    json.field("name", "multijob-p50-" + app)
        .field("threads", threads)
        .field("ns_per_op", p50 * 1e9, 3)
        .field("mean_s", p50)
        .field("std_s", 0.0)
        .field("ops", static_cast<std::uint64_t>(jobs));
    json.end_row();
    json.field("name", "multijob-p95-" + app)
        .field("threads", threads)
        .field("ns_per_op", p95 * 1e9, 3)
        .field("mean_s", p95)
        .field("std_s", 0.0)
        .field("ops", static_cast<std::uint64_t>(jobs));
    json.end_row();
  }

  std::printf("\n");
  return json.write_file(out_path) ? 0 : 1;
}
