// Measures the cost of silent-data-corruption detection by task
// replication (dual execution + digest voting) against the two cheaper
// postures the repo already has: no detection at all, and checksum mode
// (software EDC on every block read/commit).
//
// Per app, fault-free, at the largest requested thread count:
//   undefended   NABBIT baseline executor, no FT structures
//   ft-off       FT executor, detection disabled (the Fig. 4 configuration)
//   checksum     FT executor + BlockStore checksum mode
//   sample:0.5   FT executor, replicate ~half the tasks
//   all          FT executor, replicate every task (full DMR)
//
// Overheads are reported against the undefended baseline, so the ft-off row
// reproduces Figure 4's no-fault FT cost and the detection rows show what
// each posture adds on top. Expected shape: checksum costs a few percent
// (hash per commit/read), sample:0.5 about half of `all`, and `all`
// somewhat less than 2x because replicas skip commit/notify work. A
// machine-readable summary lands in --out (default BENCH_replication.json).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

namespace {

struct Config {
  const char* name;
  ExecutorKind kind;
  bool checksum;
  const char* policy;  // replication policy for the FT configurations
};

constexpr Config kConfigs[] = {
    {"undefended", ExecutorKind::kBaseline, false, "off"},
    {"ft-off", ExecutorKind::kFaultTolerant, false, "off"},
    {"checksum", ExecutorKind::kFaultTolerant, true, "off"},
    {"sample:0.5", ExecutorKind::kFaultTolerant, false, "sample:0.5"},
    {"all", ExecutorKind::kFaultTolerant, false, "all"},
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "4");
  const std::string out_path =
      cli.get_string("out", "BENCH_replication.json");
  cli.check_unknown();

  print_header("replication - SDC-detection overhead, no faults",
               "extension: dual-execution voting vs checksum EDC");

  Table t({"bench", "mode", "time(s)", "overhead(%)", "replicated",
           "mismatches"});
  JsonRows json;
  const int threads = opt.threads.back();
  WorkStealingPool pool(static_cast<unsigned>(threads));

  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();  // cache outside the timed region

    double baseline_mean = 0.0;
    for (const Config& c : kConfigs) {
      app->block_store().set_checksum_mode(c.checksum);
      RunSpec spec;
      spec.kind = c.kind;
      spec.reps = opt.reps;
      spec.ft.replication = ReplicationPolicy::parse(c.policy);
      RepeatedRuns runs = run_executor(*app, pool, spec);
      app->block_store().set_checksum_mode(false);

      const Summary s = runs.time_summary();
      if (c.kind == ExecutorKind::kBaseline) baseline_mean = s.mean;
      std::uint64_t replicated = 0, mismatches = 0;
      for (const ExecReport& r : runs.reports) {
        replicated += r.replicated;
        mismatches += r.digest_mismatches;
      }
      const bool have_ref = baseline_mean > 0.0;
      t.add_row({name, c.name, format_mean_std(s, 3),
                 have_ref ? strf("%+.2f", overhead_pct(baseline_mean, s.mean))
                          : "-",
                 strf("%llu", (unsigned long long)replicated),
                 strf("%llu", (unsigned long long)mismatches)});
      json.field("app", name)
          .field("mode", c.name)
          .field("threads", threads)
          .field("mean_s", s.mean)
          .field("std_s", s.stddev)
          .raw("overhead_pct",
               have_ref ? strf("%.2f", overhead_pct(baseline_mean, s.mean))
                        : "null")
          .field("replicated", replicated)
          .field("digest_mismatches", mismatches);
      json.end_row();
    }
  }
  t.print();

  std::printf("\n");
  json.write_file(out_path);
  std::printf(
      "Expected shape: checksum adds a few %%; sample:0.5 roughly half the\n"
      "cost of all; all < 2x because replicas skip commit/notify work.\n");
  return 0;
}
