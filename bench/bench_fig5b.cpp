// Reproduces Figure 5(b): recovery overhead when failures imply the
// re-execution of 2% and 5% of all tasks (v=rand victims), for before- and
// after-compute failure times. The paper reports <=3.6% (2%) and <=8.2%
// (5%) overheads with after-compute failures, and ~0 for before-compute.

#include <cstdio>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1");
  cli.check_unknown();

  print_header("Figure 5(b) - overhead at 2% and 5% work loss",
               "Fig. 5(b): {2%,5%} x {before,after} compute, v=rand");

  const double fractions[] = {0.02, 0.05};
  const FaultPhase phases[] = {FaultPhase::kBeforeCompute,
                               FaultPhase::kAfterCompute};
  const int threads = opt.threads.front();

  Table t({"bench", "scenario", "target", "intended", "measured-reexec",
           "ft-nofault(s)", "faulty(s)", "overhead(%)"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    WorkStealingPool pool(static_cast<unsigned>(threads));
    RepeatedRuns clean = run_ft(*app, pool, opt.reps);
    const double base = clean.mean_seconds();
    FaultPlanner planner(*app);

    for (double frac : fractions) {
      for (FaultPhase phase : phases) {
        FaultPlanSpec spec;
        spec.phase = phase;
        spec.type = VictimType::kVersionRand;
        spec.target_fraction = frac;
        spec.seed = opt.seed;
        FaultPlan plan = planner.plan(spec);
        PlannedFaultInjector injector(plan.faults);
        RepeatedRuns faulty = run_ft(*app, pool, opt.reps, &injector);
        const Summary re = faulty.reexecution_summary();
        t.add_row({name,
                   strf("%.0f%%,%s", frac * 100, fault_phase_name(phase)),
                   strf("%llu", (unsigned long long)plan.target),
                   strf("%llu", (unsigned long long)plan.intended_reexecutions),
                   strf("%.0f", re.mean), strf("%.3f", base),
                   strf("%.3f", faulty.mean_seconds()),
                   strf("%+.2f", overhead_pct(base, faulty.mean_seconds()))});
      }
    }
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): before-compute ~0%%; after-compute overhead\n"
      "roughly proportional to work lost (single-digit %% at 5%% loss).\n");
  return 0;
}
