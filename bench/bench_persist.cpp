// Durability subsystem (src/persist/) cost model, two experiments:
//
// 1. Journaling overhead per fsync policy, fault-free, per app at the
//    largest requested thread count:
//      persist-<app>-off     FT executor, durability compiled out (reference)
//      persist-<app>-none    WAL via write(2) only (process-death durability)
//      persist-<app>-batch   fsync every 32 records (bounded machine-death loss)
//      persist-<app>-every   fsync per record (commit == on stable storage)
//      persist-<app>-snap    batch + periodic snapshot/WAL rotation
//    Every rep starts from a wiped persist dir (resume=false), so each run
//    pays the full journaling cost. ops=0: bench_compare.py joins these
//    rows on mean_s, like the e2e rows of bench_hotpath.
//
// 2. Recovery time vs kill point: a forked child runs with
//    crash_after_records at 25/50/75% of the task count and SIGKILLs itself
//    mid-commit (the crash_restart_test protocol); the parent then times
//    the restart. ops = tasks restored from disk, ns_per_op = restart time
//    per restored task — the replay cost a crash actually buys back.
//
// Rows land in --out (default BENCH_persist.json), same schema as
// bench_hotpath so scripts/bench_compare.py --check-format gates it in CI.
// --smoke shrinks sizes for CI. --persist-dir overrides the scratch
// directory (default: a fresh mkdtemp under $TMPDIR).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

namespace {

struct SyncConfig {
  const char* name;
  bool durable;
  persist::WalSync sync;
  bool snapshots;
};

constexpr SyncConfig kConfigs[] = {
    {"off", false, persist::WalSync::kNone, false},
    {"none", true, persist::WalSync::kNone, false},
    {"batch", true, persist::WalSync::kBatch, false},
    {"every", true, persist::WalSync::kEvery, false},
    {"snap", true, persist::WalSync::kBatch, true},
};

std::string make_scratch_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base && *base ? base : "/tmp");
  tmpl += "/ftdag_bench_persist_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = mkdtemp(buf.data());
  if (got == nullptr) {
    std::fprintf(stderr, "cannot create scratch dir under %s\n", tmpl.c_str());
    std::exit(1);
  }
  return got;
}

// Forks a child that runs the durable executor until the injected SIGKILL
// (or completion, when the kill point lies past the last task). The parent
// must hold no worker pools across the fork.
void run_until_killed(const std::string& name, const AppConfig& cfg,
                      int threads, const persist::DurabilityOptions& dopts) {
  std::fflush(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    int code = 1;
    try {
      auto app = make_app(name, cfg);
      WorkStealingPool pool(static_cast<unsigned>(threads));
      FaultTolerantExecutor exec;
      ExecutorOptions opts;
      opts.durability = dopts;
      app->reset_data();
      exec.execute(*app, pool, nullptr, nullptr, opts);
      code = 0;
    } catch (...) {
      code = 1;
    }
    std::_Exit(code);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  const bool completed = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!killed && !completed) {
    std::fprintf(stderr, "crash child for %s failed unexpectedly\n",
                 name.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  BenchOptions opt = parse_bench_options(cli, smoke ? "2" : "4");
  persist::DurabilityOptions dflags = parse_durability_options(cli);
  const std::string out_path = cli.get_string("out", "BENCH_persist.json");
  cli.check_unknown();
  if (smoke) {
    if (cli.get_string("apps", "").empty()) opt.apps = {"lcs"};
    if (cli.get_string("scale", "").empty()) opt.scale = 0.12;
    if (cli.get_string("reps", "").empty()) opt.reps = 2;
  }

  const std::string dir =
      dflags.dir.empty() ? make_scratch_dir() : dflags.dir;
  const std::uint64_t snapshot_every =
      dflags.snapshot_every > 0 ? dflags.snapshot_every : 64;
  const int threads = opt.threads.back();

  print_header("durable checkpoint/restart - journaling cost + recovery time",
               "extension: WAL-based crash restart over the retained frontier");

  // fsyncs/batches/ack are the group-commit observability counters
  // (ExecReport::wal_fsyncs / wal_flush_batches / wal_ack_wait_ns):
  // fsyncs << records means coalescing works; ack ms is the total time
  // workers spent waiting on the durable epoch (every-mode only).
  Table t({"bench", "mode", "time(s)", "overhead(%)", "wal MB", "snaps",
           "fsyncs", "batches", "ack ms"});
  JsonRows json;

  // --- experiment 1: fault-free journaling overhead per sync policy --------
  for (const std::string& name : opt.apps) {
    const AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    WorkStealingPool pool(static_cast<unsigned>(threads));

    double off_mean = 0.0;
    for (const SyncConfig& c : kConfigs) {
      RunSpec spec;
      spec.kind = ExecutorKind::kFaultTolerant;
      spec.reps = opt.reps;
      if (c.durable) {
        spec.durability.dir = dir;
        spec.durability.sync = c.sync;
        spec.durability.snapshot_every = c.snapshots ? snapshot_every : 0;
        spec.durability.resume = false;  // every rep journals from scratch
      }
      RepeatedRuns runs = run_executor(*app, pool, spec);
      const Summary s = runs.time_summary();
      if (!c.durable) off_mean = s.mean;

      std::uint64_t wal_bytes = 0, snaps = 0;
      std::uint64_t fsyncs = 0, batches = 0, ack_ns = 0;
      for (const ExecReport& r : runs.reports) {
        wal_bytes += r.wal_bytes;
        snaps += r.snapshots_written;
        fsyncs += r.wal_fsyncs;
        batches += r.wal_flush_batches;
        ack_ns += r.wal_ack_wait_ns;
      }
      t.add_row({name, c.name, format_mean_std(s, 3),
                 c.durable ? strf("%+.2f", overhead_pct(off_mean, s.mean))
                           : "-",
                 strf("%.2f", static_cast<double>(wal_bytes) / 1e6),
                 strf("%llu", (unsigned long long)snaps),
                 strf("%llu", (unsigned long long)fsyncs),
                 strf("%llu", (unsigned long long)batches),
                 strf("%.2f", static_cast<double>(ack_ns) / 1e6)});
      json.field("name", "persist-" + name + "-" + c.name)
          .field("threads", threads)
          .field("ns_per_op", 0.0, 3)
          .field("mean_s", s.mean)
          .field("std_s", s.stddev)
          .field("ops", std::uint64_t{0});
      json.end_row();
    }
    persist::remove_persist_files(dir);
  }

  // --- experiment 2: recovery time vs kill point ---------------------------
  // Pools are scoped above and recreated below per restart, so no worker
  // threads exist while forking the crash children.
  for (const std::string& name : opt.apps) {
    const AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    const std::uint64_t tasks = analyze_graph(*app).tasks;

    for (int pct : {25, 50, 75}) {
      persist::remove_persist_files(dir);
      persist::DurabilityOptions dopts;
      dopts.dir = dir;
      dopts.sync = persist::WalSync::kEvery;
      dopts.crash_after_records = std::max<std::uint64_t>(1, tasks * pct / 100);
      run_until_killed(name, cfg, threads, dopts);

      WorkStealingPool pool(static_cast<unsigned>(threads));
      RunSpec spec;
      spec.kind = ExecutorKind::kFaultTolerant;
      spec.reps = 1;
      spec.durability.dir = dir;
      spec.durability.sync = persist::WalSync::kEvery;
      const ExecReport r = run_executor(*app, pool, spec).reports[0];
      const std::uint64_t restored = r.tasks_skipped_on_restart;

      t.add_row({name, strf("restart@%d%%", pct), strf("%.3f", r.seconds),
                 "-", strf("%llu of %llu", (unsigned long long)restored,
                           (unsigned long long)tasks),
                 "-", "-", "-", "-"});
      json.field("name", strf("restart-%s-kill%d", name.c_str(), pct))
          .field("threads", threads)
          .field("ns_per_op",
                 restored > 0 ? r.seconds * 1e9 / static_cast<double>(restored)
                              : 0.0,
                 3)
          .field("mean_s", r.seconds)
          .field("std_s", 0.0)
          .field("ops", restored);
      json.end_row();
    }
  }

  t.print();
  std::printf(
      "\nExpected shape: none ~ off (async ring publish, page-cache\n"
      "writes); every pays group-commit fsyncs — fsyncs well below the\n"
      "record count means coalescing works; snap adds rotation on top of\n"
      "batch. Restart time falls as the kill point grows: the timed resume\n"
      "recomputes only the suffix, and replaying a record is far cheaper\n"
      "than recomputing it.\n\n");

  const bool ok = json.write_file(out_path);
  if (dflags.dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return ok ? 0 : 1;
}
