// Google-benchmark microbenchmarks for the runtime substrates: deque ops,
// hash-map ops, bit vector, recovery table, pool spawn throughput, and
// per-task executor overhead (the constant behind the paper's "no overhead
// without faults" claim).

#include <benchmark/benchmark.h>

#include "apps/random_dag.hpp"
#include "concurrent/atomic_bitset.hpp"
#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/sharded_map.hpp"
#include "core/ft_executor.hpp"
#include "engine/recovery_table.hpp"
#include "nabbit/executor.hpp"
#include "runtime/scheduler.hpp"

namespace ftdag {
namespace {

void BM_DequePushPop(benchmark::State& state) {
  ChaseLevDeque<int*> d;
  int item = 42;
  for (auto _ : state) {
    d.push(&item);
    int* out = nullptr;
    benchmark::DoNotOptimize(d.pop(out));
  }
}
BENCHMARK(BM_DequePushPop);

void BM_DequeStealUncontended(benchmark::State& state) {
  ChaseLevDeque<int*> d;
  int item = 42;
  for (auto _ : state) {
    d.push(&item);
    int* out = nullptr;
    benchmark::DoNotOptimize(d.steal(out));
  }
}
BENCHMARK(BM_DequeStealUncontended);

void BM_ShardedMapInsertAbsent(benchmark::State& state) {
  ShardedMap<int> m;
  MapKey key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.insert_if_absent(key++, [] { return new int(1); }));
  }
}
BENCHMARK(BM_ShardedMapInsertAbsent);

void BM_ShardedMapFindHit(benchmark::State& state) {
  ShardedMap<int> m;
  for (MapKey k = 0; k < 4096; ++k)
    m.insert_if_absent(k, [] { return new int(1); });
  MapKey key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(key));
    key = (key + 1) & 4095;
  }
}
BENCHMARK(BM_ShardedMapFindHit);

void BM_AtomicBitsetUnset(benchmark::State& state) {
  AtomicBitset bits(64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.fetch_unset(i & 63));
    if ((++i & 63) == 0) bits.set_all();
  }
}
BENCHMARK(BM_AtomicBitsetUnset);

void BM_RecoveryTableClaim(benchmark::State& state) {
  RecoveryTable r;
  std::uint64_t life = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.is_recovering(7, life));
    ++life;
  }
}
BENCHMARK(BM_RecoveryTableClaim);

void BM_PoolSpawnThroughput(benchmark::State& state) {
  WorkStealingPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    pool.run_to_quiescence([&] {
      for (int i = 0; i < 1000; ++i) pool.spawn([] {});
    });
  }
  state.SetItemsProcessed(state.iterations() * 1001);
}
BENCHMARK(BM_PoolSpawnThroughput)->Arg(1)->Arg(4);

// Per-task scheduling overhead of the two executors on a graph whose tasks
// do almost no work: baseline vs FT, the microscopic version of Figure 4.
void run_executor_bench(benchmark::State& state, bool ft) {
  RandomDagSpec spec;
  spec.layers = 32;
  spec.width = 32;
  spec.extra_degree = 2;
  spec.work_iters = 0;
  RandomDagProblem app(spec);
  (void)app.reference_checksum();
  WorkStealingPool pool(static_cast<unsigned>(state.range(0)));
  NabbitExecutor base;
  FaultTolerantExecutor tolerant;
  for (auto _ : state) {
    app.reset_data();
    if (ft)
      benchmark::DoNotOptimize(tolerant.execute(app, pool));
    else
      benchmark::DoNotOptimize(base.execute(app, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.node_count()));
}

void BM_BaselinePerTask(benchmark::State& state) {
  run_executor_bench(state, false);
}
BENCHMARK(BM_BaselinePerTask)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FaultTolerantPerTask(benchmark::State& state) {
  run_executor_bench(state, true);
}
BENCHMARK(BM_FaultTolerantPerTask)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ftdag

BENCHMARK_MAIN();
