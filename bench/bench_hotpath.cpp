// Hot-path microbenchmarks: the three per-task operations every traversal
// pays (hash-map probe, job spawn/retire, steal), plus fig4-style
// end-to-end runs on two apps so a scheduler change can be A/B'd against
// the committed BENCH_hotpath.json baseline with scripts/bench_compare.py.
//
//   map-find-hit    ShardedMap::find of present keys (the TRYINITCOMPUTE
//                   and notify-successor probe)
//   map-find-miss   find of absent keys (probe to the first empty slot)
//   map-mixed       insert_if_absent of fresh keys racing finds of already
//                   published ones, across table grows
//   spawn-churn     spawn -> run -> retire of trivial jobs (prices the
//                   JobNode allocation path)
//   spawn-tree      recursive binary spawn tree (the walk's real shape:
//                   every job both allocates and is allocated)
//   steal-pressure  one producer deque, everyone else stealing
//   e2e-<app>-*     bench_fig4's baseline/FT configurations on two apps
//
// Every row lands in --out (default BENCH_hotpath.json). --smoke shrinks
// all sizes to CI-viable values; the JSON schema is identical, so
// bench_compare.py --check-format gates it in CI.

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "support/assert.hpp"
#include "support/spin_lock.hpp"
#include "concurrent/sharded_map.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "support/xoshiro.hpp"

using namespace ftdag;

namespace {

struct Sizes {
  std::int64_t map_keys;     // populated keys for the find benchmarks
  std::int64_t map_ops;      // find/insert operations per thread
  std::int64_t spawn_jobs;   // jobs per spawn-churn repetition
  int tree_depth;            // spawn-tree depth (2^depth - 1 jobs)
  std::int64_t steal_jobs;   // jobs per steal-pressure repetition
  double e2e_scale;          // app scale for the end-to-end rows
  int e2e_reps;
};

Sizes full_sizes() { return {1 << 16, 1 << 20, 1 << 18, 16, 1 << 15, 0.5, 5}; }
Sizes smoke_sizes() { return {1 << 8, 1 << 12, 1 << 10, 6, 1 << 8, 0.12, 2}; }

struct Row {
  std::string name;
  int threads;
  double ns_per_op;  // microbench rows; 0 for e2e rows
  double mean_s;     // e2e rows; total seconds for microbench rows
  double std_s;
  std::uint64_t ops;
};

// Runs fn(thread_index) on `threads` std::threads, started together; returns
// elapsed seconds from release to last join.
template <typename Fn>
double timed_threads(int threads, Fn&& fn) {
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    ts.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) Backoff::cpu_relax();
      fn(t);
    });
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
  return timer.seconds();
}

double best_of(int reps, const std::function<double()>& run) {
  double best = run();
  for (int r = 1; r < reps; ++r) {
    const double s = run();
    if (s < best) best = s;
  }
  return best;
}

Row bench_map_find(const Sizes& sz, int threads, int reps, bool hit) {
  ShardedMap<int> map;
  for (std::int64_t k = 0; k < sz.map_keys; ++k)
    map.insert_if_absent(k, [k] { return new int(static_cast<int>(k)); });
  std::atomic<std::int64_t> sink{0};
  const double secs = best_of(reps, [&] {
    return timed_threads(threads, [&](int t) {
      Xoshiro256 rng(mix64(0x9E37u + static_cast<std::uint64_t>(t)));
      std::int64_t found = 0;
      for (std::int64_t i = 0; i < sz.map_ops; ++i) {
        const MapKey key =
            static_cast<MapKey>(rng.below(
                static_cast<std::uint64_t>(sz.map_keys))) +
            (hit ? 0 : sz.map_keys);
        found += map.find(key) != nullptr;
      }
      sink.fetch_add(found, std::memory_order_relaxed);
    });
  });
  const std::uint64_t ops =
      static_cast<std::uint64_t>(sz.map_ops) * static_cast<std::uint64_t>(threads);
  FTDAG_ASSERT(hit ? sink.load(std::memory_order_relaxed) > 0
                   : sink.load(std::memory_order_relaxed) == 0,
               "map benchmark keys landed on the wrong side");
  return {hit ? "map-find-hit" : "map-find-miss", threads,
          secs * 1e9 / static_cast<double>(ops), secs, 0.0, ops};
}

Row bench_map_mixed(const Sizes& sz, int threads, int reps) {
  // Thread 0 inserts fresh keys (forcing grows from a tiny initial table)
  // and publishes its progress; the rest find keys at or below the published
  // watermark, which must always hit. The ratio is the traversal's:
  // many probes per discovery insert.
  const std::int64_t inserts = sz.map_keys;
  std::atomic<std::int64_t> sink{0};
  const double secs = best_of(reps, [&] {
    ShardedMap<int> map(/*shards=*/8, /*initial_per_shard=*/8);
    std::atomic<std::int64_t> watermark{-1};
    return timed_threads(threads, [&](int t) {
      if (t == 0) {
        for (std::int64_t k = 0; k < inserts; ++k) {
          map.insert_if_absent(k, [k] { return new int(static_cast<int>(k)); });
          watermark.store(k, std::memory_order_release);
        }
      } else {
        Xoshiro256 rng(mix64(0xC0FFEEu + static_cast<std::uint64_t>(t)));
        std::int64_t misses = 0;
        for (std::int64_t i = 0; i < sz.map_ops; ++i) {
          const std::int64_t w = watermark.load(std::memory_order_acquire);
          if (w < 0) continue;
          const MapKey key =
              static_cast<MapKey>(rng.below(static_cast<std::uint64_t>(w + 1)));
          misses += map.find(key) == nullptr;
        }
        sink.fetch_add(misses, std::memory_order_relaxed);
      }
    });
  });
  FTDAG_ASSERT(sink.load(std::memory_order_relaxed) == 0,
               "published key missed by a concurrent reader");
  const std::uint64_t ops =
      static_cast<std::uint64_t>(inserts) +
      static_cast<std::uint64_t>(sz.map_ops) *
          static_cast<std::uint64_t>(threads > 1 ? threads - 1 : 0);
  return {"map-mixed", threads, secs * 1e9 / static_cast<double>(ops), secs,
          0.0, ops};
}

Row bench_spawn_churn(const Sizes& sz, int threads, int reps) {
  WorkStealingPool pool(static_cast<unsigned>(threads));
  const double secs = best_of(reps, [&] {
    Timer timer;
    pool.run_to_quiescence([&] {
      for (std::int64_t i = 0; i < sz.spawn_jobs; ++i) pool.spawn([] {});
    });
    return timer.seconds();
  });
  const std::uint64_t ops = static_cast<std::uint64_t>(sz.spawn_jobs);
  return {"spawn-churn", threads, secs * 1e9 / static_cast<double>(ops), secs,
          0.0, ops};
}

Row bench_spawn_tree(const Sizes& sz, int threads, int reps) {
  WorkStealingPool pool(static_cast<unsigned>(threads));
  struct Node {
    static void run(WorkStealingPool& p, int depth) {
      if (depth == 0) return;
      p.spawn([&p, depth] { run(p, depth - 1); });
      p.spawn([&p, depth] { run(p, depth - 1); });
    }
  };
  const double secs = best_of(reps, [&] {
    Timer timer;
    pool.run_to_quiescence([&] { Node::run(pool, sz.tree_depth); });
    return timer.seconds();
  });
  const std::uint64_t ops = (1ull << (sz.tree_depth + 1)) - 2;  // spawned jobs
  return {"spawn-tree", threads, secs * 1e9 / static_cast<double>(ops), secs,
          0.0, ops};
}

Row bench_steal_pressure(const Sizes& sz, int threads, int reps) {
  WorkStealingPool pool(static_cast<unsigned>(threads));
  const double secs = best_of(reps, [&] {
    Timer timer;
    pool.run_to_quiescence([&] {
      // All jobs land in the root worker's deque; with >1 workers every
      // other worker only eats through steals.
      for (std::int64_t i = 0; i < sz.steal_jobs; ++i)
        pool.spawn([] {
          volatile int x = 0;
          for (int j = 0; j < 64; ++j) x = x + j;
        });
    });
    return timer.seconds();
  });
  const std::uint64_t ops = static_cast<std::uint64_t>(sz.steal_jobs);
  return {"steal-pressure", threads, secs * 1e9 / static_cast<double>(ops),
          secs, 0.0, ops};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  std::vector<int> threads;
  for (std::int64_t t :
       cli.get_positive_int_list("threads", smoke ? "2" : "1,2"))
    threads.push_back(static_cast<int>(t));
  const int reps = static_cast<int>(cli.get_positive_int("reps", smoke ? 2 : 5));
  const std::string out_path = cli.get_string("out", "BENCH_hotpath.json");
  const std::string apps_flag = cli.get_string("e2e-apps", "lcs,fw");
  cli.check_unknown();

  const Sizes sz = smoke ? smoke_sizes() : full_sizes();

  print_header("hot-path microbenchmarks + fig4-style end-to-end",
               "fault-free overhead claim (Figs. 4-7): steady-state cost");

  std::vector<Row> rows;
  for (int t : threads) {
    rows.push_back(bench_map_find(sz, t, reps, /*hit=*/true));
    rows.push_back(bench_map_find(sz, t, reps, /*hit=*/false));
    rows.push_back(bench_map_mixed(sz, t, reps));
    rows.push_back(bench_spawn_churn(sz, t, reps));
    rows.push_back(bench_spawn_tree(sz, t, reps));
    rows.push_back(bench_steal_pressure(sz, t, reps));
  }

  // Fig4-style end-to-end: the microbench wins must survive composition
  // with real task bodies, or they are not wins.
  const int e2e_threads = threads.back();
  WorkStealingPool pool(static_cast<unsigned>(e2e_threads));
  for (const std::string& name : split_csv(apps_flag)) {
    AppConfig cfg = scale_config(default_config(name), sz.e2e_scale);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    RepeatedRuns base = run_baseline(*app, pool, sz.e2e_reps);
    RepeatedRuns ft = run_ft(*app, pool, sz.e2e_reps);
    const Summary bs = base.time_summary();
    const Summary fs = ft.time_summary();
    rows.push_back({"e2e-" + name + "-baseline", e2e_threads, 0.0, bs.mean,
                    bs.stddev, 0});
    rows.push_back(
        {"e2e-" + name + "-ft", e2e_threads, 0.0, fs.mean, fs.stddev, 0});
  }

  Table t({"bench", "P", "ns/op", "ops", "total(s)"});
  JsonRows json;
  for (const Row& r : rows) {
    t.add_row({r.name, strf("%d", r.threads),
               r.ns_per_op > 0 ? strf("%.1f", r.ns_per_op) : "-",
               r.ops > 0 ? strf("%llu", (unsigned long long)r.ops) : "-",
               strf("%.4f", r.mean_s)});
    json.field("name", r.name)
        .field("threads", r.threads)
        .field("ns_per_op", r.ns_per_op, 3)
        .field("mean_s", r.mean_s)
        .field("std_s", r.std_s)
        .field("ops", r.ops);
    json.end_row();
  }
  t.print();

  // Steal-loop observability: the SchedStats counters the tuning targets.
  const SchedStats ss = pool.stats();
  std::printf(
      "\ne2e pool stats: jobs=%llu steals=%llu/%llu batch=%llu rounds=%llu "
      "pooled=%llu heap=%llu\n",
      (unsigned long long)ss.jobs_executed,
      (unsigned long long)ss.steals_succeeded,
      (unsigned long long)ss.steals_attempted,
      (unsigned long long)ss.steal_batch, (unsigned long long)ss.probe_rounds,
      (unsigned long long)ss.jobs_pooled, (unsigned long long)ss.jobs_heap);

  return json.write_file(out_path) ? 0 : 1;
}
