// Ablation: memory reuse vs single assignment (the paper's Section VI
// explicitly evaluated both strategies and chose reuse for everything but
// LCS; it also notes recovery chains "could be ameliorated by retaining the
// intermediate versions in memory").
//
// For each benchmark that supports both layouts, reports: storage bytes,
// fault-free FT time, and the recovery cost of v=last after-compute faults
// - where full reuse pays version-chain re-execution and single assignment
// pays only the victims.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1");
  const std::uint64_t faults = static_cast<std::uint64_t>(
      cli.get_int("faults", 4));
  cli.check_unknown();

  print_header("Ablation - memory reuse vs single assignment",
               "Section VI: 'We evaluated single-assignment and memory "
               "reuse strategies'");

  const int threads = opt.threads.front();
  Table t({"bench", "layout", "storage(KB)", "ft-nofault(s)", "faulty(s)",
           "overhead(%)", "measured-reexec"});
  for (const std::string& name : opt.apps) {
    if (name == "lcs") continue;  // inherently single assignment

    // Plan once on the reuse layout so both layouts get the *same* victims,
    // and pick the deepest v=last victims (longest implied chains) so the
    // layouts' difference is the chains, not the victim choice.
    std::vector<PlannedFault> victims;
    {
      AppConfig cfg = config_for(cli, opt, name);
      auto app = make_app(name, cfg);
      FaultPlanner planner(*app);
      FaultPlanSpec spec;
      spec.phase = FaultPhase::kAfterCompute;
      spec.type = VictimType::kVersionLast;
      spec.target_count = ~std::uint64_t{0} >> 1;  // exhaust the pool
      spec.seed = opt.seed;
      FaultPlan plan = planner.plan(spec);
      std::sort(plan.faults.begin(), plan.faults.end(),
                [](const PlannedFault& a, const PlannedFault& b) {
                  return a.implied_reexecutions > b.implied_reexecutions;
                });
      plan.faults.resize(
          std::min<std::size_t>(plan.faults.size(), faults));
      victims = std::move(plan.faults);
    }

    for (int retention : {-1, 0}) {
      AppConfig cfg = config_for(cli, opt, name);
      cfg.retention = retention;
      auto app = make_app(name, cfg);
      (void)app->reference_checksum();
      WorkStealingPool pool(static_cast<unsigned>(threads));
      RepeatedRuns clean = run_ft(*app, pool, opt.reps);

      PlannedFaultInjector injector(victims);
      RepeatedRuns faulty = run_ft(*app, pool, opt.reps, &injector);

      t.add_row({name, retention < 0 ? "reuse" : "single-assign",
                 strf("%zu", app->block_store().total_storage_bytes() / 1024),
                 strf("%.3f", clean.mean_seconds()),
                 strf("%.3f", faulty.mean_seconds()),
                 strf("%+.2f", overhead_pct(clean.mean_seconds(),
                                            faulty.mean_seconds())),
                 strf("%.0f", faulty.reexecution_summary().mean)});
    }
  }
  t.print();
  std::printf(
      "\nExpected shape: single-assign re-executes ~= the victim count; the\n"
      "reuse layouts re-execute whole version chains (LU/Cholesky) at a\n"
      "fraction of the storage. FW's two-version scheme already caps its\n"
      "chains - the paper's stated reason for retaining two versions.\n");
  return 0;
}
