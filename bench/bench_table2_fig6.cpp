// Reproduces Table II and Figure 6: failures injected in the AFTER-NOTIFY
// phase. Their cost is intrinsically timing-dependent — a failed task whose
// successors all finished is never recovered; one whose output has been
// partially overwritten triggers chains — so the paper reports the measured
// re-execution statistics (avg/min/max/std, Table II) and the resulting
// overheads (Fig. 6) rather than planned counts.
//
// Scenarios: fixed loss (512-analog) on v=0 / v=rand / v=last, plus 2% and
// 5% fractions on v=rand.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1");
  const double count_frac = cli.get_double("count-frac", 0.01);
  cli.check_unknown();

  print_header(
      "Table II + Figure 6 - after-notify failures",
      "Table II: re-executed-task stats; Fig. 6: after-notify overheads");

  struct Scen {
    VictimType type;
    double fraction;  // 0 = use the fixed count
    const char* label;
  };
  const Scen scens[] = {{VictimType::kVersionZero, 0.0, "fixed,v=0"},
                        {VictimType::kVersionRand, 0.0, "fixed,v=rand"},
                        {VictimType::kVersionLast, 0.0, "fixed,v=last"},
                        {VictimType::kVersionRand, 0.02, "2%,v=rand"},
                        {VictimType::kVersionRand, 0.05, "5%,v=rand"}};
  const int threads = opt.threads.front();

  Table t({"bench", "scenario", "intended", "avg", "min", "max", "std",
           "overhead(%)"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    WorkStealingPool pool(static_cast<unsigned>(threads));
    RepeatedRuns clean = run_ft(*app, pool, opt.reps);
    const double base = clean.mean_seconds();
    FaultPlanner planner(*app);
    const std::uint64_t fixed = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               count_frac * static_cast<double>(planner.total_tasks())));

    for (const Scen& sc : scens) {
      FaultPlanSpec spec;
      spec.phase = FaultPhase::kAfterNotify;
      spec.type = sc.type;
      if (sc.fraction > 0)
        spec.target_fraction = sc.fraction;
      else
        spec.target_count = fixed;
      spec.seed = opt.seed;
      FaultPlan plan = planner.plan(spec);
      PlannedFaultInjector injector(plan.faults);
      // Vary the seed across repetitions like the paper's repeated trials:
      // the plan is fixed, but scheduling nondeterminism moves the counts.
      RepeatedRuns faulty = run_ft(*app, pool, opt.reps, &injector);
      const Summary re = faulty.reexecution_summary();
      t.add_row({name, sc.label,
                 strf("%llu", (unsigned long long)plan.intended_reexecutions),
                 strf("%.0f", re.mean), strf("%.0f", re.min),
                 strf("%.0f", re.max), strf("%.1f", re.stddev),
                 strf("%+.2f", overhead_pct(base, faulty.mean_seconds()))});
    }
  }
  t.print();
  std::printf(
      "\nExpected shape (paper's Table II): v=last chains dominate for the\n"
      "full-reuse benchmarks (LU, Cholesky, SW) with large spread; LCS is\n"
      "flat across types (single assignment, <=3 uses per block); measured\n"
      "counts may under-run the intent when successors finished first.\n");
  return 0;
}
