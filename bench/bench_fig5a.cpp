// Reproduces Figure 5(a): recovery overhead when injected failures imply a
// fixed number of task re-executions (the paper's 512 ~ 0.8% of T), for
// every combination of failure time {before compute, after compute} and
// victim type {v=0, v=rand, v=last}.
//
// As in the paper, overhead is relative to the fault-free FT execution; the
// runs are sequential (P=1) unless --threads says otherwise.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1");
  const double count_frac = cli.get_double("count-frac", 0.01);
  // Optional absolute-count sweep (the paper repeated Fig. 5a with 1, 8 and
  // 64 task re-executions and saw no statistically significant overhead).
  std::vector<std::uint64_t> extra_counts;
  for (const std::string& c : cli.get_list("counts", ""))
    extra_counts.push_back(
        static_cast<std::uint64_t>(std::strtoull(c.c_str(), nullptr, 10)));
  cli.check_unknown();

  print_header(
      "Figure 5(a) - overhead vs failure time and task type, fixed loss",
      "Fig. 5(a): 512-task loss, {before,after} compute x {v=0,rand,last}");

  const FaultPhase phases[] = {FaultPhase::kBeforeCompute,
                               FaultPhase::kAfterCompute};
  const VictimType types[] = {VictimType::kVersionZero,
                              VictimType::kVersionRand,
                              VictimType::kVersionLast};

  const int threads = opt.threads.front();
  Table t({"bench", "scenario", "target", "intended", "measured-reexec",
           "recoveries", "ft-nofault(s)", "faulty(s)", "overhead(%)"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();
    WorkStealingPool pool(static_cast<unsigned>(threads));
    RepeatedRuns clean = run_ft(*app, pool, opt.reps);
    const double base = clean.mean_seconds();
    FaultPlanner planner(*app);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               count_frac * static_cast<double>(planner.total_tasks())));

    auto run_scenario = [&](FaultPhase phase, VictimType type,
                            std::uint64_t count) {
      FaultPlanSpec spec;
      spec.phase = phase;
      spec.type = type;
      spec.target_count = count;
      spec.seed = opt.seed;
      FaultPlan plan = planner.plan(spec);
      PlannedFaultInjector injector(plan.faults);
      RepeatedRuns faulty = run_ft(*app, pool, opt.reps, &injector);
      const Summary re = faulty.reexecution_summary();
      t.add_row({name,
                 strf("%s,%s,n=%llu", fault_phase_name(phase),
                      victim_type_name(type), (unsigned long long)count),
                 strf("%llu", (unsigned long long)count),
                 strf("%llu", (unsigned long long)plan.intended_reexecutions),
                 strf("%.0f", re.mean),
                 strf("%llu",
                      (unsigned long long)faulty.reports.back().recoveries),
                 strf("%.3f", base), strf("%.3f", faulty.mean_seconds()),
                 strf("%+.2f", overhead_pct(base, faulty.mean_seconds()))});
    };

    for (FaultPhase phase : phases)
      for (VictimType type : types) run_scenario(phase, type, target);
    // The paper's small-count repeats (1/8/64): v=rand, both phases.
    for (std::uint64_t count : extra_counts)
      for (FaultPhase phase : phases)
        run_scenario(phase, VictimType::kVersionRand, count);
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): before-compute rows ~0%% (no computed work\n"
      "lost); after-compute rows small but positive (<1%% at this loss\n"
      "level); no systematic difference across task types at fixed loss.\n");
  return 0;
}
