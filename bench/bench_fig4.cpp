// Reproduces Figure 4: speedup of the baseline scheduler vs. the
// fault-tolerant scheduler in the ABSENCE of faults, across thread counts.
//
// The paper's claim is that the fault-tolerance structures (bit vectors,
// life numbers, try/catch) cost nothing measurable without faults — the two
// curves coincide for every benchmark except FW, whose two-version block
// scheme costs ~10% at scale. The key reproducible quantity on any machine
// is the FT/baseline ratio at equal thread count (this container has one
// core, so absolute speedup saturates at 1; the overhead column is the
// paper's claim).

#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "support/table.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchOptions opt = parse_bench_options(cli, "1,2,4");
  cli.check_unknown();

  print_header("Figure 4 - no-fault overhead of FT support vs baseline",
               "Fig. 4: speedup, baseline vs w/ FT support, no faults");
  // --replicate shifts the FT column's detection posture (default off, the
  // paper's configuration); the overhead column then prices that posture.
  ExecutorOptions ft_options;
  ft_options.replication = opt.replication;
  if (opt.replication.enabled())
    std::printf("FT runs with --replicate=%s\n\n",
                opt.replication.to_string().c_str());

  Table t({"bench", "P", "baseline(s)", "ft(s)", "ft-overhead(%)",
           "speedup-base", "speedup-ft"});
  for (const std::string& name : opt.apps) {
    AppConfig cfg = config_for(cli, opt, name);
    auto app = make_app(name, cfg);
    (void)app->reference_checksum();  // cache outside the timed region

    double base_p1 = 0.0;
    for (int threads : opt.threads) {
      WorkStealingPool pool(static_cast<unsigned>(threads));
      RepeatedRuns base = run_baseline(*app, pool, opt.reps);
      RepeatedRuns ft = run_ft(*app, pool, opt.reps, nullptr, ft_options);
      const Summary bs = base.time_summary();
      const Summary fs = ft.time_summary();
      if (threads == opt.threads.front()) base_p1 = bs.mean;
      t.add_row({name, strf("%d", threads), format_mean_std(bs, 3),
                 format_mean_std(fs, 3),
                 strf("%+.2f", overhead_pct(bs.mean, fs.mean)),
                 strf("%.2f", base_p1 / bs.mean),
                 strf("%.2f", base_p1 / fs.mean)});
    }
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): ft-overhead within noise for LCS/SW/LU/\n"
      "Cholesky; ~10%% for FW (two retained versions per block). Absolute\n"
      "speedups require physical cores; this container exposes one.\n");
  return 0;
}
