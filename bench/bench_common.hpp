#pragma once
// Shared CLI plumbing for the paper-reproduction bench binaries.
//
// Common flags:
//   --apps=lcs,lu,cholesky,fw,sw   subset of benchmarks
//   --reps=N                       repetitions per configuration (paper: 10)
//   --scale=F                      shrink the default grids (0 < F <= 1)
//   --threads=a,b,c                thread counts for scaling sweeps
//   --seed=S                       fault-plan seed
//   --n-<app>, --block-<app>       explicit size overrides per app
//   --replicate=<policy>           off | all | sample:<p> | cost:<bytes>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_config.hpp"
#include "apps/app_registry.hpp"
#include "persist/durability.hpp"
#include "replication/replication_policy.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace ftdag {

struct BenchOptions {
  std::vector<std::string> apps;
  std::vector<int> threads;
  int reps = 5;
  double scale = 1.0;
  std::uint64_t seed = 12345;
  ReplicationPolicy replication;
};

inline BenchOptions parse_bench_options(const Cli& cli,
                                        const char* default_threads = "1,2,4") {
  BenchOptions o;
  for (const std::string& a : cli.get_list("apps", "lcs,lu,cholesky,fw,sw"))
    o.apps.push_back(a);
  for (std::int64_t t : cli.get_positive_int_list("threads", default_threads))
    o.threads.push_back(static_cast<int>(t));
  o.reps = static_cast<int>(cli.get_positive_int("reps", 5));
  o.scale = cli.get_double("scale", 1.0);
  o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 12345));
  o.replication = ReplicationPolicy::parse(cli.get_string("replicate", "off"));
  // Register the per-app override flags up front: config_for only queries
  // them for the apps actually selected, which would make check_unknown()
  // reject documented flags for deselected apps (and --help miss them).
  for (const std::string& app : paper_benchmarks()) {
    const AppConfig cfg = scale_config(default_config(app), o.scale);
    (void)cli.get_int("n-" + app, cfg.n);
    (void)cli.get_int("block-" + app, cfg.block);
  }
  return o;
}

inline AppConfig config_for(const Cli& cli, const BenchOptions& o,
                            const std::string& app) {
  AppConfig cfg = scale_config(default_config(app), o.scale);
  cfg.n = cli.get_int("n-" + app, cfg.n);
  cfg.block = cli.get_int("block-" + app, cfg.block);
  return cfg;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("=== ftdag reproduction: %s ===\n", what);
  std::printf("Paper reference: %s (Kurt et al., SC 2014)\n\n", paper_ref);
}

// Machine-readable bench output: one flat JSON object per row, written as
// an array with the shared "Wrote <path>" epilogue. Every bench used to
// hand-roll this framing; the helper keeps the emitted bytes identical
// ("[\n  {...},\n  {...}\n]\n") so committed BENCH_*.json baselines and
// scripts/bench_compare.py --check-format see no schema change.
class JsonRows {
 public:
  JsonRows& field(const char* key, const std::string& value) {
    return raw(key, "\"" + value + "\"");
  }
  JsonRows& field(const char* key, const char* value) {
    return field(key, std::string(value));
  }
  JsonRows& field(const char* key, int value) {
    return raw(key, strf("%d", value));
  }
  JsonRows& field(const char* key, std::uint64_t value) {
    return raw(key, strf("%llu", (unsigned long long)value));
  }
  JsonRows& field(const char* key, double value, int precision = 6) {
    return raw(key, strf("%.*f", precision, value));
  }
  // Preformatted value: "null", or a number already carrying its precision.
  JsonRows& raw(const char* key, const std::string& value) {
    if (!row_.empty()) row_ += ",";
    row_ += strf("\"%s\":", key) + value;
    return *this;
  }
  void end_row() {
    rows_.push_back(row_);
    row_.clear();
  }

  std::string str() const {
    std::string out = "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "  {" + rows_[i] + "}";
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
  }

  // Writes the array to `path`; reports "Wrote <path>" or a warning.
  // Returns false on I/O failure so mains can propagate a nonzero exit.
  bool write_file(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    const std::string json = str();
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string row_;                 // fields of the row being assembled
  std::vector<std::string> rows_;  // completed rows
};

// Durability flags shared by persistence-aware benches:
//   --persist-dir=PATH   enable the durability subsystem in PATH
//   --wal-sync=MODE      none | batch | every
//   --wal-flush-us=N     journal flush interval in microseconds (>= 1):
//                        an unsynced kBatch tail older than this is
//                        fsynced even below the batch-records threshold
//   --snapshot-every=N   snapshot + WAL rotation cadence (0 = never)
// Registered only by benches that call this, so the others keep rejecting
// the flags loudly via check_unknown().
inline persist::DurabilityOptions parse_durability_options(const Cli& cli) {
  persist::DurabilityOptions o;
  o.dir = cli.get_string("persist-dir", "");
  const std::string sync = cli.get_string("wal-sync", "batch");
  if (!persist::parse_wal_sync(sync, &o.sync)) {
    std::fprintf(stderr, "unknown --wal-sync=%s (none|batch|every)\n",
                 sync.c_str());
    std::exit(2);
  }
  o.flush_interval_us = static_cast<std::uint64_t>(cli.get_positive_int(
      "wal-flush-us", static_cast<std::int64_t>(o.flush_interval_us)));
  o.snapshot_every =
      static_cast<std::uint64_t>(cli.get_nonneg_int("snapshot-every", 0));
  return o;
}

}  // namespace ftdag
