#pragma once
// Shared CLI plumbing for the paper-reproduction bench binaries.
//
// Common flags:
//   --apps=lcs,lu,cholesky,fw,sw   subset of benchmarks
//   --reps=N                       repetitions per configuration (paper: 10)
//   --scale=F                      shrink the default grids (0 < F <= 1)
//   --threads=a,b,c                thread counts for scaling sweeps
//   --seed=S                       fault-plan seed
//   --n-<app>, --block-<app>       explicit size overrides per app
//   --replicate=<policy>           off | all | sample:<p> | cost:<bytes>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_config.hpp"
#include "apps/app_registry.hpp"
#include "replication/replication_policy.hpp"
#include "support/cli.hpp"

namespace ftdag {

struct BenchOptions {
  std::vector<std::string> apps;
  std::vector<int> threads;
  int reps = 5;
  double scale = 1.0;
  std::uint64_t seed = 12345;
  ReplicationPolicy replication;
};

inline BenchOptions parse_bench_options(const Cli& cli,
                                        const char* default_threads = "1,2,4") {
  BenchOptions o;
  for (const std::string& a : cli.get_list("apps", "lcs,lu,cholesky,fw,sw"))
    o.apps.push_back(a);
  for (const std::string& t : cli.get_list("threads", default_threads))
    o.threads.push_back(static_cast<int>(std::strtol(t.c_str(), nullptr, 10)));
  o.reps = static_cast<int>(cli.get_int("reps", 5));
  o.scale = cli.get_double("scale", 1.0);
  o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 12345));
  o.replication = ReplicationPolicy::parse(cli.get_string("replicate", "off"));
  // Register the per-app override flags up front: config_for only queries
  // them for the apps actually selected, which would make check_unknown()
  // reject documented flags for deselected apps (and --help miss them).
  for (const std::string& app : paper_benchmarks()) {
    const AppConfig cfg = scale_config(default_config(app), o.scale);
    (void)cli.get_int("n-" + app, cfg.n);
    (void)cli.get_int("block-" + app, cfg.block);
  }
  return o;
}

inline AppConfig config_for(const Cli& cli, const BenchOptions& o,
                            const std::string& app) {
  AppConfig cfg = scale_config(default_config(app), o.scale);
  cfg.n = cli.get_int("n-" + app, cfg.n);
  cfg.block = cli.get_int("block-" + app, cfg.block);
  return cfg;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("=== ftdag reproduction: %s ===\n", what);
  std::printf("Paper reference: %s (Kurt et al., SC 2014)\n\n", paper_ref);
}

}  // namespace ftdag
