// Fault storm: arbitrary numbers of failures, including failures during
// recovery, on an irregular random DAG.
//
// Demonstrates the paper's strongest claim (Guarantee 6 + Theorem 1): the
// execution converges to the exact fault-free result no matter how many
// tasks fail or when. Sweeps fault density from 0% to 100% of tasks with
// mixed before-compute / after-compute / after-notify injection points and
// prints the recovery work at each level.
//
// Usage: fault_storm [--layers=16] [--width=16] [--threads=4] [--seed=3]

#include <cstdio>
#include <vector>

#include "apps/random_dag.hpp"
#include "fault/fault_injector.hpp"
#include "harness/experiment.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/xoshiro.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  RandomDagSpec spec;
  spec.layers = static_cast<int>(cli.get_int("layers", 16));
  spec.width = static_cast<int>(cli.get_int("width", 16));
  spec.extra_degree = static_cast<int>(cli.get_int("degree", 3));
  spec.work_iters = static_cast<int>(cli.get_int("work", 2000));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const int threads = static_cast<int>(cli.get_positive_int("threads", 4));
  cli.check_unknown();

  RandomDagProblem problem(spec);
  std::vector<TaskKey> keys;
  problem.all_tasks(keys);
  std::printf("random DAG: %d layers x %d nodes, %zu tasks, %d threads\n\n",
              spec.layers, spec.width, keys.size(), threads);

  WorkStealingPool pool(static_cast<unsigned>(threads));
  Table t({"faulty-tasks", "injected", "caught", "recoveries", "re-executed",
           "time(s)", "result"});
  for (int pct : {0, 10, 25, 50, 75, 100}) {
    // Mixed-phase plan over pct% of all tasks.
    Xoshiro256 rng(spec.seed + pct);
    std::vector<TaskKey> shuffled = keys;
    for (std::size_t i = shuffled.size(); i > 1; --i)
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    std::vector<PlannedFault> faults;
    const std::size_t count = shuffled.size() * pct / 100;
    for (std::size_t i = 0; i < count; ++i)
      faults.push_back(
          {shuffled[i], static_cast<FaultPhase>(rng.below(3)), 1});
    PlannedFaultInjector injector(std::move(faults));

    RepeatedRuns runs = run_ft(problem, pool, 1, &injector);  // validates
    const ExecReport& r = runs.reports[0];
    t.add_row({strf("%d%%", pct), strf("%llu", (unsigned long long)r.injected),
               strf("%llu", (unsigned long long)r.faults_caught),
               strf("%llu", (unsigned long long)r.recoveries),
               strf("%llu", (unsigned long long)r.re_executed),
               strf("%.3f", r.seconds), "exact"});
  }
  t.print();
  std::printf(
      "\nEvery row's result checksum matched the sequential reference\n"
      "(run_ft aborts otherwise) - the paper's Theorem 1 in action.\n");
  return 0;
}
