// Wavefront sequence alignment: Smith-Waterman with memory reuse.
//
// The motivating workload from the paper's benchmark set: a blocked local
// sequence alignment whose boundary buffers are recycled along diagonal
// chains (storage O(W) boundaries instead of O(W^2)). Demonstrates the
// dynamic task graph expanding from the sink, and the reuse-induced
// recovery chains when a fault strikes a task deep in a version chain.
//
// Usage: wavefront_alignment [--n=4096] [--block=128] [--threads=4]
//                            [--inject] [--seed=9]

#include <cstdio>

#include "apps/smith_waterman.hpp"
#include "fault/fault_plan.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"
#include "support/cli.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  AppConfig cfg;
  cfg.n = cli.get_int("n", 4096);
  cfg.block = cli.get_int("block", 128);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const int threads = static_cast<int>(cli.get_positive_int("threads", 4));
  const bool inject = cli.get_bool("inject", true);
  cli.check_unknown();

  SmithWatermanProblem problem(cfg);
  const GraphMetrics m = analyze_graph(problem);
  std::printf(
      "Smith-Waterman: sequences of length %lld, %lldx%lld blocks\n"
      "task graph: %zu tasks, %zu dependences, span %zu\n"
      "reused boundary storage: %zu KB (single-assignment would need %zu KB)\n",
      (long long)cfg.n, (long long)cfg.block, (long long)cfg.block, m.tasks,
      m.edges, m.span, problem.block_store().total_storage_bytes() / 1024,
      m.tasks * (2 * cfg.block + 1) * sizeof(std::int32_t) / 1024);

  WorkStealingPool pool(static_cast<unsigned>(threads));
  RepeatedRuns clean = run_ft(problem, pool, 1);
  std::printf("\nbest local alignment score: %d  (%.3fs, %d threads)\n",
              problem.best_score(), clean.mean_seconds(), threads);

  if (inject) {
    // Fault on a v=last task: with full reuse, recovering it re-executes
    // the producers of every earlier version of its diagonal chain.
    FaultPlanner planner(problem);
    FaultPlanSpec spec;
    spec.phase = FaultPhase::kAfterCompute;
    spec.type = VictimType::kVersionLast;
    spec.target_count = 1;
    spec.seed = cfg.seed;
    FaultPlan plan = planner.plan(spec);
    PlannedFaultInjector injector(plan.faults);
    RepeatedRuns faulty = run_ft(problem, pool, 1, &injector);
    const ExecReport& r = faulty.reports[0];
    std::printf(
        "single v=last fault: score=%d (unchanged), %llu tasks re-executed\n"
        "  (the version chain of the victim's diagonal), %.3fs (%+.1f%%)\n",
        problem.best_score(), (unsigned long long)r.re_executed,
        faulty.mean_seconds(),
        overhead_pct(clean.mean_seconds(), faulty.mean_seconds()));
  }
  return 0;
}
