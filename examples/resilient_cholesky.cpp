// Resilient dense factorization: Cholesky under a fault storm.
//
// Runs the blocked Cholesky benchmark three ways — baseline scheduler,
// fault-tolerant scheduler without faults, and fault-tolerant scheduler
// with a planned set of after-compute failures on v=last tasks (the paper's
// worst case for in-place reuse: every failure drags its block's whole
// version chain back through re-execution) — and verifies that the factors
// are bitwise identical in all three.
//
// Usage: resilient_cholesky [--n=1280] [--block=64] [--threads=4]
//                           [--faults=8] [--seed=5]

#include <cstdio>

#include "apps/cholesky.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/cli.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  AppConfig cfg;
  cfg.n = cli.get_int("n", 640);
  cfg.block = cli.get_int("block", 64);
  const int threads = static_cast<int>(cli.get_positive_int("threads", 4));
  const int fault_count = static_cast<int>(cli.get_int("faults", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  cli.check_unknown();

  CholeskyProblem problem(cfg);
  WorkStealingPool pool(static_cast<unsigned>(threads));
  std::printf("Cholesky %lldx%lld, block %lld, %d threads\n", (long long)cfg.n,
              (long long)cfg.n, (long long)cfg.block, threads);

  RepeatedRuns base = run_baseline(problem, pool, 1);
  std::printf("baseline        : %.3fs (%llu tasks)\n", base.mean_seconds(),
              (unsigned long long)base.reports[0].computes);

  RepeatedRuns ft = run_ft(problem, pool, 1);
  std::printf("ft, no faults   : %.3fs (overhead %+.1f%%)\n",
              ft.mean_seconds(),
              overhead_pct(base.mean_seconds(), ft.mean_seconds()));

  FaultPlanner planner(problem);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = static_cast<std::uint64_t>(fault_count);
  spec.seed = seed;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);

  RepeatedRuns faulty = run_ft(problem, pool, 1, &injector);
  const ExecReport& r = faulty.reports[0];
  std::printf(
      "ft, %zu v=last faults: %.3fs (overhead %+.1f%%)\n"
      "  injected=%llu caught=%llu recoveries=%llu resets=%llu "
      "re-executed=%llu (intended %llu)\n",
      plan.faults.size(), faulty.mean_seconds(),
      overhead_pct(ft.mean_seconds(), faulty.mean_seconds()),
      (unsigned long long)r.injected, (unsigned long long)r.faults_caught,
      (unsigned long long)r.recoveries, (unsigned long long)r.resets,
      (unsigned long long)r.re_executed,
      (unsigned long long)plan.intended_reexecutions);

  // run_ft already validated the checksum against the sequential reference
  // after every run; make the conclusion explicit.
  std::printf("factors identical across all three runs: yes\n");
  return 0;
}
