// Quickstart: define a task graph, run it fault-tolerantly, inject a fault.
//
// The graph is a tiny reduction: 8 leaf tasks each sum a slice of an array,
// a binary combine tree adds them up, and the root (sink) holds the total.
// Everything the scheduler needs is the TaskGraphProblem interface below:
// keys, sink, predecessors/successors, and a compute function that reads
// and writes versioned data blocks.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <numeric>
#include <vector>

#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"
#include "runtime/scheduler.hpp"

using namespace ftdag;

// A perfect binary reduction tree with `leaves` leaf tasks. Keys are heap
// indices: 1 is the root (sink), node k has children 2k and 2k+1; leaves
// are keys in [leaves, 2*leaves).
class ReductionProblem final : public TaskGraphProblem {
 public:
  ReductionProblem(int leaves, std::vector<std::int64_t> data)
      : leaves_(leaves), data_(std::move(data)) {
    store_.set_retention(0);  // single assignment: one version per task
    blocks_.resize(2 * leaves_);
    for (TaskKey k = 1; k < 2 * leaves_; ++k) {
      blocks_[k] = store_.add_block(sizeof(std::int64_t), 1);
      store_.set_producer(blocks_[k], 0, k);
    }
  }

  std::string name() const override { return "reduction"; }
  TaskKey sink() const override { return 1; }

  void predecessors(TaskKey key, KeyList& out) const override {
    if (key < leaves_) {  // interior node: children are predecessors
      out.push_back(2 * key);
      out.push_back(2 * key + 1);
    }
  }
  void successors(TaskKey key, KeyList& out) const override {
    if (key > 1) out.push_back(key / 2);
  }

  void compute(TaskKey key, ComputeContext& ctx) override {
    std::int64_t sum = 0;
    if (key >= leaves_) {  // leaf: sum my slice of the (resilient) input
      const std::size_t chunk = data_.size() / leaves_;
      const std::size_t begin = (key - leaves_) * chunk;
      sum = std::accumulate(data_.begin() + begin,
                            data_.begin() + begin + chunk, std::int64_t{0});
    } else {  // interior: add the children's results
      sum = *ctx.read<std::int64_t>(blocks_[2 * key], 0) +
            *ctx.read<std::int64_t>(blocks_[2 * key + 1], 0);
    }
    *ctx.write<std::int64_t>(blocks_[key], 0) = sum;
  }

  void all_tasks(std::vector<TaskKey>& out) const override {
    for (TaskKey k = 1; k < 2 * leaves_; ++k) out.push_back(k);
  }
  void outputs(TaskKey key, OutputList& out) const override {
    out.push_back({blocks_[key], 0, 0});
  }
  void reset_data() override { store_.reset_states(); }

  std::uint64_t result_checksum() const override {
    return static_cast<std::uint64_t>(total());
  }
  std::uint64_t reference_checksum() override {
    return static_cast<std::uint64_t>(
        std::accumulate(data_.begin(), data_.end(), std::int64_t{0}));
  }

  std::int64_t total() const {
    return *static_cast<const std::int64_t*>(store_.read(blocks_[1], 0));
  }

 private:
  int leaves_;
  std::vector<std::int64_t> data_;
  std::vector<BlockId> blocks_;
};

int main() {
  std::vector<std::int64_t> data(1 << 16);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::int64_t>(i % 97);
  ReductionProblem problem(8, std::move(data));

  WorkStealingPool pool(4);
  FaultTolerantExecutor executor;

  // 1. Fault-free run.
  ExecReport clean = executor.execute(problem, pool);
  std::printf("fault-free : total=%lld  tasks=%llu  recoveries=%llu\n",
              (long long)problem.total(),
              (unsigned long long)clean.computes,
              (unsigned long long)clean.recoveries);

  // 2. Same graph, but task 2 (an interior combine node) is corrupted right
  //    after it computes; the runtime detects the corruption, recovers the
  //    task, re-executes it, and the result is identical.
  problem.reset_data();
  PlannedFaultInjector injector({{2, FaultPhase::kAfterCompute, 1}});
  ExecReport faulty = executor.execute(problem, pool, &injector);
  std::printf("with fault : total=%lld  tasks=%llu  recoveries=%llu "
              "re-executed=%llu\n",
              (long long)problem.total(),
              (unsigned long long)faulty.computes,
              (unsigned long long)faulty.recoveries,
              (unsigned long long)faulty.re_executed);

  const bool ok = problem.result_checksum() == problem.reference_checksum();
  std::printf("results match reference: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
