// Execution tracing: visualize what recovery does.
//
// Runs LU under a handful of v=last faults with the ExecutionTrace attached
// and writes a Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file) showing per-worker compute
// spans, the recovery spans, and the fault-observation instants. Also
// prints a summary of where the re-executed time went.
//
// Usage: trace_recovery [--n=512] [--block=64] [--threads=4] [--faults=3]
//                       [--out=trace.json]

#include <cstdio>
#include <fstream>

#include "apps/lu.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_plan.hpp"
#include "support/cli.hpp"

using namespace ftdag;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  AppConfig cfg;
  cfg.n = cli.get_int("n", 512);
  cfg.block = cli.get_int("block", 64);
  const int threads = static_cast<int>(cli.get_positive_int("threads", 4));
  const std::uint64_t faults =
      static_cast<std::uint64_t>(cli.get_int("faults", 3));
  const std::string out_path = cli.get_string("out", "trace.json");
  cli.check_unknown();

  LuProblem problem(cfg);
  FaultPlanner planner(problem);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = faults;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);

  WorkStealingPool pool(static_cast<unsigned>(threads));
  ExecutionTrace trace(pool.thread_count());
  FaultTolerantExecutor exec;
  problem.reset_data();
  ExecReport r = exec.execute(problem, pool, &injector, &trace);

  double compute_time = 0.0, recovery_time = 0.0;
  for (const TraceRecord& rec : trace.merged()) {
    if (rec.kind == TraceKind::kCompute) compute_time += rec.end - rec.begin;
    if (rec.kind == TraceKind::kRecovery) recovery_time += rec.end - rec.begin;
  }

  std::printf(
      "LU %lldx%lld, %d threads, %zu injected v=last faults\n"
      "events: %zu (compute %zu, recovery %zu, reset %zu, fault %zu)\n"
      "task compute time %.3fs across workers; recovery bookkeeping %.4fs\n"
      "re-executed tasks: %llu\n",
      (long long)cfg.n, (long long)cfg.n, threads, plan.faults.size(),
      trace.size(), trace.count(TraceKind::kCompute),
      trace.count(TraceKind::kRecovery), trace.count(TraceKind::kReset),
      trace.count(TraceKind::kFault), compute_time, recovery_time,
      (unsigned long long)r.re_executed);

  std::ofstream out(out_path);
  out << trace.chrome_json();
  std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
              out_path.c_str());
  return 0;
}
