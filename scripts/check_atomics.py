#!/usr/bin/env python3
"""check_atomics.py — memory-order lint for the ftdag concurrency contract.

Walks C++ sources (default: src/) and enforces four rules:

  A. explicit-order: every std::atomic load/store/exchange/fetch_*/
     compare_exchange_* call must pass an explicit std::memory_order
     argument, and operator-form atomic RMWs (++x, x += 1, x = v, the
     implicit seq_cst forms) on variables declared std::atomic in the same
     file are rejected outright — write the .fetch_add/.store call with the
     order the algorithm actually needs.

  B. seq_cst-justified: in the hot-path files (--hot-path, default:
     traversal_engine.hpp chase_lev_deque.hpp atomic_bitset.hpp
     sharded_map.hpp executor.cpp durability.hpp) every appearance of memory_order_seq_cst must carry a
     `seq_cst: <reason>` comment on the same line or within the preceding
     comment block. Sequential consistency is the most expensive order on
     weakly-ordered hardware; on the hot path it must be an argument, not a
     default.

  C. acquire-release-pairs: every memory_order_acquire / _release /
     _acq_rel / _consume site must carry a `pairs: <tag>` comment (same
     line or preceding comment block) naming the synchronizes-with edge it
     participates in, and across the whole scanned tree every tag must have
     at least one acquire-side and one release-side site. An acquire whose
     release counterpart nobody can point to is a bug waiting for a weaker
     memory model.

  D. raw-sync-primitive: outside src/support/ and src/check/, production
     code must not declare `std::atomic<...>` or use the bare `SpinLock` /
     `SpinLockGuard` — use `ftdag::Atomic` / `CheckMutex` /
     `CheckMutexGuard` from check/sync_shim.hpp instead, so that
     FTDAG_SCHED_CHECK builds can observe every operation (a raw primitive
     is invisible to the schedule explorer and silently weakens its
     coverage). Rule D applies to paths under src/ by default; pass
     --raw-ban to enforce it on arbitrary paths (fixture tests).
     `std::atomic_thread_fence` / `_signal_fence` are not banned: the shim
     wraps objects, not fences (the Chase-Lev fences stay as they are).

Files under src/check/ are not scanned at all: the checking subsystem
wraps std::atomic by design (shim), names memory orders as *data*
(detector tables), and carries its synchronizes-with tags as FTDAG_SYNC_TAG
call arguments that the explorer verifies at runtime — a strictly stronger
check than the comment convention rules A-C enforce.

Escape hatch: a line containing `NOLINT-ATOMICS(<reason>)` in a comment is
exempt from rules A, B and D (never from tag-pairing bookkeeping).

Zero dependencies by design: the container and CI runners need only a
Python 3 interpreter. When the libclang python bindings are importable the
script additionally cross-checks rule A against the AST (catching calls the
tokenizer cannot see, e.g. through type aliases); absence of libclang only
loses that cross-check, never produces different pass/fail results on this
tree.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

DEFAULT_HOT_PATH = (
    "traversal_engine.hpp",
    "chase_lev_deque.hpp",
    "atomic_bitset.hpp",
    "sharded_map.hpp",
    "executor.cpp",
    # src/persist/: the WAL commit hook runs once per task on the engine's
    # publish path, so its atomics face the same scrutiny.
    "durability.hpp",
    # The group-commit ring: every commit crosses the worker->journal
    # stamp handoff and the durable-epoch ack, all lock-free.
    "commit_pipeline.hpp",
    "commit_pipeline.cpp",
    # src/runtime/: per-job completion tags ride every spawn/finish
    # (JobGroup pending counts), and job-state publication is what wait()
    # and the Runtime counters synchronize through.
    "runtime.hpp",
    "job_session.hpp",
)

# Member calls that are atomic operations when the receiver is a std::atomic.
ATOMIC_METHODS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_strong",
    "compare_exchange_weak",
)

ACQUIRE_SIDE = ("memory_order_acquire", "memory_order_consume")
RELEASE_SIDE = ("memory_order_release",)
BOTH_SIDES = ("memory_order_acq_rel",)
ORDERED = ACQUIRE_SIDE + RELEASE_SIDE + BOTH_SIDES

SOURCE_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc", ".cxx")

# Rule D: where the raw primitives are legitimate. src/support owns the
# real SpinLock (the shim's substrate); src/check owns the shim itself.
RAW_BAN_EXEMPT_DIRS = ("src/support", "src/check")

# The checking subsystem is exempt from all rules (see module docstring).
SKIP_SCAN_DIRS = ("src/check",)

# How many lines above an atomic site a justification comment may sit.
COMMENT_LOOKBACK = 4


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FileText:
    path: str
    raw_lines: list[str]
    # raw_lines with comment text and string/char literal contents blanked,
    # line structure preserved — safe for code-pattern matching.
    code_lines: list[str] = field(default_factory=list)
    # comment text per line (block + line comments), for directive lookup.
    comment_lines: list[str] = field(default_factory=list)


def split_code_and_comments(raw_lines: list[str]) -> tuple[list[str], list[str]]:
    """Blanks comments/strings out of code; collects comment text per line."""
    code_lines: list[str] = []
    comment_lines: list[str] = []
    in_block = False
    for raw in raw_lines:
        code: list[str] = []
        comment: list[str] = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    comment.append(c)
                    i += 1
            elif c == "/" and nxt == "/":
                comment.append(raw[i + 2 :])
                break
            elif c == "/" and nxt == "*":
                in_block = True
                i += 2
            elif c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    i += 1
            else:
                code.append(c)
                i += 1
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
    return code_lines, comment_lines


def load_file(path: str) -> FileText:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    ft = FileText(path=path, raw_lines=raw)
    ft.code_lines, ft.comment_lines = split_code_and_comments(raw)
    return ft


def comment_window(ft: FileText, line_idx: int) -> str:
    """Comment text on the site's line plus the contiguous run of
    comment/blank lines directly above it (bounded by COMMENT_LOOKBACK)."""
    parts = [ft.comment_lines[line_idx]]
    for j in range(line_idx - 1, max(-1, line_idx - 1 - COMMENT_LOOKBACK), -1):
        code = ft.code_lines[j].strip()
        has_comment = bool(ft.comment_lines[j].strip())
        if code and not has_comment:
            break  # a pure-code line breaks the comment block
        parts.append(ft.comment_lines[j])
        if code:
            break  # trailing comment on a code line: include it, then stop
    return "\n".join(parts)


def has_nolint(ft: FileText, line_idx: int) -> bool:
    return "NOLINT-ATOMICS(" in comment_window(ft, line_idx)


def gather_args(ft: FileText, line_idx: int, open_paren_col: int) -> str:
    """Returns the text of a balanced parenthesized argument list that opens
    at (line_idx, open_paren_col) in code_lines, possibly spanning lines."""
    depth = 0
    out: list[str] = []
    i, col = line_idx, open_paren_col
    while i < len(ft.code_lines):
        line = ft.code_lines[i]
        while col < len(line):
            c = line[col]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    out.append(line[: col + 1])
                    return "".join(out)[open_paren_col:] if i == line_idx else (
                        "".join(out)
                    )
            col += 1
        out.append(line[col:] if i == line_idx else line)
        out.append("\n")
        i, col = i + 1, 0
    return "".join(out)  # unbalanced: caller treats as missing order


ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic\s*<[^;={]*?>\s*(?:\[\s*\]\s*)?([A-Za-z_]\w*)\s*[{;=(]"
)

PLAIN_TYPES = (
    r"(?:std\s*::\s*)?(?:u?int(?:8|16|32|64)?_t|int|unsigned(?:\s+long)?"
    r"(?:\s+long)?|size_t|bool|long(?:\s+long)?|float|double|char)"
)


def collect_atomic_names(ft: FileText) -> set[str]:
    """Names declared std::atomic in this file — minus any name that is
    *also* declared with a plain integral type in the same file (e.g. a
    plain aggregate mirroring per-worker atomic counters): the tokenizer
    cannot attribute an unqualified use to one declaration, so ambiguous
    names are skipped rather than guessed at. Keep atomic field names
    distinct from plain ones to get full operator-form coverage."""
    names: set[str] = set()
    text = "\n".join(ft.code_lines)
    for m in ATOMIC_DECL_RE.finditer(text):
        names.add(m.group(1))
    ambiguous = {
        n
        for n in names
        if re.search(r"\b" + PLAIN_TYPES + r"\s+" + re.escape(n) + r"\s*[;={]",
                     text)
    }
    return names - ambiguous


METHOD_CALL_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(ATOMIC_METHODS) + r")\s*\("
)


def check_method_calls(ft: FileText, findings: list[Finding]) -> None:
    for idx, code in enumerate(ft.code_lines):
        for m in METHOD_CALL_RE.finditer(code):
            method = m.group(1)
            args = gather_args(ft, idx, m.end() - 1)
            inner = args[1:-1] if args.startswith("(") else args
            stripped = inner.strip()
            # `.store()` / `.exchange()` with no argument cannot be the
            # std::atomic member (it requires a value); treat as an
            # unrelated accessor of the same name (e.g. engine.store()).
            if method != "load" and stripped == "":
                continue
            if "memory_order" in args:
                continue
            if has_nolint(ft, idx):
                continue
            findings.append(
                Finding(
                    ft.path,
                    idx + 1,
                    "explicit-order",
                    f"atomic .{method}({stripped[:40]}"
                    f"{'…' if len(stripped) > 40 else ''}) without an explicit "
                    "std::memory_order argument (defaults to seq_cst)",
                )
            )


def check_operator_rmw(
    ft: FileText, atomic_names: set[str], findings: list[Finding]
) -> None:
    if not atomic_names:
        return
    alt = "|".join(re.escape(n) for n in sorted(atomic_names))
    member = r"(?:\w+\s*(?:\.|->)\s*)*"
    patterns = (
        (re.compile(r"(?P<op>\+\+|--)\s*" + member +
                    r"(?P<name>" + alt + r")\b"),
         "pre-{op} on atomic '{name}'"),
        (re.compile(r"\b" + member + r"(?P<name>" + alt +
                    r")\s*(?P<op>\+\+|--)"),
         "post-{op} on atomic '{name}'"),
        (re.compile(r"\b" + member + r"(?P<name>" + alt +
                    r")\s*(?P<op>[-+&|^]=)[^=]"),
         "compound assignment '{op}' on atomic '{name}'"),
        (re.compile(r"\b" + member + r"(?P<name>" + alt +
                    r")\s*(?P<op>=)(?![=])"),
         "plain assignment to atomic '{name}'"),
    )
    decl_re = re.compile(r"std\s*::\s*atomic\s*<")
    for idx, code in enumerate(ft.code_lines):
        if decl_re.search(code):
            continue  # declaration lines ({}-init etc.) are not operations
        for pat, msg in patterns:
            for m in pat.finditer(code):
                if has_nolint(ft, idx):
                    continue
                findings.append(
                    Finding(
                        ft.path,
                        idx + 1,
                        "explicit-order",
                        msg.format(op=m.group("op"), name=m.group("name"))
                        + " is an implicit seq_cst operation; spell out the "
                        ".fetch_*/.store call with the order the algorithm "
                        "needs",
                    )
                )


def check_seq_cst(ft: FileText, hot: bool, findings: list[Finding]) -> None:
    for idx, code in enumerate(ft.code_lines):
        if "memory_order_seq_cst" not in code:
            continue
        if not hot:
            continue
        window = comment_window(ft, idx)
        if "seq_cst:" in window or "NOLINT-ATOMICS(" in window:
            continue
        findings.append(
            Finding(
                ft.path,
                idx + 1,
                "seq_cst-justified",
                "memory_order_seq_cst in a hot-path file without a "
                "'// seq_cst: <reason>' justification comment",
            )
        )


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def norm_path(path: str) -> str:
    # Directory rules (src/check exemption, the src/ scope of rule D) are
    # written repo-relative; callers may pass absolute paths (ctest passes
    # ${CMAKE_SOURCE_DIR}/src), so rebase those onto the repo root first.
    p = os.path.abspath(path) if os.path.isabs(path) else path
    if os.path.isabs(p):
        rel = os.path.relpath(p, REPO_ROOT)
        if not rel.startswith(".."):
            p = rel
    return os.path.normpath(p).replace(os.sep, "/")


def under_dirs(path: str, dirs: tuple[str, ...]) -> bool:
    p = norm_path(path)
    return any(p == d or p.startswith(d + "/") for d in dirs)


RAW_ATOMIC_RE = re.compile(r"std\s*::\s*atomic\s*<")
RAW_SPINLOCK_RE = re.compile(r"\bSpinLock(?:Guard)?\b")


def raw_ban_applies(path: str, force: bool) -> bool:
    if under_dirs(path, RAW_BAN_EXEMPT_DIRS):
        return False
    return force or norm_path(path).startswith("src/")


def check_raw_primitives(ft: FileText, findings: list[Finding]) -> None:
    for idx, code in enumerate(ft.code_lines):
        hits = []
        if RAW_ATOMIC_RE.search(code):
            hits.append(
                "raw std::atomic<...>: use ftdag::Atomic (check/sync_shim.hpp)"
                " so FTDAG_SCHED_CHECK builds can observe every operation"
            )
        m = RAW_SPINLOCK_RE.search(code)
        if m:
            hits.append(
                f"bare {m.group(0)}: use "
                f"{'CheckMutexGuard' if m.group(0).endswith('Guard') else 'CheckMutex'}"
                " (check/sync_shim.hpp) so FTDAG_SCHED_CHECK builds can"
                " observe lock acquisition order"
            )
        if not hits or has_nolint(ft, idx):
            continue
        for msg in hits:
            findings.append(Finding(ft.path, idx + 1, "raw-sync-primitive", msg))


PAIRS_TAG_RE = re.compile(r"pairs:\s*([A-Za-z0-9_,\- ]+)")


def check_pairs(
    ft: FileText,
    tags: dict[str, dict[str, list[str]]],
    findings: list[Finding],
) -> None:
    for idx, code in enumerate(ft.code_lines):
        sides: set[str] = set()
        if any(t in code for t in ACQUIRE_SIDE):
            sides.add("acquire")
        if any(t in code for t in RELEASE_SIDE):
            sides.add("release")
        if any(t in code for t in BOTH_SIDES):
            sides.update(("acquire", "release"))
        required = bool(sides)
        # A seq_cst operation is both an acquire and a release; a tag on one
        # is optional (rule B governs seq_cst) but, when present, satisfies
        # either end of the named edge.
        if "memory_order_seq_cst" in code:
            sides.update(("acquire", "release"))
        if not sides:
            continue
        window = comment_window(ft, idx)
        m = PAIRS_TAG_RE.search(window)
        if not m and (not required or "NOLINT-ATOMICS(" in window):
            continue
        if not m:
            findings.append(
                Finding(
                    ft.path,
                    idx + 1,
                    "acquire-release-pairs",
                    "acquire/release ordering without a '// pairs: <tag>' "
                    "comment naming its synchronizes-with counterpart",
                )
            )
            continue
        where = f"{ft.path}:{idx + 1}"
        for tag in (t.strip() for t in m.group(1).split(",")):
            if not tag:
                continue
            entry = tags.setdefault(tag, {"acquire": [], "release": []})
            for side in sides:
                entry[side].append(where)


def finish_pairs(
    tags: dict[str, dict[str, list[str]]], findings: list[Finding]
) -> None:
    for tag, sides in sorted(tags.items()):
        if not sides["acquire"]:
            findings.append(
                Finding(
                    sides["release"][0].rsplit(":", 1)[0],
                    int(sides["release"][0].rsplit(":", 1)[1]),
                    "acquire-release-pairs",
                    f"tag '{tag}' has release sites but no acquire "
                    f"counterpart anywhere in the scanned tree "
                    f"(releases at: {', '.join(sides['release'])})",
                )
            )
        if not sides["release"]:
            findings.append(
                Finding(
                    sides["acquire"][0].rsplit(":", 1)[0],
                    int(sides["acquire"][0].rsplit(":", 1)[1]),
                    "acquire-release-pairs",
                    f"tag '{tag}' has acquire sites but no release "
                    f"counterpart anywhere in the scanned tree "
                    f"(acquires at: {', '.join(sides['acquire'])})",
                )
            )


def libclang_cross_check(paths: list[str], findings: list[Finding]) -> None:
    """Best-effort AST cross-check of rule A via libclang, when available."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return
    try:
        index = cindex.Index.create()
    except Exception:
        return
    for path in paths:
        try:
            tu = index.parse(path, args=["-std=c++20", "-I", "src"])
        except Exception:
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind != cindex.CursorKind.CALL_EXPR:
                continue
            if cur.spelling not in ATOMIC_METHODS:
                continue
            toks = " ".join(t.spelling for t in cur.get_tokens())
            if "atomic" not in toks and "memory_order" in toks:
                continue
            if "memory_order" not in toks and "atomic" in toks:
                findings.append(
                    Finding(
                        path,
                        cur.location.line,
                        "explicit-order",
                        f"[libclang] atomic {cur.spelling} call without "
                        "explicit memory order",
                    )
                )


def iter_sources(paths: list[str]) -> list[str]:
    out: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        elif os.path.isdir(p):
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith(SOURCE_EXTENSIONS):
                        out.append(os.path.join(root, f))
        else:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to scan (default: src)")
    ap.add_argument("--hot-path", action="append", default=[],
                    metavar="BASENAME",
                    help="treat BASENAME as a hot-path file for the seq_cst "
                         "rule (repeatable; default: "
                         + " ".join(DEFAULT_HOT_PATH) + ")")
    ap.add_argument("--no-pairs-check", action="store_true",
                    help="skip the acquire/release pairing rule")
    ap.add_argument("--raw-ban", action="store_true",
                    help="enforce the raw-sync-primitive rule on every "
                         "scanned path, not just src/ (fixture tests)")
    ap.add_argument("--use-libclang", action="store_true",
                    help="also cross-check rule A against the libclang AST "
                         "when the bindings are importable")
    args = ap.parse_args()

    hot_names = set(args.hot_path) if args.hot_path else set(DEFAULT_HOT_PATH)
    files = [
        p for p in iter_sources(args.paths or ["src"])
        if not under_dirs(p, SKIP_SCAN_DIRS)
    ]
    if not files:
        print("error: nothing to scan", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    tags: dict[str, dict[str, list[str]]] = {}
    for path in files:
        ft = load_file(path)
        check_method_calls(ft, findings)
        check_operator_rmw(ft, collect_atomic_names(ft), findings)
        check_seq_cst(ft, os.path.basename(path) in hot_names, findings)
        if raw_ban_applies(path, args.raw_ban):
            check_raw_primitives(ft, findings)
        if not args.no_pairs_check:
            check_pairs(ft, tags, findings)
    if not args.no_pairs_check:
        finish_pairs(tags, findings)
    if args.use_libclang:
        libclang_cross_check(files, findings)

    for f in findings:
        print(f)
    n_tags = len(tags)
    if findings:
        print(f"\ncheck_atomics: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"check_atomics: clean ({len(files)} files, "
          f"{n_tags} synchronizes-with tags verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
