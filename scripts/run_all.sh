#!/usr/bin/env bash
# Full reproduction driver: build, test, run every paper bench and the
# ablations, capturing outputs exactly as EXPERIMENTS.md references them.
#
# Usage: scripts/run_all.sh [extra bench flags, e.g. --scale=0.5 --reps=3]

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_table1 build/bench/bench_fig4 \
           build/bench/bench_fig5a build/bench/bench_fig5b \
           build/bench/bench_table2_fig6 build/bench/bench_fig7 \
           build/bench/bench_theory build/bench/bench_ablation_retention \
           build/bench/bench_ablation_checkpoint \
           build/bench/bench_replication; do
    echo "##### $b"
    "$b" "$@"
    echo
  done
  echo "##### build/bench/bench_micro"
  build/bench/bench_micro --benchmark_min_time=0.05s
} 2>&1 | tee bench_output.txt
