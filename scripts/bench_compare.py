#!/usr/bin/env python3
"""Compare two bench_hotpath JSON files with a regression tolerance.

Usage:
  bench_compare.py BASELINE CURRENT [--tolerance=PCT] [--summary]
  bench_compare.py --summary FILE [FILE...]
  bench_compare.py --check-format FILE [FILE...]

Compare mode joins rows on (name, threads) and reports the relative delta
of each metric: ns_per_op for microbenchmark rows (ops > 0), mean_s for
end-to-end rows (ops == 0). A row is a REGRESSION when the current value
exceeds the baseline by more than the tolerance (default 10%, matching the
run-to-run noise of e2e rows on a loaded machine; microbenchmark rows are
best-of minima and noticeably tighter). Exit status is 1 when any joined
row regresses, so CI can A/B a PR against the committed baseline:

  ./bench_hotpath --out=current.json
  scripts/bench_compare.py BENCH_hotpath.json current.json

--summary prints one geometric-mean line per file (ns_per_op over the
microbenchmark rows, mean_s over the e2e rows) — a single number CI logs
can eyeball across runs. With two positional files it rides on top of
compare mode, which keeps the non-zero exit on regression; with any other
count it only summarizes.

--check-format validates that each file parses as a list of row objects
with the schema bench_hotpath emits (used by the CI bench-smoke step to
keep the committed baseline and the harness output in sync). No third-party
dependencies; stdlib only.
"""

import json
import math
import sys

REQUIRED_FIELDS = {
    "name": str,
    "threads": int,
    "ns_per_op": (int, float),
    "mean_s": (int, float),
    "std_s": (int, float),
    "ops": int,
}

DEFAULT_TOLERANCE_PCT = 10.0


def check_format(paths):
    """Validates each file against the bench_hotpath row schema."""
    failures = 0
    for path in paths:
        problems = []
        try:
            with open(path) as f:
                rows = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: FAIL ({err})")
            failures += 1
            continue
        if not isinstance(rows, list) or not rows:
            problems.append("expected a non-empty JSON array of rows")
            rows = []
        seen = set()
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"row {i}: not an object")
                continue
            for field, types in REQUIRED_FIELDS.items():
                if field not in row:
                    problems.append(f"row {i}: missing field '{field}'")
                elif not isinstance(row[field], types) or isinstance(
                        row[field], bool):
                    problems.append(
                        f"row {i}: field '{field}' has type "
                        f"{type(row[field]).__name__}")
            if isinstance(row.get("name"), str) and isinstance(
                    row.get("threads"), int):
                key = (row["name"], row["threads"])
                if key in seen:
                    problems.append(f"row {i}: duplicate key {key}")
                seen.add(key)
                if row["threads"] < 1:
                    problems.append(f"row {i}: threads < 1")
            if isinstance(row.get("mean_s"), (int, float)) and \
                    row["mean_s"] <= 0:
                problems.append(f"row {i}: mean_s must be positive")
        if problems:
            print(f"{path}: FAIL")
            for p in problems[:20]:
                print(f"  {p}")
            failures += 1
        else:
            print(f"{path}: ok ({len(rows)} rows)")
    return 1 if failures else 0


def geomean(values):
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def summarize(path):
    """One geomean line per file: micro rows by ns_per_op, e2e by mean_s."""
    try:
        rows = load_rows(path)
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as err:
        print(f"{path}: summary FAIL ({err})")
        return 1
    micro = [r["ns_per_op"] for r in rows.values() if r["ops"] > 0]
    e2e = [r["mean_s"] for r in rows.values() if r["ops"] == 0]
    parts = []
    if micro:
        parts.append(f"micro geomean {geomean(micro):.4g} ns/op "
                     f"({len(micro)} rows)")
    if e2e:
        parts.append(f"e2e geomean {geomean(e2e):.4g} s ({len(e2e)} rows)")
    if not parts:
        parts.append("no rows")
    print(f"{path}: " + ", ".join(parts))
    return 0


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    return {(r["name"], r["threads"]): r for r in rows}


def metric(row):
    """(value, unit) actually compared for this row."""
    if row["ops"] > 0:
        return row["ns_per_op"], "ns/op"
    return row["mean_s"], "s"


def compare(baseline_path, current_path, tolerance_pct):
    base = load_rows(baseline_path)
    cur = load_rows(current_path)
    regressions = []
    print(f"{'bench':<20} {'P':>2} {'baseline':>10} {'current':>10} "
          f"{'delta':>8}")
    for key in sorted(base, key=lambda k: (k[1], k[0])):
        if key not in cur:
            print(f"{key[0]:<20} {key[1]:>2} {'(missing in current)':>30}")
            continue
        b_val, unit = metric(base[key])
        c_val, _ = metric(cur[key])
        delta_pct = (c_val / b_val - 1.0) * 100.0 if b_val > 0 else 0.0
        flag = ""
        if delta_pct > tolerance_pct:
            flag = "  REGRESSION"
            regressions.append((key, delta_pct))
        print(f"{key[0]:<20} {key[1]:>2} {b_val:>10.4g} {c_val:>10.4g} "
              f"{delta_pct:>+7.1f}%{flag}")
    for key in sorted(set(cur) - set(base), key=lambda k: (k[1], k[0])):
        print(f"{key[0]:<20} {key[1]:>2} {'(new row, no baseline)':>30}")
    if regressions:
        print(f"\n{len(regressions)} row(s) regressed beyond "
              f"{tolerance_pct:.0f}% tolerance:")
        for key, delta in regressions:
            print(f"  {key[0]} (P={key[1]}): {delta:+.1f}%")
        return 1
    print(f"\nOK: no row regressed beyond {tolerance_pct:.0f}% tolerance "
          f"({len(base)} baseline rows).")
    return 0


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = [a for a in argv[1:] if a.startswith("--")]
    tolerance = DEFAULT_TOLERANCE_PCT
    check = False
    summary = False
    for flag in flags:
        if flag == "--check-format":
            check = True
        elif flag == "--summary":
            summary = True
        elif flag.startswith("--tolerance="):
            tolerance = float(flag.split("=", 1)[1])
        else:
            print(f"unknown flag: {flag}", file=sys.stderr)
            return 2
    if check:
        if not args:
            print("--check-format needs at least one file", file=sys.stderr)
            return 2
        return check_format(args)
    if summary:
        if not args:
            print("--summary needs at least one file", file=sys.stderr)
            return 2
        status = 0
        for path in args:
            status = max(status, summarize(path))
        # Exactly two files: fall through to compare so the regression
        # exit code still gates CI; otherwise summaries are the output.
        if len(args) != 2 or status != 0:
            return status
        print()
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return compare(args[0], args[1], tolerance)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
