// Unit tests for the vector-clock race detector and the lock-order-graph
// deadlock detector (src/check/race_detector.hpp). These drive the
// detector's event API directly with hand-written interleavings, so they
// run — and gate — in every build, not just FTDAG_SCHED_CHECK ones.

#include "check/race_detector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

namespace ftdag::check {
namespace {

SyncSite site(const char* tag, unsigned line) {
  return SyncSite{tag, "detector_test.cpp", line};
}

bool any_violation_mentions(const RaceDetector& d, const std::string& needle) {
  for (const Violation& v : d.violations()) {
    if (v.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(DescribeSite, TagAndBasename) {
  EXPECT_EQ(describe_site(SyncSite{"gate", "a/b/engine.cpp", 42}),
            "tag 'gate' (engine.cpp:42)");
  EXPECT_EQ(describe_site(SyncSite{nullptr, "engine.cpp", 7}),
            "(engine.cpp:7)");
}

TEST(MemoryOrderClass, AcquireRelease) {
  EXPECT_TRUE(RaceDetector::is_acquire(std::memory_order_acquire));
  EXPECT_TRUE(RaceDetector::is_acquire(std::memory_order_acq_rel));
  EXPECT_TRUE(RaceDetector::is_acquire(std::memory_order_seq_cst));
  EXPECT_FALSE(RaceDetector::is_acquire(std::memory_order_relaxed));
  EXPECT_FALSE(RaceDetector::is_acquire(std::memory_order_release));
  EXPECT_TRUE(RaceDetector::is_release(std::memory_order_release));
  EXPECT_TRUE(RaceDetector::is_release(std::memory_order_seq_cst));
  EXPECT_FALSE(RaceDetector::is_release(std::memory_order_acquire));
}

// The canonical publish pattern: payload write, release store, acquire
// load, payload read. Fully ordered — no race.
TEST(RaceDetector, ReleaseAcquirePairOrdersPayload) {
  RaceDetector d;
  d.reset(2);
  int payload = 0;
  int flag = 0;
  d.plain_write(0, &payload, site("payload", 1));
  d.atomic_store(0, &flag, std::memory_order_release, site("flag", 2));
  d.atomic_load(1, &flag, std::memory_order_acquire, site("flag", 3));
  d.plain_read(1, &payload, site("payload", 4));
  EXPECT_TRUE(d.violations().empty());
}

// The same pattern with a relaxed store: the acquire load synchronizes
// with nothing, so the payload read races with the write.
TEST(RaceDetector, RelaxedStoreBreaksPublication) {
  RaceDetector d;
  d.reset(2);
  int payload = 0;
  int flag = 0;
  d.plain_write(0, &payload, site("payload-w", 1));
  d.atomic_store(0, &flag, std::memory_order_relaxed, site("flag", 2));
  d.atomic_load(1, &flag, std::memory_order_acquire, site("flag", 3));
  d.plain_read(1, &payload, site("payload-r", 4));
  ASSERT_EQ(d.violations().size(), 1u);
  EXPECT_EQ(d.violations()[0].kind, Violation::Kind::kDataRace);
  // The report names both racing sites by tag.
  EXPECT_TRUE(any_violation_mentions(d, "payload-w"));
  EXPECT_TRUE(any_violation_mentions(d, "payload-r"));
}

// ...and with a relaxed load: release alone is not enough either.
TEST(RaceDetector, RelaxedLoadBreaksPublication) {
  RaceDetector d;
  d.reset(2);
  int payload = 0;
  int flag = 0;
  d.plain_write(0, &payload, site("payload", 1));
  d.atomic_store(0, &flag, std::memory_order_release, site("flag", 2));
  d.atomic_load(1, &flag, std::memory_order_relaxed, site("flag", 3));
  d.plain_read(1, &payload, site("payload", 4));
  EXPECT_EQ(d.violations().size(), 1u);
}

// A release RMW between publisher and reader must continue the release
// sequence (join, not overwrite): the original publisher stays visible.
TEST(RaceDetector, ReleaseRmwContinuesReleaseSequence) {
  RaceDetector d;
  d.reset(3);
  int payload = 0;
  int counter = 0;
  d.plain_write(0, &payload, site("payload", 1));
  d.atomic_store(0, &counter, std::memory_order_release, site("pending", 2));
  d.atomic_rmw(1, &counter, std::memory_order_acq_rel, site("pending", 3));
  d.atomic_load(2, &counter, std::memory_order_acquire, site("pending", 4));
  d.plain_read(2, &payload, site("payload", 5));
  EXPECT_TRUE(d.violations().empty());
}

// A failed CAS is a load with the failure order: acquire failure order
// collects the edge, relaxed does not.
TEST(RaceDetector, FailedCasUsesFailureOrder) {
  for (std::memory_order failure :
       {std::memory_order_acquire, std::memory_order_relaxed}) {
    RaceDetector d;
    d.reset(2);
    int payload = 0;
    int flag = 0;
    d.plain_write(0, &payload, site("payload", 1));
    d.atomic_store(0, &flag, std::memory_order_release, site("flag", 2));
    d.atomic_cas(1, &flag, /*exchanged=*/false, std::memory_order_acq_rel,
                 failure, site("flag", 3));
    d.plain_read(1, &payload, site("payload", 4));
    if (failure == std::memory_order_acquire) {
      EXPECT_TRUE(d.violations().empty());
    } else {
      EXPECT_EQ(d.violations().size(), 1u);
    }
  }
}

// Mutual exclusion edges: unlock -> lock orders the protected accesses.
TEST(RaceDetector, MutexOrdersCriticalSections) {
  RaceDetector d;
  d.reset(2);
  int shared = 0;
  int mutex = 0;
  d.lock_acquired(0, &mutex, site("m", 1));
  d.plain_write(0, &shared, site("shared", 2));
  d.lock_released(0, &mutex, site("m", 3));
  d.lock_acquired(1, &mutex, site("m", 4));
  d.plain_write(1, &shared, site("shared", 5));
  d.lock_released(1, &mutex, site("m", 6));
  EXPECT_TRUE(d.violations().empty());
}

TEST(RaceDetector, UnorderedWritesRace) {
  RaceDetector d;
  d.reset(2);
  int shared = 0;
  d.plain_write(0, &shared, site("w0", 1));
  d.plain_write(1, &shared, site("w1", 2));
  ASSERT_EQ(d.violations().size(), 1u);
  EXPECT_TRUE(any_violation_mentions(d, "write vs write"));
}

TEST(RaceDetector, ReadThenUnorderedWriteRaces) {
  RaceDetector d;
  d.reset(2);
  int shared = 0;
  d.plain_read(0, &shared, site("r0", 1));
  d.plain_write(1, &shared, site("w1", 2));
  ASSERT_EQ(d.violations().size(), 1u);
  EXPECT_TRUE(any_violation_mentions(d, "read vs write"));
}

// The same racing site pair reported twice collapses to one violation.
TEST(RaceDetector, DuplicateRacesDeduplicated) {
  RaceDetector d;
  d.reset(3);
  int shared = 0;
  d.plain_write(0, &shared, site("w", 1));
  d.plain_read(1, &shared, site("r", 2));
  // Re-reading at the same site against the same unordered write must not
  // add a second identical report.
  d.plain_read(1, &shared, site("r", 2));
  EXPECT_EQ(d.violations().size(), 1u);
}

// Opposite nesting orders on two threads form a cycle in the lock-order
// graph even though this particular schedule never blocked.
TEST(LockOrder, InvertedNestingIsACycle) {
  RaceDetector d;
  d.reset(2);
  int a = 0;
  int b = 0;
  d.lock_acquired(0, &a, site("lock-a", 1));
  d.lock_acquired(0, &b, site("lock-b", 2));
  d.lock_released(0, &b, site("lock-b", 3));
  d.lock_released(0, &a, site("lock-a", 4));
  d.lock_acquired(1, &b, site("lock-b", 5));
  d.lock_acquired(1, &a, site("lock-a", 6));
  d.lock_released(1, &a, site("lock-a", 7));
  d.lock_released(1, &b, site("lock-b", 8));
  d.check_lock_order();
  ASSERT_EQ(d.violations().size(), 1u);
  EXPECT_EQ(d.violations()[0].kind, Violation::Kind::kLockOrderCycle);
  EXPECT_TRUE(any_violation_mentions(d, "lock-a"));
  EXPECT_TRUE(any_violation_mentions(d, "lock-b"));
}

TEST(LockOrder, ConsistentNestingIsClean) {
  RaceDetector d;
  d.reset(2);
  int a = 0;
  int b = 0;
  for (std::size_t t = 0; t < 2; ++t) {
    d.lock_acquired(t, &a, site("lock-a", 1));
    d.lock_acquired(t, &b, site("lock-b", 2));
    d.lock_released(t, &b, site("lock-b", 3));
    d.lock_released(t, &a, site("lock-a", 4));
  }
  d.check_lock_order();
  EXPECT_TRUE(d.violations().empty());
}

}  // namespace
}  // namespace ftdag::check
