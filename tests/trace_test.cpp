// Tests for ExecutionTrace and its FT-executor integration.

#include <gtest/gtest.h>

#include <thread>

#include "apps/app_registry.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_plan.hpp"
#include "graph/graph_metrics.hpp"
#include "trace/trace.hpp"

namespace ftdag {
namespace {

TEST(ExecutionTrace, RecordsAndMerges) {
  ExecutionTrace trace(2);
  trace.record(0, TraceKind::kCompute, 1, 0, 0.1, 0.2);
  trace.record(1, TraceKind::kCompute, 2, 0, 0.05, 0.15);
  trace.record(-1, TraceKind::kFault, 3, 1, 0.3, 0.3);  // overflow buffer
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count(TraceKind::kCompute), 2u);
  EXPECT_EQ(trace.count(TraceKind::kFault), 1u);
  auto merged = trace.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 2);  // sorted by begin time
  EXPECT_EQ(merged[1].key, 1);
  EXPECT_EQ(merged[2].key, 3);
}

TEST(ExecutionTrace, ClearResets) {
  ExecutionTrace trace(1);
  trace.record(0, TraceKind::kReset, 1, 0, 0.0, 0.0);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(ExecutionTrace, ChromeJsonIsWellFormed) {
  ExecutionTrace trace(1);
  trace.record(0, TraceKind::kCompute, 7, 2, 0.001, 0.002);
  trace.record(0, TraceKind::kFault, 7, 2, 0.003, 0.003);
  const std::string json = trace.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span event
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("\"life\":2"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ExecutionTrace, ConcurrentWorkerRecording) {
  ExecutionTrace trace(4);
  std::vector<std::thread> ts;
  for (int w = 0; w < 4; ++w)
    ts.emplace_back([&trace, w] {
      for (int i = 0; i < 1000; ++i)
        trace.record(w, TraceKind::kCompute, i, 0, i * 1e-6, i * 1e-6 + 1e-7);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(trace.size(), 4000u);
}

TEST(FtExecutorTrace, FaultFreeTraceHasOneComputePerTask) {
  auto app = make_app("lcs", {192, 32, 3});
  (void)app->reference_checksum();
  WorkStealingPool pool(2);
  ExecutionTrace trace(pool.thread_count());
  FaultTolerantExecutor exec;
  app->reset_data();
  ExecReport r = exec.execute(*app, pool, nullptr, &trace);
  EXPECT_EQ(trace.count(TraceKind::kCompute), r.computes);
  EXPECT_EQ(trace.count(TraceKind::kRecovery), 0u);
  EXPECT_EQ(trace.count(TraceKind::kFault), 0u);
  // Spans are well-ordered.
  for (const TraceRecord& rec : trace.merged()) {
    EXPECT_LE(rec.begin, rec.end);
    EXPECT_GE(rec.worker, 0);
  }
}

TEST(FtExecutorTrace, FaultyTraceShowsRecoveries) {
  auto app = make_app("lu", {256, 32, 3});
  (void)app->reference_checksum();
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.target_count = 3;
  PlannedFaultInjector injector(planner.plan(spec).faults);
  WorkStealingPool pool(2);
  ExecutionTrace trace(pool.thread_count());
  FaultTolerantExecutor exec;
  app->reset_data();
  ExecReport r = exec.execute(*app, pool, &injector, &trace);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
  EXPECT_EQ(trace.count(TraceKind::kRecovery), r.recoveries);
  EXPECT_EQ(trace.count(TraceKind::kFault), r.faults_caught);
  EXPECT_EQ(trace.count(TraceKind::kReset), r.resets);
  EXPECT_GT(trace.count(TraceKind::kCompute), 0u);
}

TEST(TraceKindNames, AreHumanReadable) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kCompute), "compute");
  EXPECT_STREQ(trace_kind_name(TraceKind::kRecovery), "recovery");
  EXPECT_STREQ(trace_kind_name(TraceKind::kReset), "reset");
  EXPECT_STREQ(trace_kind_name(TraceKind::kFault), "fault");
}

}  // namespace
}  // namespace ftdag
