// Cross-executor consistency: all four executors (serial oracle, baseline
// NABBIT, fault-tolerant, checkpoint/restart) must produce bitwise
// identical results on the same problem instance, interleaved in any order,
// with the FT executor additionally matching under injected faults.

#include <gtest/gtest.h>

#include <string>

#include "apps/app_registry.hpp"
#include "core/checkpoint_executor.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_plan.hpp"
#include "nabbit/executor.hpp"
#include "nabbit/serial_executor.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};
  return {256, 32, 3};
}

class CrossExecutor : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossExecutor, AllFourExecutorsAgree) {
  const std::string name = GetParam();
  auto app = make_app(name, test_config(name));
  const std::uint64_t want = app->reference_checksum();
  WorkStealingPool pool(3);

  SerialExecutor serial;
  app->reset_data();
  serial.execute(*app);
  EXPECT_EQ(app->result_checksum(), want) << "serial";

  NabbitExecutor baseline;
  app->reset_data();
  baseline.execute(*app, pool);
  EXPECT_EQ(app->result_checksum(), want) << "baseline";

  FaultTolerantExecutor ft;
  app->reset_data();
  ft.execute(*app, pool);
  EXPECT_EQ(app->result_checksum(), want) << "ft";

  CheckpointRestartExecutor ckpt;
  app->reset_data();
  ckpt.execute(*app, pool);
  EXPECT_EQ(app->result_checksum(), want) << "checkpoint";

  // FT under faults still agrees.
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.target_count = 5;
  PlannedFaultInjector injector(planner.plan(spec).faults);
  app->reset_data();
  ft.execute(*app, pool, &injector);
  EXPECT_EQ(app->result_checksum(), want) << "ft+faults";

  // FT with full dual-execution replication, fault-free: replicas must be
  // pure (no published side effects), so the result is still identical.
  ExecutorOptions replicated;
  replicated.replication = ReplicationPolicy::parse("all");
  app->reset_data();
  ExecReport rep = ft.execute(*app, pool, nullptr, nullptr, replicated);
  EXPECT_EQ(app->result_checksum(), want) << "ft+replication";
  EXPECT_GT(rep.replicated, 0u);
  EXPECT_EQ(rep.digest_mismatches, 0u);

  // Replication as the *detector*: real bit flips in committed outputs,
  // checksum mode off — digest voting must catch them all before any
  // successor reads, and recovery must restore the exact result.
  BitFlipInjector flips(planner.plan(spec).faults);
  app->reset_data();
  rep = ft.execute(*app, pool, &flips, nullptr, replicated);
  EXPECT_EQ(app->result_checksum(), want) << "ft+replication+bitflips";
  EXPECT_GE(rep.digest_mismatches, rep.injected);

  // And serial again after all of that (no state leaked between runs).
  app->reset_data();
  serial.execute(*app);
  EXPECT_EQ(app->result_checksum(), want) << "serial-after";
}

INSTANTIATE_TEST_SUITE_P(AllApps, CrossExecutor,
                         ::testing::Values("lcs", "sw", "fw", "lu", "cholesky",
                                           "rand"));

TEST(FwDependenceClasses, WarEdgesAreOrderingOnly) {
  auto app = make_app("fw", {96, 16, 3});  // W = 6
  const int w = 6;
  auto key = [w](int k, int i, int j) {
    return (static_cast<TaskKey>(k) * w + i) * w + j;
  };
  // Stage-internal and previous-version edges carry data...
  EXPECT_TRUE(app->data_dependence(key(3, 1, 2), key(3, 1, 3)));  // col panel
  EXPECT_TRUE(app->data_dependence(key(3, 1, 2), key(2, 1, 2)));  // prev ver
  EXPECT_TRUE(app->data_dependence(key(3, 3, 2), key(3, 3, 3)));  // diag
  // ...while stage-(k-2) guards do not.
  EXPECT_FALSE(app->data_dependence(key(3, 1, 1), key(1, 2, 1)));
  EXPECT_FALSE(app->data_dependence(key(4, 2, 3), key(2, 1, 3)));

  // Every WAR predecessor really appears in the successor's pred list.
  KeyList preds;
  app->predecessors(key(4, 2, 2), preds);  // block (2,2) was stage-2 diag
  int war = 0;
  for (TaskKey p : preds)
    if (!app->data_dependence(key(4, 2, 2), p)) ++war;
  EXPECT_EQ(war, 2 * (w - 1));  // the whole stage-2 panel set
}

}  // namespace
}  // namespace ftdag
