// Tests for the fault-tolerant executor in the *absence* of faults: it must
// behave exactly like the baseline (same results, no re-execution, no
// recoveries) — the paper's Figure 4 claim at the correctness level.

#include <gtest/gtest.h>

#include <string>

#include "apps/app_registry.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};
  return {256, 32, 3};
}

class FtApps : public ::testing::TestWithParam<std::tuple<const char*, int>> {
};

TEST_P(FtApps, FaultFreeMatchesReference) {
  const std::string name = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  auto app = make_app(name, test_config(name));
  WorkStealingPool pool(threads);
  RepeatedRuns runs = run_ft(*app, pool, 2);  // validates internally
  const GraphMetrics m = analyze_graph(*app);
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.computes, m.tasks);
    EXPECT_EQ(r.re_executed, 0u);
    EXPECT_EQ(r.recoveries, 0u);
    EXPECT_EQ(r.resets, 0u);
    EXPECT_EQ(r.faults_caught, 0u);
    EXPECT_EQ(r.injected, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsByThreads, FtApps,
    ::testing::Combine(::testing::Values("lcs", "sw", "fw", "lu", "cholesky",
                                         "rand"),
                       ::testing::Values(1, 4)));

TEST(FtExecutor, MatchesBaselineChecksumExactly) {
  for (const std::string& name : paper_benchmarks()) {
    auto app = make_app(name, test_config(name));
    WorkStealingPool pool(2);
    run_baseline(*app, pool, 1);
    const std::uint64_t base = app->result_checksum();
    run_ft(*app, pool, 1);
    EXPECT_EQ(app->result_checksum(), base) << name;
  }
}

TEST(FtExecutor, ManyRepetitionsStayCorrect) {
  auto app = make_app("rand", {256, 16, 11});
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(*app, pool, 10);
  EXPECT_EQ(runs.seconds.size(), 10u);
}

TEST(FtExecutor, WatchdogEnabledRunIsUnaffected) {
  auto app = make_app("lu", test_config("lu"));
  (void)app->reference_checksum();
  WorkStealingPool pool(2);
  FaultTolerantExecutor exec;
  ExecutorOptions opts;
  opts.watchdog_seconds = 0.005;  // aggressive sampling; run must be clean
  app->reset_data();
  ExecReport r = exec.execute(*app, pool, nullptr, nullptr, opts);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
  EXPECT_GT(r.computes, 0u);
}

TEST(FtExecutor, SingleTaskGraph) {
  auto app = make_app("lcs", {32, 32, 3});
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(*app, pool, 1);
  EXPECT_EQ(runs.reports[0].computes, 1u);
}

}  // namespace
}  // namespace ftdag
