// Tests for the work-stealing pool: spawn/quiescence semantics, nested
// spawning, parallel_for, statistics and reuse across runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/scheduler.hpp"

namespace ftdag {
namespace {

TEST(WorkStealingPool, RunsRootToQuiescence) {
  WorkStealingPool pool(2);
  std::atomic<int> ran{0};
  pool.run_to_quiescence([&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkStealingPool, RunsAllTransitivelySpawnedJobs) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  pool.run_to_quiescence([&] {
    for (int i = 0; i < 100; ++i)
      pool.spawn([&] {
        count.fetch_add(1);
        for (int j = 0; j < 10; ++j) pool.spawn([&] { count.fetch_add(1); });
      });
  });
  EXPECT_EQ(count.load(), 100 + 1000);
}

TEST(WorkStealingPool, DeepRecursiveSpawning) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  // A chain of depth 5000: each job spawns its successor.
  struct Chain {
    static void step(WorkStealingPool& p, std::atomic<int>& c, int depth) {
      c.fetch_add(1);
      if (depth > 0) p.spawn([&p, &c, depth] { step(p, c, depth - 1); });
    }
  };
  pool.run_to_quiescence([&] { Chain::step(pool, count, 4999); });
  EXPECT_EQ(count.load(), 5000);
}

TEST(WorkStealingPool, ReusableAcrossRuns) {
  WorkStealingPool pool(3);
  for (int run = 0; run < 20; ++run) {
    std::atomic<int> count{0};
    pool.run_to_quiescence([&] {
      for (int i = 0; i < 50; ++i) pool.spawn([&] { count.fetch_add(1); });
    });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(WorkStealingPool, SingleWorkerStillCompletes) {
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  pool.run_to_quiescence([&] {
    for (int i = 0; i < 200; ++i) pool.spawn([&] { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 200);
}

TEST(WorkStealingPool, OnWorkerThreadDetection) {
  WorkStealingPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_EQ(pool.current_worker_index(), -1);
  std::atomic<bool> inside{false};
  std::atomic<int> index{-2};
  pool.run_to_quiescence([&] {
    inside.store(pool.on_worker_thread());
    index.store(pool.current_worker_index());
  });
  EXPECT_TRUE(inside.load());
  EXPECT_GE(index.load(), 0);
  EXPECT_LT(index.load(), 2);
}

TEST(WorkStealingPool, StatsCountJobs) {
  WorkStealingPool pool(2);
  const std::uint64_t before = pool.stats().jobs_executed;
  pool.run_to_quiescence([&] {
    for (int i = 0; i < 10; ++i) pool.spawn([] {});
  });
  EXPECT_EQ(pool.stats().jobs_executed - before, 11u);  // root + 10
}

TEST(WorkStealingPool, ParallelForCoversRangeExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkStealingPool, ParallelForEmptyAndTinyRanges) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) {
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(0, 1, 16, [&](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(WorkStealingPool, NestedParallelForFromWorker) {
  WorkStealingPool pool(4);
  std::atomic<int> total{0};
  pool.run_to_quiescence([&] {
    pool.parallel_for(0, 100, 8, [&](std::int64_t lo, std::int64_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(WorkStealingPool, StealsHappenAcrossWorkers) {
  // With several workers and many jobs spawned from one worker's deque,
  // other workers can only get work by stealing.
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  pool.run_to_quiescence([&] {
    for (int i = 0; i < 2000; ++i)
      pool.spawn([&] {
        volatile int x = 0;
        for (int j = 0; j < 500; ++j) x = x + j;
        count.fetch_add(1);
      });
  });
  EXPECT_EQ(count.load(), 2000);
  EXPECT_GT(pool.stats().steals_attempted, 0u);
}

TEST(WorkStealingPool, ManyQuickRunsNeverLoseTheRootJob) {
  // Regression test for a lost-wakeup bug: the worker's pre-sleep re-scan
  // was probabilistic (random steal attempts) and could miss the injection
  // queue holding the next run's root job, then sleep on an epoch nobody
  // bumps again — hanging the pool. With one worker, every root lands in
  // the injection queue; thousands of back-to-back runs made the old code
  // hang with near certainty. The exhaustive pre-sleep scan fixes it.
  WorkStealingPool pool(1);
  std::atomic<int> total{0};
  for (int run = 0; run < 5000; ++run)
    pool.run_to_quiescence([&] { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5000);
}

TEST(WorkStealingPool, ManyQuickRunsMultiWorker) {
  WorkStealingPool pool(4);
  std::atomic<int> total{0};
  for (int run = 0; run < 2000; ++run)
    pool.run_to_quiescence([&] {
      pool.spawn([&] { total.fetch_add(1); });
      total.fetch_add(1);
    });
  EXPECT_EQ(total.load(), 4000);
}

TEST(WorkStealingPool, ExternalSpawnDuringRunIsExecuted) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  std::atomic<bool> inner_done{false};
  pool.run_to_quiescence([&] {
    // Spawn from a non-worker thread while the run is active.
    std::thread ext([&] {
      pool.spawn([&] {
        count.fetch_add(1);
        inner_done.store(true);
      });
    });
    ext.join();
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 2);
  EXPECT_TRUE(inner_done.load());
}

// Counts every construction and destruction of the spawned callable so the
// pool tests can prove each JobImpl is destroyed exactly once, whether it
// lived in a pool block or fell back to the heap (a double destroy would
// leave dtors > ctors, a leak dtors < ctors).
struct JobLifeCounters {
  std::atomic<int> ctors{0};
  std::atomic<int> dtors{0};
  std::atomic<int> runs{0};
};

struct CountingFn {
  JobLifeCounters* c;
  explicit CountingFn(JobLifeCounters* counters) : c(counters) {
    c->ctors.fetch_add(1);
  }
  CountingFn(const CountingFn& o) : c(o.c) { c->ctors.fetch_add(1); }
  CountingFn(CountingFn&& o) noexcept : c(o.c) { c->ctors.fetch_add(1); }
  ~CountingFn() { c->dtors.fetch_add(1); }
  void operator()() const { c->runs.fetch_add(1); }
};

TEST(WorkStealingPool, JobPoolExhaustionFallsBackToHeap) {
  // A burst far beyond the per-worker freelist, spawned before any of it
  // runs (single worker, so nothing drains the deque mid-burst): the first
  // kJobPoolBlocks spawns come from the pool, the rest must take the heap
  // path, and every callable is destroyed exactly once either way.
  constexpr int kBurst = 2000;
  JobLifeCounters c;
  {
    WorkStealingPool pool(1);
    pool.run_to_quiescence([&] {
      for (int i = 0; i < kBurst; ++i) pool.spawn(CountingFn(&c));
    });
    EXPECT_EQ(c.runs.load(), kBurst);
    const SchedStats s = pool.stats();
    EXPECT_EQ(s.jobs_executed, static_cast<std::uint64_t>(kBurst) + 1);
    EXPECT_GT(s.jobs_pooled, 0u);  // freelist served the head of the burst
    // The tail of the burst (plus the external root) exhausted the pool.
    EXPECT_GE(s.jobs_heap, static_cast<std::uint64_t>(kBurst) - 1024);
    EXPECT_EQ(s.jobs_pooled + s.jobs_heap,
              static_cast<std::uint64_t>(kBurst) + 1);
  }
  EXPECT_EQ(c.ctors.load(), c.dtors.load());
}

TEST(WorkStealingPool, JobPoolRecyclesThroughSequentialChain) {
  // Spawn-run-retire in lockstep: each link spawns the next while the pool
  // recycles the previous block, so a chain far longer than the freelist
  // never touches the heap (except the external root spawn).
  constexpr int kDepth = 5000;
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  struct Chain {
    static void step(WorkStealingPool& p, std::atomic<int>& n, int depth) {
      n.fetch_add(1);
      if (depth > 0) p.spawn([&p, &n, depth] { step(p, n, depth - 1); });
    }
  };
  pool.run_to_quiescence([&] { Chain::step(pool, count, kDepth - 1); });
  EXPECT_EQ(count.load(), kDepth);
  const SchedStats s = pool.stats();
  EXPECT_EQ(s.jobs_pooled, static_cast<std::uint64_t>(kDepth) - 1);
  EXPECT_EQ(s.jobs_heap, 1u);  // only the non-worker root spawn
  EXPECT_EQ(s.injections, 1u);
}

TEST(WorkStealingPool, OversizedCallablesUseTheHeap) {
  // A callable bigger than a pool block must skip the freelist entirely.
  struct Big {
    char pad[2 * kJobBlockBytes] = {};
    std::atomic<int>* n = nullptr;
    void operator()() const { n->fetch_add(1); }
  };
  static_assert(!job_fits_block<Big>, "test needs an oversized callable");
  constexpr int kJobs = 100;
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.run_to_quiescence([&] {
    for (int i = 0; i < kJobs; ++i) {
      Big b;
      b.n = &count;
      pool.spawn(b);
    }
  });
  EXPECT_EQ(count.load(), kJobs);
  const SchedStats s = pool.stats();
  EXPECT_GE(s.jobs_heap, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(s.jobs_pooled, 0u);
}

TEST(WorkStealingPool, JobPoolBlocksMigrateAcrossWorkersUnderStealing) {
  // Recursive fan-out across four workers: stolen jobs are retired into the
  // *thief's* freelist, so blocks migrate between workers. Every callable
  // must still be constructed/destroyed in matched pairs, and the combined
  // pooled+heap spawn count must equal the jobs executed.
  JobLifeCounters c;
  std::atomic<int> live{0};
  {
    WorkStealingPool pool(4);
    struct Fan {
      static void go(WorkStealingPool& p, JobLifeCounters& counters,
                     std::atomic<int>& n, int depth) {
        n.fetch_add(1);
        if (depth == 0) return;
        for (int i = 0; i < 2; ++i)
          p.spawn([&p, &counters, &n, depth] {
            CountingFn tick(&counters);
            tick();
            go(p, counters, n, depth - 1);
          });
      }
    };
    pool.run_to_quiescence([&] { Fan::go(pool, c, live, 12); });
    // A full binary tree of depth 12 above the root.
    EXPECT_EQ(live.load(), (1 << 13) - 1);
    const SchedStats s = pool.stats();
    EXPECT_EQ(s.jobs_pooled + s.jobs_heap, s.jobs_executed);
    EXPECT_GT(s.jobs_pooled, 0u);
  }
  EXPECT_EQ(c.ctors.load(), c.dtors.load());
}

}  // namespace
}  // namespace ftdag
