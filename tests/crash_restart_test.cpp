// Crash-restart proof for the durability subsystem (src/persist/): child
// processes run the fault-tolerant executor with a persist dir and are
// SIGKILLed from inside the journal thread's drain window at exact on-disk
// record counts — after the write(2), before any fsync, with the rest of
// the drained batch (and whatever the commit ring still holds) unwritten.
// No destructors, no flushes; only what write(2)/fsync(2) already made
// durable survives. The parent then resumes from the same directory and
// must produce byte-identical results to an uninterrupted run.
//
// The children deliberately use no gtest machinery: they fork, execute, and
// either die by SIGKILL or _Exit with a tiny status code the parent asserts
// on. Pools and executors are constructed after fork only.

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/ft_executor.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"
#include "persist/format.hpp"
#include "persist/wal.hpp"

namespace ftdag {
namespace {

using persist::WalSync;

constexpr AppConfig kConfig{256, 32, 3};  // lcs: 8x8 grid, 64 tasks
constexpr const char* kApp = "lcs";

struct TempDir {
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp");
    tmpl += "/ftdag_crash_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path = got ? got : "";
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// Child exit codes (distinguishable from death-by-signal).
enum : int {
  kChildOk = 0,          // run completed and the checksum matched
  kChildBadChecksum = 7,  // run completed but the result was wrong
  kChildThrew = 9,
};

// Forks a child that runs the durable executor to completion or to the
// injected SIGKILL. Returns the raw waitpid status.
int run_child(const std::string& dir, WalSync sync,
              std::uint64_t crash_after_records,
              std::uint64_t snapshot_every = 0, bool crash_torn_tail = false) {
  fflush(nullptr);  // don't double-flush inherited stdio buffers
  const pid_t pid = fork();
  if (pid == 0) {
    int code = kChildThrew;
    try {
      auto app = make_app(kApp, kConfig);
      const std::uint64_t want = app->reference_checksum();
      WorkStealingPool pool(4);
      FaultTolerantExecutor exec;
      ExecutorOptions opts;
      opts.durability.dir = dir;
      opts.durability.sync = sync;
      opts.durability.crash_after_records = crash_after_records;
      opts.durability.snapshot_every = snapshot_every;
      opts.durability.crash_torn_tail = crash_torn_tail;
      app->reset_data();
      exec.execute(*app, pool, nullptr, nullptr, opts);
      code = app->result_checksum() == want ? kChildOk : kChildBadChecksum;
    } catch (...) {
      code = kChildThrew;
    }
    std::_Exit(code);  // no destructors, no gtest teardown in the child
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

bool killed_by_sigkill(int status) {
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

// Resumes in-process and returns the report; `app` holds the final result.
ExecReport resume_here(TaskGraphProblem& app, const std::string& dir,
                       WalSync sync, std::uint64_t snapshot_every = 0) {
  WorkStealingPool pool(4);
  FaultTolerantExecutor exec;
  ExecutorOptions opts;
  opts.durability.dir = dir;
  opts.durability.sync = sync;
  opts.durability.snapshot_every = snapshot_every;
  app.reset_data();
  return exec.execute(app, pool, nullptr, nullptr, opts);
}

// The tentpole acceptance drill: SIGKILL the run at many distinct commit
// points; each successor process resumes from disk, makes a bit more
// progress, and dies again, until one finishes. The final state must be
// byte-identical to an uninterrupted run.
TEST(CrashRestart, ProgressiveSigkillsResumeToIdenticalResult) {
  TempDir tmp;
  auto app = make_app(kApp, kConfig);
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  ASSERT_GT(tasks, 40u);  // enough commit points for >= 5 crashes

  // Each incarnation appends 7 more records, then dies mid-commit.
  int crashes = 0;
  bool completed = false;
  for (std::uint64_t i = 0; i < tasks; ++i) {
    const int status = run_child(tmp.path, WalSync::kEvery, 7);
    if (WIFEXITED(status)) {
      ASSERT_EQ(WEXITSTATUS(status), kChildOk);
      completed = true;
      break;
    }
    ASSERT_TRUE(killed_by_sigkill(status));
    ++crashes;
  }
  ASSERT_TRUE(completed);
  EXPECT_GE(crashes, 5);

  // Resume once more in this process: everything is already committed.
  ExecReport r = resume_here(*app, tmp.path, WalSync::kEvery);
  EXPECT_EQ(r.computes, 0u);
  EXPECT_EQ(r.tasks_skipped_on_restart, tasks);

  // Byte-identical to an uninterrupted run of the same problem.
  auto undisturbed = make_app(kApp, kConfig);
  WorkStealingPool pool(4);
  run_ft(*undisturbed, pool, 1);
  EXPECT_EQ(app->result_checksum(), undisturbed->result_checksum());
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

// Every sync policy must survive *process* death: even WalSync::kNone goes
// through write(2) into the page cache before the SIGKILL.
class CrashRestartSync : public ::testing::TestWithParam<WalSync> {};

TEST_P(CrashRestartSync, PartialRunSurvivesProcessDeath) {
  TempDir tmp;
  const WalSync sync = GetParam();
  const int status = run_child(tmp.path, sync, 10);
  ASSERT_TRUE(killed_by_sigkill(status));

  auto app = make_app(kApp, kConfig);
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  ExecReport r = resume_here(*app, tmp.path, sync);
  EXPECT_GE(r.tasks_skipped_on_restart, 10u);
  EXPECT_LT(r.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(r.computes + r.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CrashRestartSync,
                         ::testing::Values(WalSync::kNone, WalSync::kBatch,
                                           WalSync::kEvery));

// Death in the snapshot era: the child rotates twice (snapshot_every=10,
// killed after 25 records), so the resume must go snapshot + WAL chain.
TEST(CrashRestart, SigkillAfterSnapshotRotationResumesFromSnapshot) {
  TempDir tmp;
  const int status = run_child(tmp.path, WalSync::kEvery, 25, 10);
  ASSERT_TRUE(killed_by_sigkill(status));

  persist::DirListing ls = persist::scan_dir(tmp.path);
  ASSERT_FALSE(ls.snapshots.empty());
  EXPECT_LE(ls.snapshots.size(), 2u);  // pruning ran before the kill

  auto app = make_app(kApp, kConfig);
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  ExecReport r = resume_here(*app, tmp.path, WalSync::kEvery, 10);
  EXPECT_GE(r.tasks_skipped_on_restart, 25u);
  EXPECT_EQ(r.computes + r.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

// SIGKILL inside the journal thread's drain window while the commit ring
// is non-empty: the kill fires right after the journal's write(2) of the
// 10th record, with the rest of the drained batch — and whatever the ring
// still held — published but never written. Those records are exactly the
// unflushed suffix a crash may lose: the on-disk prefix holds 10 whole
// records (dependency-closed by the sequence order), and the resume
// replays precisely them and recomputes the rest.
TEST(CrashRestart, JournalMidDrainKillLosesExactlyTheUnwrittenSuffix) {
  TempDir tmp;
  const int status = run_child(tmp.path, WalSync::kNone, 10);
  ASSERT_TRUE(killed_by_sigkill(status));

  auto app = make_app(kApp, kConfig);
  const std::uint64_t tasks = analyze_graph(*app).tasks;

  persist::DirListing ls = persist::scan_dir(tmp.path);
  ASSERT_EQ(ls.wals.size(), 1u);
  persist::WalScan scan = persist::read_wal_segment(
      persist::wal_path(tmp.path, ls.wals[0]),
      persist::layout_signature(app->block_store()), ls.wals[0]);
  ASSERT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.records.size(), 10u);     // exactly the journaled prefix
  EXPECT_EQ(scan.discarded_bytes, 0u);     // whole records: nothing torn

  ExecReport r = resume_here(*app, tmp.path, WalSync::kNone);
  EXPECT_EQ(r.tasks_skipped_on_restart, 10u);
  EXPECT_EQ(r.computes, tasks - 10u);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

// SIGKILL mid-append, batch partially written: the journal wrote 10 whole
// records plus the first half of the 11th — a torn frame inside the batch
// write, exactly what machine death during writev can leave. The restart
// scan must keep the 10-record prefix, discard exactly the torn suffix
// (with a diagnostic), and the resumed run must converge byte-identically.
TEST(CrashRestart, TornTailFromMidBatchKillIsDiscardedOnRestart) {
  TempDir tmp;
  const int status = run_child(tmp.path, WalSync::kBatch, 10,
                               /*snapshot_every=*/0, /*crash_torn_tail=*/true);
  ASSERT_TRUE(killed_by_sigkill(status));

  auto app = make_app(kApp, kConfig);
  const std::uint64_t tasks = analyze_graph(*app).tasks;

  persist::DirListing ls = persist::scan_dir(tmp.path);
  ASSERT_EQ(ls.wals.size(), 1u);
  persist::WalScan scan = persist::read_wal_segment(
      persist::wal_path(tmp.path, ls.wals[0]),
      persist::layout_signature(app->block_store()), ls.wals[0]);
  ASSERT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.records.size(), 10u);
  EXPECT_GT(scan.discarded_bytes, 0u);     // the torn half-record
  EXPECT_FALSE(scan.diagnostic.empty());

  ExecReport r = resume_here(*app, tmp.path, WalSync::kBatch);
  EXPECT_EQ(r.tasks_skipped_on_restart, 10u);
  EXPECT_EQ(r.computes + r.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

// Crash points inside a fsync batch window: with kBatch the unsynced tail
// is still in the page cache, so process death loses nothing — the resumed
// run may skip everything the child committed.
TEST(CrashRestart, RepeatedBatchCrashesStillConverge) {
  TempDir tmp;
  int crashes = 0;
  bool completed = false;
  for (int i = 0; i < 64; ++i) {
    const int status = run_child(tmp.path, WalSync::kBatch, 13);
    if (WIFEXITED(status)) {
      ASSERT_EQ(WEXITSTATUS(status), kChildOk);
      completed = true;
      break;
    }
    ASSERT_TRUE(killed_by_sigkill(status));
    ++crashes;
  }
  ASSERT_TRUE(completed);
  EXPECT_GE(crashes, 2);

  auto app = make_app(kApp, kConfig);
  ExecReport r = resume_here(*app, tmp.path, WalSync::kBatch);
  EXPECT_EQ(r.computes, 0u);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

}  // namespace
}  // namespace ftdag
