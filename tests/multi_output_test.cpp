// The paper's model allows a single task to produce multiple data blocks
// ("Each task is considered synonymous with the definitions of data blocks
// it effects. A single task can produce multiple data blocks"). This suite
// exercises multi-output tasks through the full recovery machinery.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "apps/digest_board.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "graph/compute_context.hpp"
#include "graph/task_graph_problem.hpp"
#include "harness/experiment.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

// A split/merge pipeline: stage tasks each produce TWO blocks (a "low" and
// a "high" half); the next stage's tasks read one half from each of two
// producers. Layout: L layers x W tasks; task (l, p) reads low(l-1, p) and
// high(l-1, (p+1) % W). Single assignment.
class SplitMergeProblem final : public TaskGraphProblem {
 public:
  SplitMergeProblem(int layers, int width, std::uint64_t seed)
      : layers_(layers), width_(width), seed_(seed) {
    store_.set_retention(0);
    const std::size_t tasks = static_cast<std::size_t>(layers_) * width_;
    low_.resize(tasks);
    high_.resize(tasks);
    for (std::size_t t = 0; t < tasks; ++t) {
      low_[t] = store_.add_block(sizeof(std::uint64_t), 1);
      high_[t] = store_.add_block(sizeof(std::uint64_t), 1);
      store_.set_producer(low_[t], 0, static_cast<TaskKey>(t));
      store_.set_producer(high_[t], 0, static_cast<TaskKey>(t));
    }
    sink_ = static_cast<TaskKey>(tasks);
    board_.resize(tasks + 1);
  }

  std::string name() const override { return "splitmerge"; }
  TaskKey sink() const override { return sink_; }

  void predecessors(TaskKey key, KeyList& out) const override {
    if (key == sink_) {
      for (int p = 0; p < width_; ++p)
        out.push_back(task_of(layers_ - 1, p));
      return;
    }
    const int l = layer_of(key), p = pos_of(key);
    if (l == 0) return;
    out.push_back(task_of(l - 1, p));
    const TaskKey other = task_of(l - 1, (p + 1) % width_);
    if (!out.contains(other)) out.push_back(other);
  }

  void successors(TaskKey key, KeyList& out) const override {
    if (key == sink_) return;
    const int l = layer_of(key), p = pos_of(key);
    if (l + 1 == layers_) {
      out.push_back(sink_);
      return;
    }
    out.push_back(task_of(l + 1, p));
    const TaskKey other = task_of(l + 1, (p - 1 + width_) % width_);
    if (!out.contains(other)) out.push_back(other);
  }

  void compute(TaskKey key, ComputeContext& ctx) override {
    if (key == sink_) {
      ctx.stage_result(board_.slot(board_.size() - 1), 1);
      return;
    }
    const int l = layer_of(key), p = pos_of(key);
    std::uint64_t acc = mix64(seed_ ^ static_cast<std::uint64_t>(key));
    if (l > 0) {
      acc = mix64(acc ^ *ctx.read<std::uint64_t>(
                            low_[index(task_of(l - 1, p))], 0));
      acc = mix64(acc ^ *ctx.read<std::uint64_t>(
                            high_[index(task_of(l - 1, (p + 1) % width_))],
                            0));
    }
    // Two distinct outputs from one task.
    *ctx.write<std::uint64_t>(low_[index(key)], 0) = mix64(acc ^ 1);
    *ctx.write<std::uint64_t>(high_[index(key)], 0) = mix64(acc ^ 2);
    ctx.stage_result(board_.slot(index(key)), acc);
  }

  void all_tasks(std::vector<TaskKey>& out) const override {
    for (TaskKey t = 0; t <= sink_; ++t) out.push_back(t);
  }

  void outputs(TaskKey key, OutputList& out) const override {
    if (key == sink_) return;
    out.push_back({low_[index(key)], 0, 0});
    out.push_back({high_[index(key)], 0, 0});
  }

  void reset_data() override {
    store_.reset_states();
    board_.reset();
  }

  std::uint64_t result_checksum() const override { return board_.combined(); }

  std::uint64_t reference_checksum() override {
    if (cached_) return reference_;
    DigestBoard ref;
    ref.resize(board_.size());
    std::vector<std::uint64_t> prev_low(width_), prev_high(width_);
    std::vector<std::uint64_t> low(width_), high(width_);
    for (int l = 0; l < layers_; ++l) {
      for (int p = 0; p < width_; ++p) {
        const TaskKey key = task_of(l, p);
        std::uint64_t acc = mix64(seed_ ^ static_cast<std::uint64_t>(key));
        if (l > 0) {
          acc = mix64(acc ^ prev_low[p]);
          acc = mix64(acc ^ prev_high[(p + 1) % width_]);
        }
        low[p] = mix64(acc ^ 1);
        high[p] = mix64(acc ^ 2);
        ref.set(index(key), acc);
      }
      prev_low = low;
      prev_high = high;
    }
    ref.set(ref.size() - 1, 1);
    reference_ = ref.combined();
    cached_ = true;
    return reference_;
  }

 private:
  TaskKey task_of(int l, int p) const {
    return static_cast<TaskKey>(l) * width_ + p;
  }
  int layer_of(TaskKey k) const { return static_cast<int>(k / width_); }
  int pos_of(TaskKey k) const { return static_cast<int>(k % width_); }
  std::size_t index(TaskKey k) const { return static_cast<std::size_t>(k); }

  int layers_, width_;
  std::uint64_t seed_;
  TaskKey sink_ = 0;
  std::vector<BlockId> low_, high_;
  DigestBoard board_;
  std::uint64_t reference_ = 0;
  bool cached_ = false;
};

TEST(MultiOutput, FaultFreeMatchesReference) {
  SplitMergeProblem app(8, 8, 3);
  WorkStealingPool pool(4);
  run_ft(app, pool, 2);  // validates
}

TEST(MultiOutput, AfterComputeFaultCorruptsBothOutputs) {
  SplitMergeProblem app(6, 6, 4);
  // Corrupt a mid-layer task: the injector marks BOTH of its outputs, and
  // both consumers (one per half) must converge on recovery.
  PlannedFaultInjector injector({{2 * 6 + 3, FaultPhase::kAfterCompute, 1}});
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(app, pool, 2, &injector);
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.injected, 1u);
    EXPECT_GE(r.recoveries, 1u);
  }
}

TEST(MultiOutput, StormAcrossAllPhases) {
  SplitMergeProblem app(8, 8, 5);
  std::vector<TaskKey> keys;
  app.all_tasks(keys);
  std::vector<PlannedFault> faults;
  Xoshiro256 rng(17);
  for (TaskKey k : keys)
    if (rng.below(2) == 0)
      faults.push_back({k, static_cast<FaultPhase>(rng.below(3)), 1});
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  run_ft(app, pool, 3, &injector);  // validates each run
}

TEST(MultiOutput, OutputsListedForPlanner) {
  SplitMergeProblem app(4, 4, 6);
  OutputList outs;
  app.outputs(5, outs);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_NE(outs[0].block, outs[1].block);
  EXPECT_EQ(app.block_store().producer(outs[0].block, 0), 5);
  EXPECT_EQ(app.block_store().producer(outs[1].block, 0), 5);
}

}  // namespace
}  // namespace ftdag
