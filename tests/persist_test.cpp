// Tests for the durability subsystem (src/persist/): on-disk format
// primitives, WAL framing and torn/corrupt-tail handling, snapshot
// round-trips and rejection diagnostics, and end-to-end restart through the
// fault-tolerant executor — including satellite corruption drills that flip
// bits and truncate artifacts on disk and assert the loader refuses them
// with a clean diagnostic instead of resuming from bad state.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_registry.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"
#include "persist/durability.hpp"
#include "persist/format.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace ftdag {
namespace {

using persist::WalSync;

// Scratch directory under $TMPDIR (or /tmp), removed on scope exit.
struct TempDir {
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp");
    tmpl += "/ftdag_persist_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path = got ? got : "";
  }
  ~TempDir() {
    std::error_code ec;
    if (!path.empty()) std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::uint64_t file_size(const std::string& path) {
  return static_cast<std::uint64_t>(std::filesystem::file_size(path));
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

void truncate_file(const std::string& path, std::uint64_t new_size) {
  std::filesystem::resize_file(path, new_size);
}

// --- format primitives -------------------------------------------------------

TEST(PersistFormat, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(persist::crc32("123456789", 9), 0xCBF43926u);
  // Incremental computation over pieces must match one-shot.
  const std::uint32_t head = persist::crc32("1234", 4);
  EXPECT_EQ(persist::crc32("56789", 5, head), 0xCBF43926u);
}

TEST(PersistFormat, ByteReaderRejectsOverrun) {
  std::string buf;
  persist::put_u32(buf, 7);
  persist::ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.u64(), 0u);  // past the end: zero and not-ok
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(PersistFormat, ScanDirSortsAndIgnoresForeignFiles) {
  TempDir tmp;
  for (std::uint64_t seq : {3u, 0u, 1u}) {
    std::ofstream(persist::snapshot_path(tmp.path, seq)) << "x";
    std::ofstream(persist::wal_path(tmp.path, seq)) << "x";
  }
  std::ofstream(tmp.path + "/unrelated.txt") << "keep me";
  persist::DirListing ls = persist::scan_dir(tmp.path);
  EXPECT_EQ(ls.snapshots, (std::vector<std::uint64_t>{0, 1, 3}));
  EXPECT_EQ(ls.wals, (std::vector<std::uint64_t>{0, 1, 3}));

  persist::remove_persist_files(tmp.path);
  ls = persist::scan_dir(tmp.path);
  EXPECT_TRUE(ls.snapshots.empty());
  EXPECT_TRUE(ls.wals.empty());
  EXPECT_TRUE(std::filesystem::exists(tmp.path + "/unrelated.txt"));
}

TEST(PersistFormat, FileHeaderRoundTripAndRejections) {
  const std::string hdr =
      persist::encode_file_header(persist::kWalMagic, 0xABCDu, 17);
  ASSERT_EQ(hdr.size(), persist::kFileHeaderBytes);
  std::uint64_t seq = 0;
  std::string diag;
  EXPECT_TRUE(persist::decode_file_header(hdr.data(), hdr.size(),
                                          persist::kWalMagic, 0xABCDu, &seq,
                                          &diag));
  EXPECT_EQ(seq, 17u);
  // Wrong magic (a snapshot is not a WAL segment).
  EXPECT_FALSE(persist::decode_file_header(hdr.data(), hdr.size(),
                                           persist::kSnapshotMagic, 0xABCDu,
                                           &seq, &diag));
  EXPECT_FALSE(diag.empty());
  // Wrong layout signature (artifact from a differently-shaped problem).
  diag.clear();
  EXPECT_FALSE(persist::decode_file_header(hdr.data(), hdr.size(),
                                           persist::kWalMagic, 0xABCEu, &seq,
                                           &diag));
  EXPECT_FALSE(diag.empty());
  // Short header.
  diag.clear();
  EXPECT_FALSE(persist::decode_file_header(hdr.data(), 8, persist::kWalMagic,
                                           0xABCDu, &seq, &diag));
  EXPECT_FALSE(diag.empty());
}

TEST(PersistFormat, ParseWalSync) {
  WalSync sync = WalSync::kNone;
  EXPECT_TRUE(persist::parse_wal_sync("batch", &sync));
  EXPECT_EQ(sync, WalSync::kBatch);
  EXPECT_TRUE(persist::parse_wal_sync("every", &sync));
  EXPECT_EQ(sync, WalSync::kEvery);
  EXPECT_TRUE(persist::parse_wal_sync("none", &sync));
  EXPECT_EQ(sync, WalSync::kNone);
  EXPECT_FALSE(persist::parse_wal_sync("always", &sync));
  EXPECT_STREQ(persist::wal_sync_name(WalSync::kBatch), "batch");
}

// --- WAL segments ------------------------------------------------------------

constexpr std::uint64_t kLayout = 0x1122334455667788ull;

// Writes a segment with three records and returns its scan.
persist::WalScan write_three_records(const std::string& dir) {
  persist::WalWriter w;
  std::string error;
  EXPECT_TRUE(w.open_fresh(persist::wal_path(dir, 0), kLayout, 0, &error))
      << error;
  for (TaskKey key : {10, 20, 30}) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> staged = {
        {static_cast<std::uint64_t>(key), 1000ull + key}};
    std::vector<persist::WalOutputPayload> outs(1);
    outs[0].block = static_cast<std::uint64_t>(key) + 1;
    outs[0].version = 2;
    outs[0].bytes = std::string(64, static_cast<char>('a' + key % 26));
    outs[0].digest = BlockStore::hash_bytes(
        reinterpret_cast<const std::byte*>(outs[0].bytes.data()),
        outs[0].bytes.size());
    EXPECT_TRUE(w.append(persist::encode_wal_record(key, staged, outs)));
  }
  w.sync();
  w.close();
  return persist::read_wal_segment(persist::wal_path(dir, 0), kLayout, 0);
}

TEST(PersistWal, RecordRoundTrip) {
  TempDir tmp;
  persist::WalScan scan = write_three_records(tmp.path);
  ASSERT_TRUE(scan.header_ok) << scan.diagnostic;
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.discarded_bytes, 0u);
  EXPECT_TRUE(scan.diagnostic.empty()) << scan.diagnostic;
  EXPECT_EQ(scan.valid_bytes, file_size(persist::wal_path(tmp.path, 0)));
  const persist::WalRecord& r = scan.records[1];
  EXPECT_EQ(r.key, 20);
  ASSERT_EQ(r.staged.size(), 1u);
  EXPECT_EQ(r.staged[0], (std::pair<std::uint64_t, std::uint64_t>{20, 1020}));
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].block, 21u);
  EXPECT_EQ(r.outputs[0].version, 2u);
  ASSERT_EQ(r.outputs[0].payload_size, 64u);
  EXPECT_EQ(std::string(scan.raw.data() + r.outputs[0].payload_offset, 64),
            std::string(64, 'u'));
}

TEST(PersistWal, TornTailIsDiscardedWithDiagnostic) {
  TempDir tmp;
  persist::WalScan full = write_three_records(tmp.path);
  ASSERT_EQ(full.records.size(), 3u);
  // Chop mid-record-3, as a crash between write(2) calls would.
  const std::string path = persist::wal_path(tmp.path, 0);
  truncate_file(path, full.records[1].end_offset + 5);
  persist::WalScan scan = persist::read_wal_segment(path, kLayout, 0);
  EXPECT_TRUE(scan.header_ok);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, full.records[1].end_offset);
  EXPECT_GT(scan.discarded_bytes, 0u);
  EXPECT_FALSE(scan.diagnostic.empty());
}

TEST(PersistWal, BitFlipStopsReplayAtCrcFailure) {
  TempDir tmp;
  persist::WalScan full = write_three_records(tmp.path);
  ASSERT_EQ(full.records.size(), 3u);
  // Flip a payload byte of record 2; records 2 and 3 must both be dropped
  // (replay never skips over a bad record — prefix rule).
  const std::string path = persist::wal_path(tmp.path, 0);
  flip_byte(path, full.records[1].end_offset - 2);
  persist::WalScan scan = persist::read_wal_segment(path, kLayout, 0);
  EXPECT_TRUE(scan.header_ok);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, full.records[0].end_offset);
  EXPECT_NE(scan.diagnostic.find("CRC"), std::string::npos)
      << scan.diagnostic;
}

TEST(PersistWal, HeaderMismatchesRejectWholeSegment) {
  TempDir tmp;
  write_three_records(tmp.path);
  const std::string path = persist::wal_path(tmp.path, 0);
  // Sequence mismatch (file claims 0, chain expects 1).
  persist::WalScan scan = persist::read_wal_segment(path, kLayout, 1);
  EXPECT_FALSE(scan.header_ok);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.diagnostic.empty());
  // Layout mismatch (differently-shaped problem).
  scan = persist::read_wal_segment(path, kLayout + 1, 0);
  EXPECT_FALSE(scan.header_ok);
  EXPECT_FALSE(scan.diagnostic.empty());
}

TEST(PersistWal, OpenAppendDropsTornTail) {
  TempDir tmp;
  persist::WalScan full = write_three_records(tmp.path);
  const std::string path = persist::wal_path(tmp.path, 0);
  persist::WalWriter w;
  std::string error;
  // Reopen keeping only the first record; the rest is truncated away.
  ASSERT_TRUE(w.open_append(path, full.records[0].end_offset, &error))
      << error;
  EXPECT_EQ(w.size_bytes(), full.records[0].end_offset);
  std::vector<persist::WalOutputPayload> outs;
  ASSERT_TRUE(w.append(persist::encode_wal_record(99, {}, outs)));
  w.close();
  persist::WalScan scan = persist::read_wal_segment(path, kLayout, 0);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].key, 10);
  EXPECT_EQ(scan.records[1].key, 99);
}

// --- snapshots ---------------------------------------------------------------

class PersistSnapshot : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = make_app("lcs", {128, 32, 3});
    WorkStealingPool pool(2);
    run_baseline(*app_, pool, 1);  // fill the store with a valid frontier
    layout_ = persist::layout_signature(app_->block_store());
    data_.seq = 5;
    data_.committed = {1, 2, 3, 4};
    data_.staged = {{0, 42}, {3, 7}};
    data_.store = app_->block_store().snapshot();
    std::string error;
    ASSERT_TRUE(persist::write_snapshot(tmp_.path, layout_, data_, &error))
        << error;
    path_ = persist::snapshot_path(tmp_.path, 5);
  }

  TempDir tmp_;
  std::unique_ptr<TaskGraphProblem> app_;
  std::uint64_t layout_ = 0;
  persist::SnapshotData data_;
  std::string path_;
};

TEST_F(PersistSnapshot, RoundTrip) {
  persist::SnapshotData out;
  std::string diag;
  ASSERT_TRUE(persist::load_snapshot(path_, layout_,
                                     persist::snapshot_layout(app_->block_store()),
                                     &out, &diag))
      << diag;
  EXPECT_EQ(out.seq, 5u);
  EXPECT_EQ(out.committed, data_.committed);
  EXPECT_EQ(out.staged, data_.staged);
  EXPECT_EQ(out.store.bytes, data_.store.bytes);
  EXPECT_EQ(out.store.states, data_.store.states);
  EXPECT_EQ(out.store.sums, data_.store.sums);
}

TEST_F(PersistSnapshot, BitFlipIsRejectedWithDiagnostic) {
  flip_byte(path_, file_size(path_) / 2);
  persist::SnapshotData out;
  std::string diag;
  EXPECT_FALSE(persist::load_snapshot(
      path_, layout_, persist::snapshot_layout(app_->block_store()), &out,
      &diag));
  EXPECT_NE(diag.find("CRC"), std::string::npos) << diag;
}

TEST_F(PersistSnapshot, TruncationIsRejectedWithDiagnostic) {
  truncate_file(path_, file_size(path_) - 10);
  persist::SnapshotData out;
  std::string diag;
  EXPECT_FALSE(persist::load_snapshot(
      path_, layout_, persist::snapshot_layout(app_->block_store()), &out,
      &diag));
  EXPECT_FALSE(diag.empty());
}

TEST_F(PersistSnapshot, LayoutMismatchIsRejected) {
  persist::SnapshotData out;
  std::string diag;
  EXPECT_FALSE(persist::load_snapshot(
      path_, layout_ + 1, persist::snapshot_layout(app_->block_store()), &out,
      &diag));
  EXPECT_FALSE(diag.empty());
}

// --- end-to-end restart through the executor --------------------------------

RunSpec durable_spec(const std::string& dir, WalSync sync,
                     std::uint64_t snapshot_every = 0) {
  RunSpec spec;
  spec.kind = ExecutorKind::kFaultTolerant;
  spec.reps = 1;
  spec.durability.dir = dir;
  spec.durability.sync = sync;
  spec.durability.snapshot_every = snapshot_every;
  return spec;
}

TEST(PersistRestart, SecondRunSkipsEveryTask) {
  TempDir tmp;
  auto app = make_app("lcs", {256, 32, 3});
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  WorkStealingPool pool(4);
  const RunSpec spec = durable_spec(tmp.path, WalSync::kEvery);

  ExecReport first = run_executor(*app, pool, spec).reports[0];
  EXPECT_EQ(first.computes, tasks);
  EXPECT_EQ(first.wal_records, tasks);
  EXPECT_GT(first.wal_bytes, 0u);
  EXPECT_EQ(first.tasks_skipped_on_restart, 0u);

  // run_executor resets all problem data; only the persist dir carries
  // state across. Every task must be restored and skipped.
  ExecReport second = run_executor(*app, pool, spec).reports[0];
  EXPECT_EQ(second.computes, 0u);
  EXPECT_EQ(second.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(second.wal_records, 0u);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

TEST(PersistRestart, CorruptWalTailRecomputesOnlyTheSuffix) {
  TempDir tmp;
  auto app = make_app("lcs", {256, 32, 3});
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  WorkStealingPool pool(4);
  const RunSpec spec = durable_spec(tmp.path, WalSync::kEvery);
  run_executor(*app, pool, spec);

  // Flip a byte inside the last record's payload: replay must stop there,
  // re-execute the discarded task, and still validate.
  const std::string wal = persist::wal_path(tmp.path, 0);
  flip_byte(wal, file_size(wal) - 2);
  ExecReport r = run_executor(*app, pool, spec).reports[0];
  EXPECT_GT(r.tasks_skipped_on_restart, 0u);
  EXPECT_GT(r.computes, 0u);
  EXPECT_EQ(r.tasks_skipped_on_restart + r.computes, tasks);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

TEST(PersistRestart, SnapshotRotationPrunesAndRestores) {
  TempDir tmp;
  auto app = make_app("lcs", {256, 32, 3});
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  WorkStealingPool pool(4);
  const RunSpec spec = durable_spec(tmp.path, WalSync::kBatch, 16);

  ExecReport first = run_executor(*app, pool, spec).reports[0];
  EXPECT_GT(first.snapshots_written, 1u);
  persist::DirListing ls = persist::scan_dir(tmp.path);
  // Rotation keeps the fallback chain only: the two newest snapshots and
  // the segments from the older one onward.
  EXPECT_LE(ls.snapshots.size(), 2u);
  EXPECT_LE(ls.wals.size(), 2u);

  ExecReport second = run_executor(*app, pool, spec).reports[0];
  EXPECT_EQ(second.computes, 0u);
  EXPECT_EQ(second.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

TEST(PersistRestart, CorruptNewestSnapshotFallsBackToOlderChain) {
  TempDir tmp;
  auto app = make_app("lcs", {256, 32, 3});
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  WorkStealingPool pool(4);
  const RunSpec spec = durable_spec(tmp.path, WalSync::kBatch, 16);
  run_executor(*app, pool, spec);

  persist::DirListing ls = persist::scan_dir(tmp.path);
  ASSERT_FALSE(ls.snapshots.empty());
  const std::string newest =
      persist::snapshot_path(tmp.path, ls.snapshots.back());
  flip_byte(newest, file_size(newest) / 2);

  // The older snapshot + the retained WAL segments still cover the full
  // history, so the restart loses nothing.
  ExecReport r = run_executor(*app, pool, spec).reports[0];
  EXPECT_EQ(r.computes, 0u);
  EXPECT_EQ(r.tasks_skipped_on_restart, tasks);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
}

TEST(PersistRestart, ResumeFalseWipesAndStartsFresh) {
  TempDir tmp;
  auto app = make_app("lcs", {256, 32, 3});
  const std::uint64_t tasks = analyze_graph(*app).tasks;
  WorkStealingPool pool(4);
  run_executor(*app, pool, durable_spec(tmp.path, WalSync::kBatch));

  RunSpec fresh = durable_spec(tmp.path, WalSync::kBatch);
  fresh.durability.resume = false;
  ExecReport r = run_executor(*app, pool, fresh).reports[0];
  EXPECT_EQ(r.tasks_skipped_on_restart, 0u);
  EXPECT_EQ(r.computes, tasks);
  EXPECT_EQ(r.wal_records, tasks);
}

TEST(PersistRestart, AllAppsRestoreByteIdenticalResults) {
  for (const std::string& name : paper_benchmarks()) {
    TempDir tmp;
    auto app = make_app(name, name == "fw" ? AppConfig{96, 16, 3}
                                           : AppConfig{256, 32, 3});
    WorkStealingPool pool(4);
    const RunSpec spec = durable_spec(tmp.path, WalSync::kBatch);
    run_executor(*app, pool, spec);
    const std::uint64_t once = app->result_checksum();
    ExecReport r = run_executor(*app, pool, spec).reports[0];
    EXPECT_EQ(r.computes, 0u) << name;
    EXPECT_GT(r.tasks_skipped_on_restart, 0u) << name;
    EXPECT_EQ(app->result_checksum(), once) << name;
  }
}

}  // namespace
}  // namespace ftdag
