// Multi-job runtime tests: the per-job isolation contract under real
// concurrency (this file is in the TSan and ASan CI binaries), plus the
// Runtime state machine — admission bounds, FIFO dispatch, cancellation,
// queue deadlines, drain/shutdown determinism and the spec-validation
// rejections (including the durable-resume-with-reps footgun).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/app_registry.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/runtime.hpp"

namespace ftdag {
namespace {

AppConfig small_config(const std::string& name) {
  if (name == "fw") return {64, 16, 3};
  return {128, 32, 3};
}

RunSpec spec_of(ExecutorKind kind, int reps = 1) {
  RunSpec spec;
  spec.kind = kind;
  spec.reps = reps;
  return spec;
}

// A spec whose job runs long enough (many reps) that the test can observe
// the runtime mid-flight: wait for kRunning, then exercise the queue behind
// the busy dispatcher.
RunSpec busy_spec() { return spec_of(ExecutorKind::kBaseline, 60); }

void wait_until_running(const JobHandle& job) {
  while (job->state() == JobState::kQueued) std::this_thread::yield();
  ASSERT_EQ(job->state(), JobState::kRunning);
}

// The isolation stress: six mixed-kind jobs run concurrently on one shared
// pool, one of them under fault injection. Every job must produce the exact
// solo result (the checksum validation inside each repetition is the
// byte-identity check against the per-problem sequential reference), and
// the per-job ExecReport counters must not bleed: only the injected job
// sees faults, the baseline jobs see none of the FT machinery.
TEST(RuntimeMultiJob, ConcurrentMixedJobsAreIsolated) {
  struct JobPlan {
    const char* app;
    ExecutorKind kind;
    bool inject;
  };
  const JobPlan plans[] = {
      {"lcs", ExecutorKind::kBaseline, false},
      {"fw", ExecutorKind::kFaultTolerant, true},
      {"lcs", ExecutorKind::kFaultTolerant, false},
      {"fw", ExecutorKind::kBaseline, false},
      {"lcs", ExecutorKind::kCheckpoint, false},
      {"fw", ExecutorKind::kFaultTolerant, false},
  };

  std::vector<std::unique_ptr<TaskGraphProblem>> problems;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<RunSpec> specs;
  for (const JobPlan& p : plans) {
    problems.push_back(make_app(p.app, small_config(p.app)));
    RunSpec spec = spec_of(p.kind, 3);
    if (p.inject) {
      FaultPlanner planner(*problems.back());
      FaultPlanSpec fspec;
      fspec.target_count = 4;
      fspec.seed = 11;
      injectors.push_back(std::make_unique<PlannedFaultInjector>(
          planner.plan(fspec).faults));
      spec.injector = injectors.back().get();
    }
    specs.push_back(spec);
  }

  // Solo reference pass: each job alone on the pool, recording counters.
  std::vector<std::uint64_t> solo_tasks;
  {
    Runtime::Options opts;
    opts.threads = 4;
    Runtime runtime(opts);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].injector != nullptr) specs[i].injector->reset();
      JobHandle job = runtime.run_sync(*problems[i], specs[i]);
      ASSERT_EQ(job->wait(), JobState::kCompleted) << job->error();
      solo_tasks.push_back(job->runs().reports.back().tasks_discovered);
    }
  }

  // Concurrent pass: all six in flight at once.
  Runtime::Options opts;
  opts.threads = 4;
  opts.max_inflight = 6;
  Runtime runtime(opts);
  std::vector<JobHandle> handles;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].injector != nullptr) specs[i].injector->reset();
    handles.push_back(runtime.submit(*problems[i], specs[i]));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(handles[i]->wait(), JobState::kCompleted) << handles[i]->error();
    // Validation ran inside every repetition; re-check the final state too.
    EXPECT_EQ(problems[i]->result_checksum(), problems[i]->reference_checksum())
        << "job " << i;
    ASSERT_EQ(handles[i]->runs().reports.size(), 3u);
    for (const ExecReport& r : handles[i]->runs().reports) {
      EXPECT_EQ(r.tasks_discovered, solo_tasks[i]) << "job " << i;
      if (plans[i].inject) {
        EXPECT_GT(r.injected, 0u) << "job " << i;
        EXPECT_GT(r.recoveries, 0u) << "job " << i;
      } else {
        // Nothing bled over from the injected neighbour.
        EXPECT_EQ(r.injected, 0u) << "job " << i;
        EXPECT_EQ(r.faults_caught, 0u) << "job " << i;
        EXPECT_EQ(r.recoveries, 0u) << "job " << i;
      }
    }
  }
  const Runtime::Counters c = runtime.counters();
  EXPECT_EQ(c.submitted, 6u);
  EXPECT_EQ(c.completed, 6u);
  EXPECT_EQ(c.rejected, 0u);
}

TEST(RuntimeMultiJob, FifoStartOrder) {
  Runtime::Options opts;
  opts.threads = 2;
  opts.max_inflight = 1;
  Runtime runtime(opts);
  std::vector<std::unique_ptr<TaskGraphProblem>> problems;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    problems.push_back(make_app("lcs", small_config("lcs")));
    handles.push_back(
        runtime.submit(*problems.back(), spec_of(ExecutorKind::kBaseline)));
  }
  runtime.drain();
  std::uint64_t prev = 0;
  for (const JobHandle& job : handles) {
    EXPECT_EQ(job->state(), JobState::kCompleted) << job->error();
    EXPECT_GT(job->run_sequence(), prev);  // started in submission order
    prev = job->run_sequence();
  }
}

TEST(RuntimeMultiJob, QueueBoundRejectsAndTryCancelDequeues) {
  Runtime::Options opts;
  opts.threads = 2;
  opts.max_inflight = 1;
  opts.max_queued = 1;
  Runtime runtime(opts);
  auto busy = make_app("lcs", small_config("lcs"));
  auto queued = make_app("lcs", small_config("lcs"));
  auto extra = make_app("lcs", small_config("lcs"));

  JobHandle j1 = runtime.submit(*busy, busy_spec());
  wait_until_running(j1);  // queue is now empty, the only dispatcher is busy
  JobHandle j2 = runtime.submit(*queued, spec_of(ExecutorKind::kBaseline));
  EXPECT_EQ(j2->state(), JobState::kQueued);
  JobHandle j3 = runtime.submit(*extra, spec_of(ExecutorKind::kBaseline));
  EXPECT_EQ(j3->state(), JobState::kRejected);
  EXPECT_NE(j3->error().find("admission queue full"), std::string::npos)
      << j3->error();

  // Cancel the queued job before the dispatcher frees up.
  EXPECT_TRUE(j2->try_cancel());
  EXPECT_EQ(j2->wait(), JobState::kCancelled);
  EXPECT_FALSE(j2->try_cancel());  // terminal: nothing to cancel

  EXPECT_EQ(j1->wait(), JobState::kCompleted) << j1->error();
  const Runtime::Counters c = runtime.counters();
  EXPECT_EQ(c.submitted, 2u);
  EXPECT_EQ(c.rejected, 1u);
}

TEST(RuntimeMultiJob, QueueDeadlineExpires) {
  Runtime::Options opts;
  opts.threads = 2;
  opts.max_inflight = 1;
  Runtime runtime(opts);
  auto busy = make_app("lcs", small_config("lcs"));
  auto late = make_app("lcs", small_config("lcs"));

  JobHandle j1 = runtime.submit(*busy, busy_spec());
  wait_until_running(j1);
  JobLimits limits;
  limits.queue_timeout_seconds = 1e-9;  // expires behind the busy dispatcher
  JobHandle j2 =
      runtime.submit(*late, spec_of(ExecutorKind::kBaseline), limits);
  EXPECT_EQ(j2->wait(), JobState::kExpired);
  EXPECT_EQ(j1->wait(), JobState::kCompleted) << j1->error();
  EXPECT_EQ(runtime.counters().expired, 1u);
}

TEST(RuntimeMultiJob, DrainFinishesQueuedJobsThenRejects) {
  Runtime::Options opts;
  opts.threads = 2;
  opts.max_inflight = 2;
  Runtime runtime(opts);
  std::vector<std::unique_ptr<TaskGraphProblem>> problems;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 5; ++i) {
    problems.push_back(make_app("fw", small_config("fw")));
    handles.push_back(
        runtime.submit(*problems.back(), spec_of(ExecutorKind::kBaseline, 2)));
  }
  runtime.drain();
  for (const JobHandle& job : handles)
    EXPECT_EQ(job->state(), JobState::kCompleted) << job->error();
  EXPECT_EQ(runtime.counters().completed, 5u);

  auto after = make_app("lcs", small_config("lcs"));
  JobHandle rejected =
      runtime.submit(*after, spec_of(ExecutorKind::kBaseline));
  EXPECT_EQ(rejected->state(), JobState::kRejected);
}

TEST(RuntimeMultiJob, ShutdownCancelsQueuedButFinishesRunning) {
  Runtime::Options opts;
  opts.threads = 2;
  opts.max_inflight = 1;
  Runtime runtime(opts);
  auto busy = make_app("lcs", small_config("lcs"));
  auto queued = make_app("lcs", small_config("lcs"));

  JobHandle j1 = runtime.submit(*busy, busy_spec());
  wait_until_running(j1);
  JobHandle j2 = runtime.submit(*queued, spec_of(ExecutorKind::kBaseline));
  runtime.shutdown();
  EXPECT_EQ(j1->state(), JobState::kCompleted) << j1->error();
  EXPECT_EQ(j2->state(), JobState::kCancelled);
  EXPECT_EQ(runtime.counters().cancelled, 1u);
}

TEST(RuntimeMultiJob, SpecValidationRejects) {
  // The injector-kind rule.
  auto app = make_app("lcs", small_config("lcs"));
  PlannedFaultInjector injector({});
  RunSpec bad = spec_of(ExecutorKind::kBaseline);
  bad.injector = &injector;
  EXPECT_NE(spec_error(bad).find("fault-tolerant"), std::string::npos);

  RunSpec zero_reps = spec_of(ExecutorKind::kBaseline, 0);
  EXPECT_NE(spec_error(zero_reps).find("reps"), std::string::npos);

  // The durable-resume footgun: resume + reps > 1 would restore the
  // finished state and skip every repetition after the first.
  RunSpec footgun = spec_of(ExecutorKind::kFaultTolerant, 3);
  footgun.durability.dir = "/tmp/ftdag_footgun";
  footgun.durability.resume = true;
  const std::string err = spec_error(footgun);
  EXPECT_NE(err.find("resume"), std::string::npos) << err;
  EXPECT_NE(err.find("reps"), std::string::npos) << err;
  footgun.reps = 1;
  EXPECT_EQ(spec_error(footgun), "");

  Runtime::Options opts;
  opts.threads = 2;
  Runtime runtime(opts);
  JobHandle job = runtime.submit(*app, bad);
  EXPECT_EQ(job->state(), JobState::kRejected);
  EXPECT_EQ(job->wait(), JobState::kRejected);  // terminal immediately
  EXPECT_EQ(runtime.counters().rejected, 1u);
}

// Two durable jobs sharing one base persist dir must not share a WAL:
// distinct job_tags give each its own subdirectory.
TEST(RuntimeMultiJob, ConcurrentDurableJobsUseTaggedSubdirs) {
  namespace fs = std::filesystem;
  const fs::path base =
      fs::temp_directory_path() / "ftdag_runtime_multijob_test";
  fs::remove_all(base);

  Runtime::Options opts;
  opts.threads = 4;
  opts.max_inflight = 2;
  Runtime runtime(opts);
  auto a = make_app("lcs", small_config("lcs"));
  auto b = make_app("fw", small_config("fw"));

  RunSpec spec = spec_of(ExecutorKind::kFaultTolerant);
  spec.durability.dir = base.string();
  spec.job_tag = "job-a";
  JobHandle ja = runtime.submit(*a, spec);
  spec.job_tag = "job-b";
  JobHandle jb = runtime.submit(*b, spec);
  EXPECT_EQ(ja->wait(), JobState::kCompleted) << ja->error();
  EXPECT_EQ(jb->wait(), JobState::kCompleted) << jb->error();

  ASSERT_TRUE(fs::is_directory(base / "job-a"));
  ASSERT_TRUE(fs::is_directory(base / "job-b"));
  EXPECT_FALSE(fs::is_empty(base / "job-a"));
  EXPECT_FALSE(fs::is_empty(base / "job-b"));
  EXPECT_GT(ja->runs().reports.back().wal_records, 0u);
  EXPECT_GT(jb->runs().reports.back().wal_records, 0u);
  fs::remove_all(base);
}

// Per-group quiescence at the scheduler layer: external threads can each
// join their own spawn tree on one shared pool without waiting on each
// other's work.
TEST(RuntimeMultiJob, ConcurrentGroupJoinsOnSharedPool) {
  WorkStealingPool pool(4);
  constexpr int kThreads = 4;
  constexpr int kSpawnsPerTree = 64;
  std::vector<std::thread> threads;
  std::vector<std::atomic<int>> counts(kThreads);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &counts, t] {
      for (int round = 0; round < 8; ++round) {
        JobGroup group;
        std::atomic<int>& count = counts[t];
        pool.run_group_to_quiescence(group, [&pool, &count] {
          for (int i = 0; i < kSpawnsPerTree; ++i)
            pool.spawn([&count] {
              count.fetch_add(1, std::memory_order_relaxed);
            });
        });
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const auto& c : counts)
    EXPECT_EQ(c.load(std::memory_order_relaxed), 8 * kSpawnsPerTree);
}

}  // namespace
}  // namespace ftdag
