// Numerical validation of the five benchmark kernels against independent
// naive implementations (not the shared-kernel reference): full-table LCS
// and SW, triple-loop FW, factor recomposition for LU and Cholesky.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/cholesky.hpp"
#include "apps/floyd_warshall.hpp"
#include "apps/lcs.hpp"
#include "apps/lu.hpp"
#include "apps/smith_waterman.hpp"
#include "harness/experiment.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

// Re-generates the app input sequences exactly as the problems do (same
// generator, same draw order).
void gen_sequences(std::int64_t n, std::uint64_t seed,
                   std::vector<std::uint8_t>& a, std::vector<std::uint8_t>& b) {
  Xoshiro256 rng(seed);
  a.resize(n);
  b.resize(n);
  for (auto& c : a) c = static_cast<std::uint8_t>(rng.below(4));
  for (auto& c : b) c = static_cast<std::uint8_t>(rng.below(4));
}

TEST(LcsKernel, MatchesNaiveFullTable) {
  const AppConfig cfg{192, 32, 77};
  LcsProblem app(cfg);
  WorkStealingPool pool(2);
  run_baseline(app, pool, 1);

  std::vector<std::uint8_t> a, b;
  gen_sequences(cfg.n, cfg.seed, a, b);
  const std::size_t n = a.size();
  std::vector<std::int32_t> prev(n + 1, 0), cur(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j)
      cur[j] = a[i - 1] == b[j - 1] ? prev[j - 1] + 1
                                    : std::max(prev[j], cur[j - 1]);
    std::swap(prev, cur);
  }
  EXPECT_EQ(app.lcs_length(), prev[n]);
}

TEST(SwKernel, MatchesNaiveFullTable) {
  const AppConfig cfg{192, 32, 77};
  SmithWatermanProblem app(cfg);
  WorkStealingPool pool(2);
  run_baseline(app, pool, 1);

  std::vector<std::uint8_t> a, b;
  gen_sequences(cfg.n, cfg.seed, a, b);
  const std::size_t n = a.size();
  std::vector<std::int32_t> prev(n + 1, 0), cur(n + 1, 0);
  std::int32_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::int32_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 2 : -1);
      std::int32_t h = std::max<std::int32_t>(0, sub);
      h = std::max(h, prev[j] - 1);
      h = std::max(h, cur[j - 1] - 1);
      cur[j] = h;
      best = std::max(best, h);
    }
    std::swap(prev, cur);
  }
  EXPECT_GT(best, 0);
  EXPECT_EQ(app.best_score(), best);
}

TEST(FwKernels, MatchNaiveTripleLoop) {
  const AppConfig cfg{96, 16, 77};  // W=6
  FloydWarshallProblem app(cfg);
  WorkStealingPool pool(2);
  run_baseline(app, pool, 1);

  const int n = static_cast<int>(cfg.n);
  const int b = static_cast<int>(cfg.block);
  const int w = n / b;
  // Rebuild the flat input from the app's blocked input.
  std::vector<std::int32_t> d(static_cast<std::size_t>(n) * n);
  for (int bi = 0; bi < w; ++bi)
    for (int bj = 0; bj < w; ++bj) {
      const std::int32_t* blk = app.input_matrix_block(bi, bj);
      for (int r = 0; r < b; ++r)
        for (int c = 0; c < b; ++c)
          d[static_cast<std::size_t>(bi * b + r) * n + bj * b + c] =
              blk[r * b + c];
    }
  for (int k = 0; k < n; ++k)
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v)
        d[static_cast<std::size_t>(u) * n + v] =
            std::min(d[static_cast<std::size_t>(u) * n + v],
                     d[static_cast<std::size_t>(u) * n + k] +
                         d[static_cast<std::size_t>(k) * n + v]);

  for (int bi = 0; bi < w; ++bi)
    for (int bj = 0; bj < w; ++bj) {
      const std::int32_t* blk = app.result_block(bi, bj);
      for (int r = 0; r < b; ++r)
        for (int c = 0; c < b; ++c)
          ASSERT_EQ(blk[r * b + c],
                    d[static_cast<std::size_t>(bi * b + r) * n + bj * b + c])
              << "block (" << bi << "," << bj << ") cell (" << r << "," << c
              << ")";
    }
}

TEST(LuKernels, FactorsRecomposeInput) {
  const AppConfig cfg{128, 32, 77};  // W=4
  LuProblem app(cfg);
  WorkStealingPool pool(2);
  run_baseline(app, pool, 1);

  const int n = static_cast<int>(cfg.n);
  const int b = static_cast<int>(cfg.block);
  const int w = n / b;
  auto fetch = [&](auto getter, std::vector<double>& m) {
    m.assign(static_cast<std::size_t>(n) * n, 0.0);
    for (int bi = 0; bi < w; ++bi)
      for (int bj = 0; bj < w; ++bj) {
        const double* blk = getter(bi, bj);
        for (int r = 0; r < b; ++r)
          for (int c = 0; c < b; ++c)
            m[static_cast<std::size_t>(bi * b + r) * n + bj * b + c] =
                blk[r * b + c];
      }
  };
  std::vector<double> lu, a;
  fetch([&](int i, int j) { return app.factor_block(i, j); }, lu);
  fetch([&](int i, int j) { return app.input_matrix_block(i, j); }, a);

  // A ?= L * U with L unit-lower and U upper from the packed factors.
  double max_err = 0.0;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) {
      double sum = 0.0;
      const int lim = std::min(r, c);
      for (int t = 0; t <= lim; ++t) {
        const double l = (t == r) ? 1.0 : lu[static_cast<std::size_t>(r) * n + t];
        sum += l * lu[static_cast<std::size_t>(t) * n + c];
      }
      max_err = std::max(max_err,
                         std::abs(sum - a[static_cast<std::size_t>(r) * n + c]));
    }
  EXPECT_LT(max_err, 1e-8 * n);
}

TEST(CholeskyKernels, FactorRecomposesInput) {
  const AppConfig cfg{128, 32, 77};  // W=4
  CholeskyProblem app(cfg);
  WorkStealingPool pool(2);
  run_baseline(app, pool, 1);

  const int n = static_cast<int>(cfg.n);
  const int b = static_cast<int>(cfg.block);
  const int w = n / b;
  // Assemble full L (zero above the diagonal).
  std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
  for (int bi = 0; bi < w; ++bi)
    for (int bj = 0; bj <= bi; ++bj) {
      const double* blk = app.factor_block(bi, bj);
      for (int r = 0; r < b; ++r)
        for (int c = 0; c < b; ++c) {
          const int gr = bi * b + r, gc = bj * b + c;
          if (gc <= gr) l[static_cast<std::size_t>(gr) * n + gc] = blk[r * b + c];
        }
    }
  double max_err = 0.0;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c <= r; ++c) {
      double sum = 0.0;
      for (int t = 0; t <= c; ++t)
        sum += l[static_cast<std::size_t>(r) * n + t] *
               l[static_cast<std::size_t>(c) * n + t];
      const double* blk = app.input_matrix_block(r / b, c / b);
      const double want = blk[(r % b) * b + (c % b)];
      max_err = std::max(max_err, std::abs(sum - want));
    }
  EXPECT_LT(max_err, 1e-8 * n);
}

TEST(Apps, ReferenceChecksumIsCachedAndStable) {
  LcsProblem app({128, 32, 5});
  const std::uint64_t a = app.reference_checksum();
  const std::uint64_t b = app.reference_checksum();
  EXPECT_EQ(a, b);
}

TEST(Apps, DifferentSeedsProduceDifferentResults) {
  LcsProblem a({128, 32, 1});
  LcsProblem b({128, 32, 2});
  EXPECT_NE(a.reference_checksum(), b.reference_checksum());
}

TEST(Apps, ResetDataAllowsRerun) {
  LcsProblem app({128, 32, 5});
  WorkStealingPool pool(2);
  run_baseline(app, pool, 1);
  const std::uint64_t first = app.result_checksum();
  app.reset_data();
  EXPECT_NE(app.result_checksum(), first);  // board cleared
  run_baseline(app, pool, 1);
  EXPECT_EQ(app.result_checksum(), first);
}

TEST(Apps, StorageReflectsRetentionPolicy) {
  // SW reuses storage along chains: far less than one boundary per block.
  const AppConfig cfg{512, 32, 5};  // W=16
  SmithWatermanProblem sw(cfg);
  LcsProblem lcs(cfg);
  EXPECT_LT(sw.block_store().total_storage_bytes(),
            lcs.block_store().total_storage_bytes() / 2);
}

}  // namespace
}  // namespace ftdag
