#!/usr/bin/env python3
"""Fixture tests for scripts/check_atomics.py, run as a ctest entry.

Each case invokes the lint as a subprocess (the same way CI does) and
asserts on both the exit status and the diagnostics, so a regression in
either the rules or the reporting fails the suite.
"""

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = REPO / "scripts" / "check_atomics.py"

failures: list[str] = []


def run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True,
        text=True,
        cwd=str(REPO),
    )


def case(name: str, proc: subprocess.CompletedProcess, want_exit: int,
         want_substrings: tuple[str, ...] = (),
         forbid_substrings: tuple[str, ...] = ()) -> None:
    out = proc.stdout + proc.stderr
    problems = []
    if proc.returncode != want_exit:
        problems.append(f"exit {proc.returncode}, want {want_exit}")
    for s in want_substrings:
        if s not in out:
            problems.append(f"missing diagnostic {s!r}")
    for s in forbid_substrings:
        if s in out:
            problems.append(f"unexpected diagnostic {s!r}")
    if problems:
        failures.append(f"{name}: {'; '.join(problems)}\n--- output ---\n{out}")
        print(f"[FAIL] {name}")
    else:
        print(f"[ ok ] {name}")


fx = str(HERE)

# A clean fixture passes even with itself marked hot (its seq_cst carries a
# justification) and with the pairing rule on (both sides tagged in-file).
case(
    "clean_passes",
    run(f"{fx}/clean_atomics.cpp", "--hot-path", "clean_atomics.cpp"),
    want_exit=0,
    want_substrings=("check_atomics: clean",),
)

case(
    "bare_load_fails",
    run(f"{fx}/bare_load.cpp"),
    want_exit=1,
    want_substrings=(
        "[explicit-order]",
        "atomic .load(",
        "atomic .store(",
        "pre-++ on atomic 'value_'",
    ),
)

# The seq_cst rule only applies to files named hot: same file, two verdicts.
case(
    "seq_cst_ignored_off_hot_path",
    run(f"{fx}/unjustified_seq_cst.cpp", "--no-pairs-check"),
    want_exit=0,
)
case(
    "seq_cst_flagged_on_hot_path",
    run(f"{fx}/unjustified_seq_cst.cpp", "--no-pairs-check",
        "--hot-path", "unjustified_seq_cst.cpp"),
    want_exit=1,
    want_substrings=("[seq_cst-justified]", "memory_order_seq_cst"),
)

case(
    "unpaired_acquire_fails",
    run(f"{fx}/unpaired_acquire.cpp"),
    want_exit=1,
    want_substrings=(
        "[acquire-release-pairs]",
        "without a '// pairs: <tag>' comment",
        "fixture-orphan-tag",
        "no release",
    ),
)
case(
    "pairing_rule_can_be_disabled",
    run(f"{fx}/unpaired_acquire.cpp", "--no-pairs-check"),
    want_exit=0,
)

# Rule D is path-scoped: raw primitives under tests/ are only flagged when
# --raw-ban forces the rule onto arbitrary paths. Line 22 of the fixture is
# a raw atomic under a NOLINT-ATOMICS escape and must stay silent.
case(
    "raw_primitives_ignored_outside_src",
    run(f"{fx}/raw_primitive.cpp"),
    want_exit=0,
    forbid_substrings=("[raw-sync-primitive]",),
)
case(
    "raw_primitives_flagged_with_raw_ban",
    run(f"{fx}/raw_primitive.cpp", "--raw-ban"),
    want_exit=1,
    want_substrings=(
        "[raw-sync-primitive]",
        "raw std::atomic<...>",
        "bare SpinLock",
        "bare SpinLockGuard",
        "check/sync_shim.hpp",
    ),
    forbid_substrings=("raw_primitive.cpp:22:",),
)

if failures:
    print("\n" + "\n\n".join(failures), file=sys.stderr)
    sys.exit(1)
print(f"\nall {8} lint fixture cases passed")
