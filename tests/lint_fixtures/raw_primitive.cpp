// Fixture: rule D (raw-sync-primitive). Deliberately clean under rules
// A-C (explicit relaxed orders, no acquire/release sites) so that every
// finding here isolates the raw-primitive ban — which only applies to
// this tests/ path when --raw-ban is passed.
#include <atomic>

#include "support/spin_lock.hpp"

namespace fixture {

struct Counter {
  std::atomic<int> hits{0};  // want: raw std::atomic
  ftdag::SpinLock lock;      // want: bare SpinLock
};

inline int read_hits(Counter& c) {
  ftdag::SpinLockGuard guard(c.lock);  // want: bare SpinLockGuard
  return c.hits.load(std::memory_order_relaxed);
}

// NOLINT-ATOMICS(fixture: the escape hatch must also cover rule D)
inline std::atomic<unsigned> exempt_ok{0};

}  // namespace fixture
