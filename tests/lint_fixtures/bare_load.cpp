// Lint fixture: MUST FAIL check_atomics.py with explicit-order findings —
// a bare .load(), a bare .store(v), and an operator-form increment, all of
// which silently default to the strongest (and slowest) ordering.

#include <atomic>

namespace fixture {

class Counter {
 public:
  int get() { return value_.load(); }           // finding: bare load
  void set(int v) { value_.store(v); }          // finding: bare store
  void bump() { ++value_; }                     // finding: implicit RMW

 private:
  std::atomic<int> value_{0};
};

}  // namespace fixture
