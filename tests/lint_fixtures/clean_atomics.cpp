// Lint fixture: everything here satisfies scripts/check_atomics.py.
// Exercises explicit orders, tag pairing across both sides, the zero-arg
// accessor exemption, the seq_cst justification comment, and the escape
// hatch. Compiled by no target; scanned by the lint fixture test only.

#include <atomic>

namespace fixture {

struct Engine {
  int store_ = 0;
  // Zero-argument member named like the atomic op: must NOT be flagged
  // (std::atomic::store requires a value argument).
  int store() { return store_; }
};

class Publisher {
 public:
  void publish(int v) {
    payload_ = v;
    // pairs: fixture-flag — makes payload_ visible to the consumer.
    flag_.store(true, std::memory_order_release);
  }

  int consume() {
    // pairs: fixture-flag
    while (!flag_.load(std::memory_order_acquire)) {
    }
    return payload_;
  }

  void tally() { count_.fetch_add(1, std::memory_order_relaxed); }

  // A tagged seq_cst operation counts as both sides of its edge: this CAS
  // is the only release counterpart for the acquire in wait_claimed().
  bool claim() {
    bool expected = false;
    return claimed_.compare_exchange_strong(
        expected, true,
        // seq_cst: fixture total order; pairs: fixture-claim
        std::memory_order_seq_cst, std::memory_order_relaxed);
  }

  void wait_claimed() {
    // pairs: fixture-claim
    while (!claimed_.load(std::memory_order_acquire)) {
    }
  }

  // seq_cst: fixture demonstrates a justified fence; the justification
  // comment satisfies the hot-path rule when this file is marked hot.
  void fence() { std::atomic_thread_fence(std::memory_order_seq_cst); }

  void escape_hatch() {
    // NOLINT-ATOMICS(fixture demonstrates the escape hatch)
    count_.fetch_add(1);
  }

 private:
  int payload_ = 0;
  std::atomic<bool> flag_{false};
  std::atomic<bool> claimed_{false};
  std::atomic<int> count_{0};
};

}  // namespace fixture
