// Lint fixture: MUST FAIL check_atomics.py with acquire-release-pairs
// findings — one acquire with no `pairs:` comment at all, and one whose tag
// names a release counterpart that exists nowhere in the scanned tree.

#include <atomic>

namespace fixture {

class Waiter {
 public:
  bool poll_untagged() {
    // finding: no pairs tag naming the synchronizes-with edge
    return ready_.load(std::memory_order_acquire);
  }

  bool poll_orphan() {
    // pairs: fixture-orphan-tag — finding: no release side with this tag
    return ready_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> ready_{false};
};

}  // namespace fixture
