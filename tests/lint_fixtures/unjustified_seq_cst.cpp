// Lint fixture: MUST FAIL check_atomics.py when scanned with
// `--hot-path unjustified_seq_cst.cpp` — sequential consistency on a hot
// path without a written justification.

#include <atomic>

namespace fixture {

class HotPath {
 public:
  bool claim() {
    int expected = 0;
    // finding: seq_cst in a hot-path file with no `seq_cst:` comment
    return slot_.compare_exchange_strong(expected, 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
  }

 private:
  std::atomic<int> slot_{0};
};

}  // namespace fixture
