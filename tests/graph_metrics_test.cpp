// Graph-structure tests: Table-I-style metrics on hand-checkable
// configurations plus generic consistency invariants for every app.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "apps/app_registry.hpp"
#include "graph/graph_metrics.hpp"

namespace ftdag {
namespace {

TEST(GraphMetrics, LcsSmallGrid) {
  // 4x4 block grid: T = 16, E = 3*(W-1)^2 + 2*(W-1), span = 2W - 1.
  auto app = make_app("lcs", {128, 32, 1});
  GraphMetrics m = analyze_graph(*app);
  EXPECT_EQ(m.tasks, 16u);
  EXPECT_EQ(m.edges, 3u * 9 + 2u * 3);
  EXPECT_EQ(m.span, 7u);
  EXPECT_EQ(m.sources, 1u);
  EXPECT_EQ(m.max_in_degree, 3u);
  EXPECT_EQ(m.max_out_degree, 3u);
}

TEST(GraphMetrics, SwMatchesLcsTopology) {
  GraphMetrics lcs = analyze_graph(*make_app("lcs", {128, 32, 1}));
  GraphMetrics sw = analyze_graph(*make_app("sw", {128, 32, 1}));
  EXPECT_EQ(sw.tasks, lcs.tasks);
  EXPECT_EQ(sw.edges, lcs.edges);
  EXPECT_EQ(sw.span, lcs.span);
}

TEST(GraphMetrics, FwCountsMatchFormula) {
  // W = 4 stages: T = W^3 + 1 (aggregating sink), span = 3W + 1.
  auto app = make_app("fw", {64, 16, 1});
  GraphMetrics m = analyze_graph(*app);
  EXPECT_EQ(m.tasks, 64u + 1);
  EXPECT_EQ(m.span, 13u);
  // E = stage0 [2(W-1) + 2(W-1)^2] + (W-1) stages [1 + 4(W-1) + 3(W-1)^2]
  //   + (W-2) WAR stages [2(W-1) + 2(W-1)^2] + W^2 sink edges.
  const std::size_t w = 4, e1 = w - 1;
  EXPECT_EQ(m.edges, (2 * e1 + 2 * e1 * e1) + e1 * (1 + 4 * e1 + 3 * e1 * e1) +
                         (w - 2) * (2 * e1 + 2 * e1 * e1) + w * w);
  EXPECT_EQ(m.sources, 1u);              // only (0,0,0)
  EXPECT_EQ(m.max_in_degree, 16u);       // the sink gathers W^2 tasks
  EXPECT_EQ(m.max_out_degree, 2u * 3 + 1);  // diag: 2(W-1) panels + next stage
}

TEST(GraphMetrics, LuTinyGraphByHand) {
  // W = 2: tasks (0,0,0) (0,0,1) (0,1,0) (0,1,1) (1,1,1); E = 5; span = 4.
  auto app = make_app("lu", {64, 32, 1});
  GraphMetrics m = analyze_graph(*app);
  EXPECT_EQ(m.tasks, 5u);
  EXPECT_EQ(m.edges, 5u);
  EXPECT_EQ(m.span, 4u);
  EXPECT_EQ(m.sources, 1u);
}

TEST(GraphMetrics, CholeskyTinyGraphByHand) {
  // W = 2: potrf(0), trsm(0,1), syrk(0,1,1), potrf(1); E = 3; span = 4.
  auto app = make_app("cholesky", {64, 32, 1});
  GraphMetrics m = analyze_graph(*app);
  EXPECT_EQ(m.tasks, 4u);
  EXPECT_EQ(m.edges, 3u);
  EXPECT_EQ(m.span, 4u);
}

TEST(GraphMetrics, LuSpanGrowsLinearlyWithGrid) {
  GraphMetrics m2 = analyze_graph(*make_app("lu", {64, 32, 1}));   // W=2
  GraphMetrics m4 = analyze_graph(*make_app("lu", {128, 32, 1}));  // W=4
  // Right-looking LU critical path: 3 tasks per step after the first.
  EXPECT_EQ(m4.span - m2.span, 2u * 3);
}

// Every app, small config: structural invariants that the executors rely on.
class GraphConsistency : public ::testing::TestWithParam<const char*> {};

AppConfig tiny_config(const std::string& name) {
  if (name == "lcs" || name == "sw") return {160, 32, 1};
  if (name == "fw") return {80, 16, 1};
  return {160, 32, 1};  // lu, cholesky: W = 5
}

TEST_P(GraphConsistency, PredSuccMirrorAndAcyclic) {
  const std::string name = GetParam();
  auto app = make_app(name, tiny_config(name));

  std::vector<TaskKey> keys;
  app->all_tasks(keys);
  std::unordered_set<TaskKey> keyset(keys.begin(), keys.end());
  EXPECT_EQ(keyset.size(), keys.size()) << "duplicate keys in all_tasks";

  std::size_t pred_edges = 0, succ_edges = 0;
  for (TaskKey k : keys) {
    KeyList preds, succs;
    app->predecessors(k, preds);
    app->successors(k, succs);
    pred_edges += preds.size();
    succ_edges += succs.size();
    // No duplicates within a list; every endpoint is a known task; mirror
    // relation holds.
    std::unordered_set<TaskKey> seen;
    for (TaskKey p : preds) {
      EXPECT_TRUE(seen.insert(p).second) << "duplicate predecessor";
      EXPECT_TRUE(keyset.count(p)) << "predecessor is not a task";
      KeyList ps;
      app->successors(p, ps);
      EXPECT_TRUE(ps.contains(k)) << "pred/succ lists disagree";
    }
    seen.clear();
    for (TaskKey s : succs) {
      EXPECT_TRUE(seen.insert(s).second) << "duplicate successor";
      EXPECT_TRUE(keyset.count(s)) << "successor is not a task";
    }
  }
  EXPECT_EQ(pred_edges, succ_edges);

  // analyze_graph (which asserts acyclicity internally) must reach every
  // task from the sink: the sink dominates the graph.
  GraphMetrics m = analyze_graph(*app);
  EXPECT_EQ(m.tasks, keys.size());
  EXPECT_EQ(m.edges, pred_edges);
  EXPECT_GE(m.span, 1u);
  EXPECT_LE(m.span, m.tasks);
}

TEST_P(GraphConsistency, OutputsHaveRegisteredProducers) {
  const std::string name = GetParam();
  auto app = make_app(name, tiny_config(name));
  std::vector<TaskKey> keys;
  app->all_tasks(keys);
  for (TaskKey k : keys) {
    OutputList outs;
    app->outputs(k, outs);
    for (const ProducedVersion& pv : outs) {
      EXPECT_EQ(app->block_store().producer(pv.block, pv.version), k)
          << "producer table disagrees with outputs()";
      EXPECT_LE(pv.version, pv.last_version);
      EXPECT_EQ(pv.last_version + 1,
                app->block_store().num_versions(pv.block));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, GraphConsistency,
                         ::testing::Values("lcs", "sw", "fw", "lu",
                                           "cholesky"));

}  // namespace
}  // namespace ftdag
