// Replication subsystem: policy decisions, shadow (side-effect-free)
// execution, digest voting, and the end-to-end claim — a real bit flip is
// detected and recovered WITHOUT checksum mode, replication being the
// software detector the paper's detectability assumption otherwise
// presupposes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "apps/random_chain.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "harness/experiment.hpp"
#include "replication/digest_voter.hpp"
#include "replication/replication_policy.hpp"
#include "replication/shadow_arena.hpp"
#include "replication/shadow_context.hpp"

namespace ftdag {
namespace {

// --- policy ----------------------------------------------------------------

TEST(ReplicationPolicy, ParseAllForms) {
  EXPECT_EQ(ReplicationPolicy::parse("off").mode, ReplicationMode::kOff);
  EXPECT_EQ(ReplicationPolicy::parse("").mode, ReplicationMode::kOff);
  EXPECT_FALSE(ReplicationPolicy::parse("off").enabled());

  EXPECT_EQ(ReplicationPolicy::parse("all").mode, ReplicationMode::kAll);

  const ReplicationPolicy s = ReplicationPolicy::parse("sample:0.25");
  EXPECT_EQ(s.mode, ReplicationMode::kSample);
  EXPECT_DOUBLE_EQ(s.sample_rate, 0.25);

  const ReplicationPolicy c = ReplicationPolicy::parse("cost:4096");
  EXPECT_EQ(c.mode, ReplicationMode::kCostThreshold);
  EXPECT_EQ(c.min_output_bytes, 4096u);
}

TEST(ReplicationPolicy, ToStringRoundTrips) {
  for (const char* spec : {"off", "all", "sample:0.5", "cost:1024"}) {
    const ReplicationPolicy p = ReplicationPolicy::parse(spec);
    const ReplicationPolicy q = ReplicationPolicy::parse(p.to_string());
    EXPECT_EQ(q.mode, p.mode) << spec;
    EXPECT_DOUBLE_EQ(q.sample_rate, p.sample_rate) << spec;
    EXPECT_EQ(q.min_output_bytes, p.min_output_bytes) << spec;
  }
}

TEST(ReplicationPolicy, ControlTasksNeverReplicate) {
  // No outputs -> nothing to vote on, under every mode.
  EXPECT_FALSE(ReplicationPolicy::parse("all").should_replicate(7, 0));
  EXPECT_FALSE(ReplicationPolicy::parse("sample:1").should_replicate(7, 0));
  EXPECT_FALSE(ReplicationPolicy::parse("cost:0").should_replicate(7, 0));
}

TEST(ReplicationPolicy, SampleExtremesAndDeterminism) {
  const ReplicationPolicy none = ReplicationPolicy::parse("sample:0");
  const ReplicationPolicy full = ReplicationPolicy::parse("sample:1");
  const ReplicationPolicy half = ReplicationPolicy::parse("sample:0.5");
  int hits = 0;
  for (TaskKey k = 0; k < 1000; ++k) {
    EXPECT_FALSE(none.should_replicate(k, 64));
    EXPECT_TRUE(full.should_replicate(k, 64));
    const bool h = half.should_replicate(k, 64);
    EXPECT_EQ(h, half.should_replicate(k, 64));  // pure function of the key
    hits += h;
  }
  // Key-hash coin: proportion close to p (loose bounds; deterministic seed).
  EXPECT_GT(hits, 400);
  EXPECT_LT(hits, 600);
}

TEST(ReplicationPolicy, CostThresholdComparesOutputFootprint) {
  const ReplicationPolicy p = ReplicationPolicy::parse("cost:1000");
  EXPECT_FALSE(p.should_replicate(1, 999));
  EXPECT_TRUE(p.should_replicate(1, 1000));
  EXPECT_TRUE(p.should_replicate(1, 100000));
}

// --- shadow arena ----------------------------------------------------------

TEST(ShadowArena, RecyclesReleasedBuffers) {
  ShadowArena arena;
  std::byte* a = arena.acquire(256);
  arena.release(a, 256);
  std::byte* b = arena.acquire(256);
  EXPECT_EQ(b, a);  // reused, not reallocated
  EXPECT_EQ(arena.allocations(), 1u);
  std::byte* c = arena.acquire(256);  // first buffer still out
  EXPECT_NE(c, b);
  EXPECT_EQ(arena.allocations(), 2u);
  arena.release(b, 256);
  arena.release(c, 256);
}

// --- shadow context --------------------------------------------------------

TEST(ShadowContext, WritesNeverTouchTheStore) {
  BlockStore store;
  const BlockId b = store.add_block(sizeof(int) * 8, 1);
  ShadowArena arena;
  ShadowContext sc(store, /*key=*/3, arena);
  int* out = sc.write<int>(b, 0);
  for (int i = 0; i < 8; ++i) out[i] = i * i;
  sc.finalize();
  // Nothing published, no ticket held, no staged commit.
  EXPECT_EQ(store.state(b, 0), VersionState::kAbsent);
  EXPECT_EQ(sc.outputs_produced(), 1u);
}

TEST(ShadowContext, DigestMatchesACommittedPrimaryRun) {
  BlockStore store;
  const BlockId b = store.add_block(sizeof(int) * 8, 1);
  ShadowArena arena;

  ShadowContext sc(store, 3, arena);
  int* shadow = sc.write<int>(b, 0);
  for (int i = 0; i < 8; ++i) shadow[i] = 100 - i;
  sc.finalize();
  const DigestList shadow_digests = sc.output_digests();
  ASSERT_EQ(shadow_digests.size(), 1u);

  ComputeContext primary(store, 3);
  int* real = primary.write<int>(b, 0);
  for (int i = 0; i < 8; ++i) real[i] = 100 - i;
  primary.finalize();

  DigestList committed;
  ASSERT_TRUE(DigestVoter::committed_digests(
      store, {{b, 0, 0}}, committed));
  EXPECT_TRUE(DigestVoter::agree(shadow_digests, committed));
}

TEST(ShadowContext, UpdateReadsWithoutConsumingTheInput) {
  BlockStore store;  // default retention 1: versions share one slot
  const BlockId b = store.add_block(sizeof(int) * 4, 2);
  {
    ComputeContext seed_ctx(store, 1);
    int* v0 = seed_ctx.write<int>(b, 0);
    for (int i = 0; i < 4; ++i) v0[i] = 10 + i;
    seed_ctx.finalize();
  }
  ShadowArena arena;
  ShadowContext sc(store, 2, arena);
  UpdateRef<int> u = sc.update<int>(b, 0, 1);
  EXPECT_EQ(u.in[2], 12);   // sees the input version
  EXPECT_EQ(u.out[3], 13);  // untouched cells inherit the input's bytes
  u.out[0] = 999;
  sc.finalize();
  // The primary's in-place update would have consumed v0; the shadow's must
  // not, or the primary (which runs after the replica) finds nothing to read.
  EXPECT_EQ(store.state(b, 0), VersionState::kValid);
  EXPECT_EQ(store.state(b, 1), VersionState::kAbsent);
  EXPECT_FALSE(sc.consumed_inputs());
  EXPECT_EQ(*static_cast<const int*>(store.read(b, 0)), 10);
}

TEST(ShadowContext, StagedResultsAreQueuedButNeverApplied) {
  BlockStore store;
  const BlockId b = store.add_block(sizeof(int), 1);
  ShadowArena arena;
  Atomic<std::uint64_t> slot{7};
  ShadowContext sc(store, 1, arena);
  *sc.write<int>(b, 0) = 1;
  sc.stage_result(&slot, 99);
  sc.finalize();
  EXPECT_EQ(slot.load(std::memory_order_relaxed), 7u);  // not applied: replica has no side effects
  ASSERT_EQ(sc.staged_results().size(), 1u);
  EXPECT_EQ(sc.staged_results()[0].second, 99u);  // but voteable
}

// --- digest voter ----------------------------------------------------------

TEST(DigestVoter, AgreementIsElementWise) {
  DigestList a, b;
  a.push_back({1, 0, 0xABCD});
  b.push_back({1, 0, 0xABCD});
  EXPECT_TRUE(DigestVoter::agree(a, b));
  b[0].digest ^= 1;
  EXPECT_FALSE(DigestVoter::agree(a, b));
  b[0].digest ^= 1;
  b.push_back({2, 0, 0x1234});
  EXPECT_FALSE(DigestVoter::agree(a, b));  // length mismatch
}

TEST(DigestVoter, StagedResultAgreement) {
  Atomic<std::uint64_t> slot{0};
  ComputeContext::StagedResults a, b;
  a.push_back({&slot, 42});
  b.push_back({&slot, 42});
  EXPECT_TRUE(DigestVoter::agree(a, b));
  b[0].second = 43;
  EXPECT_FALSE(DigestVoter::agree(a, b));
}

TEST(DigestVoter, CommittedDigestsFailOnNonValidOutputs) {
  BlockStore store;
  store.add_block(sizeof(int), 1);
  DigestList out;
  EXPECT_FALSE(DigestVoter::committed_digests(store, {{0, 0, 0}}, out));
}

// --- end to end ------------------------------------------------------------

RandomChainSpec chain_spec() {
  RandomChainSpec s;
  s.blocks = 1;  // linear chain: bounded recovery under any fault
  s.versions = 30;
  s.reads = 0;
  s.work_iters = 20;
  s.seed = 31;
  return s;
}

ExecutorOptions replicate(const char* policy) {
  ExecutorOptions o;
  o.replication = ReplicationPolicy::parse(policy);
  return o;
}

// The headline test: checksum mode OFF (the store has no error-detection
// code), a real bit flip lands in a committed mid-chain output, and digest
// voting alone detects it and routes the task into the ordinary selective
// recovery — same scenario bitflip_test.cpp shows producing a silently
// wrong result when undefended.
TEST(Replication, DetectsRealBitFlipWithoutChecksums) {
  RandomChainProblem app(chain_spec());
  ASSERT_FALSE(app.block_store().checksum_mode());
  BitFlipInjector injector({{10, FaultPhase::kAfterCompute, 1}});
  WorkStealingPool pool(2);
  RepeatedRuns runs =
      run_ft(app, pool, 2, &injector, replicate("all"));  // validates result
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.injected, 1u);
    EXPECT_GE(r.digest_mismatches, 1u);
    EXPECT_GT(r.recoveries, 0u);
    EXPECT_GT(r.re_executed, 0u);
    EXPECT_GT(r.replicated, 0u);
  }
}

TEST(Replication, OffPolicyKeepsFastPathCountersZero) {
  RandomChainProblem app(chain_spec());
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 2);  // default options: off
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.replicated, 0u);
    EXPECT_EQ(r.digest_mismatches, 0u);
    EXPECT_EQ(r.votes_resolved, 0u);
  }
}

TEST(Replication, FaultFreeReplicatedRunIsCleanAndCorrect) {
  RandomChainSpec s;
  s.blocks = 4;
  s.versions = 10;
  s.seed = 17;
  RandomChainProblem app(s);
  WorkStealingPool pool(3);
  RepeatedRuns runs = run_ft(app, pool, 2, nullptr, replicate("all"));
  for (const ExecReport& r : runs.reports) {
    EXPECT_GT(r.replicated, 0u);
    EXPECT_LE(r.replicated, r.computes);
    EXPECT_EQ(r.digest_mismatches, 0u);
    EXPECT_EQ(r.re_executed, 0u);
  }
}

TEST(Replication, SamplePolicyReplicatesAStrictSubset) {
  RandomChainSpec s;
  s.blocks = 6;
  s.versions = 12;
  s.seed = 23;
  RandomChainProblem app(s);
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 2, nullptr, replicate("sample:0.5"));
  for (const ExecReport& r : runs.reports) {
    EXPECT_GT(r.replicated, 0u);
    EXPECT_LT(r.replicated, r.computes);
  }
  // Deterministic policy: both repetitions replicated the same task set.
  EXPECT_EQ(runs.reports[0].replicated, runs.reports[1].replicated);
}

}  // namespace
}  // namespace ftdag
