// Tests for the serial (oracle) executor and its T1/T_inf measurements.

#include <gtest/gtest.h>

#include <string>

#include "apps/app_registry.hpp"
#include "graph/graph_metrics.hpp"
#include "nabbit/serial_executor.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};
  return {256, 32, 3};
}

class SerialApps : public ::testing::TestWithParam<const char*> {};

TEST_P(SerialApps, MatchesReferenceChecksum) {
  const std::string name = GetParam();
  auto app = make_app(name, test_config(name));
  SerialExecutor exec;
  app->reset_data();
  SerialReport r = exec.execute(*app);
  EXPECT_EQ(app->result_checksum(), app->reference_checksum());
  EXPECT_EQ(r.tasks, analyze_graph(*app).tasks);
}

INSTANTIATE_TEST_SUITE_P(AllApps, SerialApps,
                         ::testing::Values("lcs", "sw", "fw", "lu", "cholesky",
                                           "rand"));

TEST(SerialExecutor, WorkSpanInvariants) {
  auto app = make_app("lu", test_config("lu"));
  SerialExecutor exec;
  app->reset_data();
  SerialReport r = exec.execute(*app);
  // Span cannot exceed work; both are positive; the heaviest task bounds
  // neither from above.
  EXPECT_GT(r.t1, 0.0);
  EXPECT_GT(r.t_inf, 0.0);
  EXPECT_LE(r.t_inf, r.t1 * 1.0001);
  EXPECT_LE(r.max_task, r.t_inf * 1.0001);
  EXPECT_LE(r.t1, r.seconds * 1.01);  // wall time includes traversal
}

TEST(SerialExecutor, SpanScalesWithCriticalPath) {
  // A pure chain has T1 ~= T_inf; a wide flat graph has T1 >> T_inf.
  auto chain = make_app("lcs", {64, 32, 3});  // 2x2 grid: near-serial
  SerialExecutor exec;
  chain->reset_data();
  SerialReport rc = exec.execute(*chain);
  EXPECT_GT(rc.t_inf / rc.t1, 0.7);  // 3 of 4 blocks on the critical path

  auto wide = make_app("lcs", {512, 32, 3});  // 16x16 grid
  wide->reset_data();
  SerialReport rw = exec.execute(*wide);
  // 31 of 256 blocks on the path (~0.12 ideally; generous slack for
  // per-task overhead under instrumented builds such as ASan).
  EXPECT_LT(rw.t_inf / rw.t1, 0.45);
}

TEST(SerialExecutor, RepeatableAfterReset) {
  auto app = make_app("cholesky", test_config("cholesky"));
  SerialExecutor exec;
  app->reset_data();
  exec.execute(*app);
  const std::uint64_t first = app->result_checksum();
  app->reset_data();
  exec.execute(*app);
  EXPECT_EQ(app->result_checksum(), first);
}

}  // namespace
}  // namespace ftdag
