// Tests for the fault planner: candidate classification, targeting,
// determinism and the implied re-execution cost model.

#include <gtest/gtest.h>

#include <set>

#include "apps/app_registry.hpp"
#include "fault/fault_plan.hpp"

namespace ftdag {
namespace {

TEST(FaultPlanner, LcsAllTasksAreBothV0AndVLast) {
  // Single assignment: every block has exactly one version.
  auto app = make_app("lcs", {128, 32, 1});  // W=4, 16 tasks
  FaultPlanner planner(*app);
  EXPECT_EQ(planner.total_tasks(), 15u);  // sink excluded
  EXPECT_EQ(planner.candidate_count(VictimType::kVersionZero), 15u);
  EXPECT_EQ(planner.candidate_count(VictimType::kVersionLast), 15u);
  EXPECT_EQ(planner.candidate_count(VictimType::kVersionRand), 15u);
}

TEST(FaultPlanner, LuPoolsMatchStructure) {
  auto app = make_app("lu", {128, 32, 1});  // W=4
  FaultPlanner planner(*app);
  // v=0 victims produce version 0: the k=0 tasks (W^2 of them).
  EXPECT_EQ(planner.candidate_count(VictimType::kVersionZero), 16u);
  // v=last victims are the final op of each block, minus the sink (the last
  // diag), which is excluded from candidacy.
  EXPECT_EQ(planner.candidate_count(VictimType::kVersionLast), 15u);
}

TEST(FaultPlanner, ReachesAbsoluteTarget) {
  auto app = make_app("lcs", {256, 32, 1});  // W=8, 64 tasks
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionRand;
  spec.target_count = 10;
  FaultPlan plan = planner.plan(spec);
  EXPECT_GE(plan.intended_reexecutions, 10u);
  EXPECT_EQ(plan.target, 10u);
  // LCS implied cost is 1 per victim (all versions retained).
  EXPECT_EQ(plan.faults.size(), 10u);
}

TEST(FaultPlanner, FractionTargetScalesWithTaskCount) {
  auto app = make_app("lcs", {256, 32, 1});
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.target_fraction = 0.05;
  FaultPlan plan = planner.plan(spec);
  EXPECT_EQ(plan.target, static_cast<std::uint64_t>(63 * 0.05));
}

TEST(FaultPlanner, DeterministicForSameSeed) {
  auto app = make_app("lu", {256, 32, 1});
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.target_count = 20;
  spec.seed = 99;
  FaultPlan a = planner.plan(spec);
  FaultPlan b = planner.plan(spec);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i)
    EXPECT_EQ(a.faults[i].key, b.faults[i].key);
  spec.seed = 100;
  FaultPlan c = planner.plan(spec);
  bool same = a.faults.size() == c.faults.size();
  if (same)
    for (std::size_t i = 0; i < a.faults.size(); ++i)
      same = same && a.faults[i].key == c.faults[i].key;
  EXPECT_FALSE(same) << "different seeds should pick different victims";
}

TEST(FaultPlanner, NoDuplicateVictims) {
  auto app = make_app("lu", {256, 32, 1});
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.target_count = 50;
  FaultPlan plan = planner.plan(spec);
  std::set<TaskKey> keys;
  for (const PlannedFault& f : plan.faults)
    EXPECT_TRUE(keys.insert(f.key).second);
}

TEST(FaultPlanner, BeforeComputeCostsOneEach) {
  auto app = make_app("lu", {256, 32, 1});
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kBeforeCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 8;
  FaultPlan plan = planner.plan(spec);
  EXPECT_EQ(plan.faults.size(), 8u);
  for (const PlannedFault& f : plan.faults)
    EXPECT_EQ(f.implied_reexecutions, 1u);
}

TEST(FaultPlanner, VLastChainsCostVersionDepthUnderFullReuse) {
  // LU retention 1: failing the producer of version i implies i + 1
  // re-executions (the paper's v=last chains).
  auto app = make_app("lu", {256, 32, 1});  // W = 8
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 1000;  // exhaust the pool
  FaultPlan plan = planner.plan(spec);
  std::uint64_t max_cost = 0;
  for (const PlannedFault& f : plan.faults)
    max_cost = std::max(max_cost, f.implied_reexecutions);
  // Deepest chain: block (7,7)'s final version has index 7 -> cost 8, but
  // the sink (the last diag) is excluded; next deepest blocks (7,6)/(6,7)
  // still have version index 6 -> cost 7.
  EXPECT_EQ(max_cost, 7u);
}

TEST(FaultPlanner, PoolExhaustionCapsIntended) {
  auto app = make_app("lcs", {128, 32, 1});  // 15 candidates
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.target_count = 1000;
  FaultPlan plan = planner.plan(spec);
  EXPECT_EQ(plan.faults.size(), 15u);
  EXPECT_LT(plan.intended_reexecutions, 1000u);
}

TEST(FaultPhaseNames, AreHumanReadable) {
  EXPECT_STREQ(fault_phase_name(FaultPhase::kBeforeCompute), "before compute");
  EXPECT_STREQ(fault_phase_name(FaultPhase::kAfterCompute), "after compute");
  EXPECT_STREQ(fault_phase_name(FaultPhase::kAfterNotify), "after notify");
  EXPECT_STREQ(victim_type_name(VictimType::kVersionZero), "v=0");
  EXPECT_STREQ(victim_type_name(VictimType::kVersionLast), "v=last");
  EXPECT_STREQ(victim_type_name(VictimType::kVersionRand), "v=rand");
}

}  // namespace
}  // namespace ftdag
