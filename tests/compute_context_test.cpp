// Tests for ComputeContext: staged writes, read re-validation, aliased
// updates and commit-gated result staging.

#include <gtest/gtest.h>

#include <atomic>

#include "graph/compute_context.hpp"

namespace ftdag {
namespace {

class ComputeContextTest : public ::testing::Test {
 protected:
  BlockStore store_;
};

TEST_F(ComputeContextTest, WriteIsInvisibleUntilFinalize) {
  const BlockId b = store_.add_block(sizeof(int), 1);
  ComputeContext ctx(store_, 1);
  int* out = ctx.write<int>(b, 0);
  *out = 5;
  EXPECT_EQ(store_.state(b, 0), VersionState::kAbsent);
  ctx.finalize();
  EXPECT_EQ(store_.state(b, 0), VersionState::kValid);
  EXPECT_EQ(*static_cast<const int*>(store_.read(b, 0)), 5);
}

TEST_F(ComputeContextTest, DestructorAbortsUncommittedWrites) {
  const BlockId b = store_.add_block(sizeof(int), 1);
  {
    ComputeContext ctx(store_, 1);
    *ctx.write<int>(b, 0) = 5;
    // No finalize: simulates an exception unwinding the compute.
  }
  EXPECT_EQ(store_.state(b, 0), VersionState::kAbsent);
  // Slot lock must have been released.
  ComputeContext ctx2(store_, 2);
  *ctx2.write<int>(b, 0) = 6;
  ctx2.finalize();
  EXPECT_EQ(*static_cast<const int*>(store_.read(b, 0)), 6);
}

TEST_F(ComputeContextTest, FinalizeRevalidatesReads) {
  const BlockId src = store_.add_block(sizeof(int), 1);
  const BlockId dst = store_.add_block(sizeof(int), 1);
  {
    ComputeContext ctx(store_, 1);
    *ctx.write<int>(src, 0) = 3;
    ctx.finalize();
  }
  ComputeContext ctx(store_, 2);
  const int in = *ctx.read<int>(src, 0);
  *ctx.write<int>(dst, 0) = in + 1;
  store_.corrupt(src, 0);  // input dies mid-compute
  EXPECT_THROW(ctx.finalize(), DataBlockFault);
}

TEST_F(ComputeContextTest, FailedRevalidationPublishesNothing) {
  const BlockId src = store_.add_block(sizeof(int), 1);
  const BlockId dst = store_.add_block(sizeof(int), 1);
  Atomic<std::uint64_t> result{0};
  {
    ComputeContext ctx(store_, 1);
    *ctx.write<int>(src, 0) = 3;
    ctx.finalize();
  }
  {
    ComputeContext ctx(store_, 2);
    (void)ctx.read<int>(src, 0);
    *ctx.write<int>(dst, 0) = 4;
    ctx.stage_result(&result, 99);
    store_.corrupt(src, 0);
    EXPECT_THROW(ctx.finalize(), DataBlockFault);
  }
  EXPECT_EQ(store_.state(dst, 0), VersionState::kAbsent);
  EXPECT_EQ(result.load(std::memory_order_relaxed), 0u);  // staged result was discarded
}

TEST_F(ComputeContextTest, StageResultAppliedOnSuccess) {
  const BlockId b = store_.add_block(sizeof(int), 1);
  Atomic<std::uint64_t> result{0};
  ComputeContext ctx(store_, 1);
  *ctx.write<int>(b, 0) = 1;
  ctx.stage_result(&result, 77);
  ctx.finalize();
  EXPECT_EQ(result.load(std::memory_order_relaxed), 77u);
}

TEST_F(ComputeContextTest, AliasedUpdateReadsOldBytes) {
  store_.set_retention(1);
  const BlockId b = store_.add_block(sizeof(int), 4);
  {
    ComputeContext ctx(store_, 1);
    *ctx.write<int>(b, 0) = 10;
    ctx.finalize();
  }
  ComputeContext ctx(store_, 2);
  UpdateRef<int> r = ctx.update<int>(b, 0, 1);
  EXPECT_EQ(r.in, r.out);  // same slot: aliased
  EXPECT_EQ(*r.in, 10);
  *r.out = *r.in + 5;
  ctx.finalize();
  EXPECT_EQ(*static_cast<const int*>(store_.read(b, 1)), 15);
  EXPECT_EQ(store_.state(b, 0), VersionState::kOverwritten);
}

TEST_F(ComputeContextTest, NonAliasedUpdateKeepsInputAlive) {
  store_.set_retention(2);
  const BlockId b = store_.add_block(sizeof(int), 4);
  {
    ComputeContext ctx(store_, 1);
    *ctx.write<int>(b, 0) = 10;
    ctx.finalize();
  }
  ComputeContext ctx(store_, 2);
  UpdateRef<int> r = ctx.update<int>(b, 0, 1);
  EXPECT_NE(r.in, r.out);
  *r.out = *r.in + 5;
  ctx.finalize();
  EXPECT_EQ(*static_cast<const int*>(store_.read(b, 0)), 10);
  EXPECT_EQ(*static_cast<const int*>(store_.read(b, 1)), 15);
}

TEST_F(ComputeContextTest, ReadOfMissingVersionThrowsImmediately) {
  const BlockId b = store_.add_block(sizeof(int), 1);
  ComputeContext ctx(store_, 1);
  EXPECT_THROW((void)ctx.read<int>(b, 0), DataBlockFault);
}

TEST_F(ComputeContextTest, CountsReadsAndWrites) {
  const BlockId a = store_.add_block(sizeof(int), 1);
  const BlockId b = store_.add_block(sizeof(int), 1);
  {
    ComputeContext ctx(store_, 1);
    *ctx.write<int>(a, 0) = 1;
    ctx.finalize();
  }
  ComputeContext ctx(store_, 2);
  (void)ctx.read<int>(a, 0);
  (void)ctx.write<int>(b, 0);
  EXPECT_EQ(ctx.reads_recorded(), 1u);
  EXPECT_EQ(ctx.writes_staged(), 1u);
  ctx.finalize();
}

}  // namespace
}  // namespace ftdag
