// Tests for the retention (memory strategy) overrides: correctness under
// every supported layout, storage accounting, and the chain-vs-no-chain
// recovery behaviour the paper's Section VI discusses.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/app_registry.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"

namespace ftdag {
namespace {

AppConfig cfg_with_retention(const std::string& name, std::int64_t retention) {
  AppConfig cfg = name == "fw" ? AppConfig{96, 16, 3} : AppConfig{256, 32, 3};
  cfg.retention = retention;
  return cfg;
}

using RetParam = std::tuple<const char*, int>;

class RetentionApps : public ::testing::TestWithParam<RetParam> {};

TEST_P(RetentionApps, CorrectFaultFreeAndUnderFaults) {
  const auto [name, retention] = GetParam();
  auto app = make_app(name, cfg_with_retention(name, retention));
  WorkStealingPool pool(4);
  run_baseline(*app, pool, 1);  // validates
  run_ft(*app, pool, 1);        // validates

  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 4;
  PlannedFaultInjector injector(planner.plan(spec).faults);
  run_ft(*app, pool, 1, &injector);  // validates
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, RetentionApps,
    ::testing::Values(RetParam{"sw", 0}, RetParam{"sw", 1}, RetParam{"sw", 2},
                      RetParam{"lu", 0}, RetParam{"lu", 1}, RetParam{"lu", 2},
                      RetParam{"cholesky", 0}, RetParam{"cholesky", 1},
                      RetParam{"fw", 0}, RetParam{"fw", 2}));

TEST(Retention, SingleAssignmentUsesMoreStorage) {
  auto reuse = make_app("lu", cfg_with_retention("lu", -1));
  auto single = make_app("lu", cfg_with_retention("lu", 0));
  EXPECT_GT(single->block_store().total_storage_bytes(),
            2 * reuse->block_store().total_storage_bytes());
}

TEST(Retention, SingleAssignmentKillsChains) {
  // Same v=last victim set; full reuse re-executes version chains, single
  // assignment re-executes only the victims.
  for (const char* name : {"lu", "cholesky"}) {
    std::uint64_t reexec[2];
    for (int layout = 0; layout < 2; ++layout) {
      auto app =
          make_app(name, cfg_with_retention(name, layout == 0 ? -1 : 0));
      FaultPlanner planner(*app);
      FaultPlanSpec spec;
      spec.phase = FaultPhase::kAfterCompute;
      spec.type = VictimType::kVersionLast;
      spec.target_count = 4;  // in victims for single-assign; chains scale up
      spec.seed = 5;
      FaultPlan plan = planner.plan(spec);
      plan.faults.resize(std::min<std::size_t>(plan.faults.size(), 2));
      PlannedFaultInjector injector(plan.faults);
      WorkStealingPool pool(2);
      RepeatedRuns runs = run_ft(*app, pool, 1, &injector);
      reexec[layout] = runs.reports[0].re_executed;
    }
    EXPECT_GT(reexec[0], reexec[1]) << name;    // chains under reuse
    EXPECT_LE(reexec[1], 2u) << name;           // only the victims
  }
}

TEST(Retention, PlannerAdaptsImpliedCosts) {
  // Under single assignment no in-place chains exist, so every implied cost
  // is 1; under full reuse v=last victims imply their version depth.
  auto single = make_app("lu", cfg_with_retention("lu", 0));
  FaultPlanner sp(*single);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 5;
  FaultPlan plan = sp.plan(spec);
  EXPECT_EQ(plan.faults.size(), 5u);
  for (const PlannedFault& f : plan.faults)
    EXPECT_EQ(f.implied_reexecutions, 1u);

  auto reuse = make_app("lu", cfg_with_retention("lu", -1));
  FaultPlanner rp(*reuse);
  FaultPlan rplan = rp.plan(spec);
  std::uint64_t max_cost = 0;
  for (const PlannedFault& f : rplan.faults)
    max_cost = std::max(max_cost, f.implied_reexecutions);
  EXPECT_GT(max_cost, 1u);
}

TEST(Retention, LcsRejectsReuseOverride) {
  AppConfig cfg{128, 32, 3};
  cfg.retention = 0;  // explicit single assignment is fine
  auto app = make_app("lcs", cfg);
  WorkStealingPool pool(2);
  run_ft(*app, pool, 1);
}

TEST(Retention, FwSingleAssignmentStoresAllStages) {
  auto two = make_app("fw", cfg_with_retention("fw", -1));
  auto all = make_app("fw", cfg_with_retention("fw", 0));
  // W stages per block vs 2 retained slots.
  EXPECT_EQ(all->block_store().total_storage_bytes(),
            two->block_store().total_storage_bytes() / 2 * 6);
}

}  // namespace
}  // namespace ftdag
