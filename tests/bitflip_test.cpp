// End-to-end silent-data-corruption tests: real bit flips in block storage,
// detected by the software error-detection code (checksum mode) and
// recovered by the fault-tolerant executor — and, as a negative control,
// *not* detected without checksums, yielding a wrong result (the paper's
// detectability assumption made concrete).

#include <gtest/gtest.h>

#include <cstring>

#include "apps/random_chain.hpp"
#include "blocks/block_store.hpp"
#include "core/ft_executor.hpp"
#include "fault/fault_injector.hpp"
#include "harness/experiment.hpp"

namespace ftdag {
namespace {

TEST(BlockChecksum, CommitStoresAndReadVerifies) {
  BlockStore s;
  s.set_checksum_mode(true);
  const BlockId b = s.add_block(sizeof(int) * 16, 1);
  WriteTicket t = s.begin_write(b, 0);
  std::memset(t.data, 0x5A, sizeof(int) * 16);
  s.commit(t);
  EXPECT_NE(s.read(b, 0), nullptr);  // verifies and passes
}

TEST(BlockChecksum, FlippedBitIsDetectedOnRead) {
  BlockStore s;
  s.set_checksum_mode(true);
  const BlockId b = s.add_block(sizeof(int) * 16, 1);
  s.set_producer(b, 0, 42);
  WriteTicket t = s.begin_write(b, 0);
  std::memset(t.data, 0x5A, sizeof(int) * 16);
  s.commit(t);
  ASSERT_TRUE(s.flip_bit(b, 0, 100));
  try {
    (void)s.read(b, 0);
    FAIL() << "expected DataBlockFault";
  } catch (const DataBlockFault& f) {
    EXPECT_EQ(f.failed_key(), 42);
    EXPECT_EQ(f.reason(), BlockFaultReason::kCorrupted);
  }
  // Detection is sticky: the state itself is now Corrupted.
  EXPECT_EQ(s.state(b, 0), VersionState::kCorrupted);
}

TEST(BlockChecksum, FlipWithoutChecksumModeStaysSilent) {
  BlockStore s;  // checksum mode off
  const BlockId b = s.add_block(sizeof(int) * 16, 1);
  WriteTicket t = s.begin_write(b, 0);
  std::memset(t.data, 0, sizeof(int) * 16);
  s.commit(t);
  ASSERT_TRUE(s.flip_bit(b, 0, 3));
  const int* data = static_cast<const int*>(s.read(b, 0));  // no throw
  EXPECT_NE(data[0], 0);  // silently wrong
}

TEST(BlockChecksum, FlipBitOnAbsentVersionReturnsFalse) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int) * 4, 2);
  EXPECT_FALSE(s.flip_bit(b, 0, 5));  // never produced: nothing to corrupt
}

TEST(BlockChecksum, FlipBitOnDisplacedVersionReturnsFalse) {
  BlockStore s;  // default retention 1: both versions share one slot
  const BlockId b = s.add_block(sizeof(int) * 4, 2);
  WriteTicket t0 = s.begin_write(b, 0);
  std::memset(t0.data, 1, sizeof(int) * 4);
  s.commit(t0);
  WriteTicket t1 = s.begin_write(b, 1);  // displaces v0
  std::memset(t1.data, 2, sizeof(int) * 4);
  s.commit(t1);
  ASSERT_EQ(s.state(b, 0), VersionState::kOverwritten);
  // v0's bytes no longer exist; flipping "v0" would corrupt v1's data under
  // the wrong identity, so the injector must refuse.
  EXPECT_FALSE(s.flip_bit(b, 0, 5));
  EXPECT_TRUE(s.flip_bit(b, 1, 5));  // the resident version is fair game
}

TEST(BlockChecksum, DoubleFlipRestoresBytesAndPassesVerification) {
  BlockStore s;
  s.set_checksum_mode(true);
  const BlockId b = s.add_block(sizeof(int) * 4, 1);
  WriteTicket t = s.begin_write(b, 0);
  std::memset(t.data, 0x5A, sizeof(int) * 4);
  s.commit(t);
  ASSERT_TRUE(s.flip_bit(b, 0, 17));
  ASSERT_TRUE(s.flip_bit(b, 0, 17));  // same bit: bytes are original again
  // Hash-based detection compares content at access time, so an even number
  // of cancelling flips *between accesses* is invisible — harmless here
  // (the data is bit-identical to what was committed), but it documents
  // that the EDC detects state, not events.
  const int* data = static_cast<const int*>(s.read(b, 0));  // no throw
  EXPECT_EQ(data[0], 0x5A5A5A5A);
  EXPECT_EQ(s.state(b, 0), VersionState::kValid);
}

TEST(BlockChecksum, RewriteRefreshesChecksum) {
  BlockStore s;
  s.set_checksum_mode(true);
  const BlockId b = s.add_block(sizeof(int), 1);
  for (int round = 0; round < 3; ++round) {
    WriteTicket t = s.begin_write(b, 0);
    std::memcpy(t.data, &round, sizeof(round));
    s.commit(t);
    EXPECT_EQ(*static_cast<const int*>(s.read(b, 0)), round);
  }
}

TEST(BlockChecksum, SnapshotRestorePreservesChecksums) {
  BlockStore s;
  s.set_checksum_mode(true);
  const BlockId b = s.add_block(sizeof(int), 2);
  WriteTicket t = s.begin_write(b, 0);
  const int v = 7;
  std::memcpy(t.data, &v, sizeof(v));
  s.commit(t);
  BlockStore::Snapshot snap = s.snapshot();
  s.reset_states();
  s.restore(snap);
  EXPECT_EQ(*static_cast<const int*>(s.read(b, 0)), 7);
}

RandomChainSpec chain_spec() {
  RandomChainSpec s;
  s.blocks = 1;  // linear chain: bounded recovery under any fault
  s.versions = 30;
  s.reads = 0;
  s.work_iters = 20;
  s.seed = 31;
  return s;
}

TEST(BitFlip, DetectedAndRecoveredEndToEnd) {
  RandomChainProblem app(chain_spec());
  app.block_store().set_checksum_mode(true);
  // Flip a bit in a mid-chain version right after it is computed; the next
  // consumer's read fails checksum verification and recovery regenerates
  // the chain.
  BitFlipInjector injector({{10, FaultPhase::kAfterCompute, 1}});
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 2, &injector);  // validates result
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.injected, 1u);
    EXPECT_GT(r.recoveries, 0u);
    EXPECT_GT(r.re_executed, 0u);
  }
}

TEST(BitFlip, SilentWithoutChecksumsProducesWrongResult) {
  RandomChainProblem app(chain_spec());
  // Checksum mode OFF: the flip propagates undetected. This is exactly the
  // silent-data-corruption scenario the paper's model excludes by assuming
  // detection; the executor completes "successfully" with a wrong answer.
  const std::uint64_t want = app.reference_checksum();
  BitFlipInjector injector({{10, FaultPhase::kAfterCompute, 1}});
  WorkStealingPool pool(2);
  FaultTolerantExecutor exec;
  app.reset_data();
  injector.reset();
  ExecReport r = exec.execute(app, pool, &injector);
  EXPECT_EQ(r.recoveries, 0u);  // nothing was ever detected
  EXPECT_NE(app.result_checksum(), want) << "corruption should be silent";
}

TEST(BitFlip, BeforeComputeHasNothingToFlip) {
  RandomChainProblem app(chain_spec());
  app.block_store().set_checksum_mode(true);
  BitFlipInjector injector({{10, FaultPhase::kBeforeCompute, 1}});
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 1, &injector);
  EXPECT_EQ(runs.reports[0].injected, 0u);
}

TEST(BitFlip, ChecksumModeCleanRunHasNoOverheadFaults) {
  RandomChainProblem app(chain_spec());
  app.block_store().set_checksum_mode(true);
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 2);
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.faults_caught, 0u);
    EXPECT_EQ(r.re_executed, 0u);
  }
}

}  // namespace
}  // namespace ftdag
