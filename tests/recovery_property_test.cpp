// Property tests for the recovery protocol (the paper's Theorem 1 as an
// executable property): across random topologies, seeds, phases and fault
// densities, execution always terminates with the exact fault-free result.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "apps/app_registry.hpp"
#include "apps/random_dag.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

// Builds a mixed-phase fault plan over a fraction of all tasks.
std::vector<PlannedFault> storm_plan(const TaskGraphProblem& problem,
                                     double fraction, std::uint64_t seed) {
  std::vector<TaskKey> keys;
  problem.all_tasks(keys);
  Xoshiro256 rng(seed);
  for (std::size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[rng.below(i)]);
  const std::size_t count =
      static_cast<std::size_t>(fraction * static_cast<double>(keys.size()));
  std::vector<PlannedFault> out;
  for (std::size_t i = 0; i < count; ++i) {
    const FaultPhase phase = static_cast<FaultPhase>(rng.below(3));
    out.push_back({keys[i], phase, 1});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Random-DAG storms: topology seed x fault seed x density.

using StormParam = std::tuple<int /*dag seed*/, int /*fault seed*/,
                              int /*density percent*/>;

class RandomDagStorm : public ::testing::TestWithParam<StormParam> {};

TEST_P(RandomDagStorm, ExactResultUnderMixedPhaseFaults) {
  const auto [dag_seed, fault_seed, density] = GetParam();
  RandomDagSpec spec;
  spec.layers = 12;
  spec.width = 12;
  spec.extra_degree = 3;
  spec.work_iters = 50;
  spec.seed = static_cast<std::uint64_t>(dag_seed);
  RandomDagProblem app(spec);

  std::vector<PlannedFault> faults =
      storm_plan(app, density / 100.0, static_cast<std::uint64_t>(fault_seed));
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(app, pool, 2, &injector);  // validates checksum
  EXPECT_EQ(runs.seconds.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDagStorm,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(10, 20),
                                            ::testing::Values(5, 25, 75)));

// ---------------------------------------------------------------------------
// Benchmark storms: every app under a dense mixed-phase fault plan.

class AppStorm : public ::testing::TestWithParam<const char*> {};

TEST_P(AppStorm, ExactResultUnderDenseFaults) {
  const std::string name = GetParam();
  const AppConfig cfg = name == "fw" ? AppConfig{80, 16, 3}
                                     : AppConfig{192, 32, 3};
  auto app = make_app(name, cfg);
  std::vector<PlannedFault> faults = storm_plan(*app, 0.3, 99);
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(*app, pool, 2, &injector);
  EXPECT_EQ(runs.seconds.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppStorm,
                         ::testing::Values("lcs", "sw", "fw", "lu",
                                           "cholesky"));

// ---------------------------------------------------------------------------
// Adversarial shapes.

TEST(RecoveryProperty, EveryTaskFailsAfterCompute) {
  // Worst pre-completion storm: every task's outputs are corrupted the
  // moment they are produced. The run must still converge to the exact
  // result (each task re-executes at least once).
  RandomDagSpec spec;
  spec.layers = 8;
  spec.width = 8;
  spec.work_iters = 20;
  spec.seed = 4;
  RandomDagProblem app(spec);
  std::vector<TaskKey> keys;
  app.all_tasks(keys);
  std::vector<PlannedFault> faults;
  for (TaskKey k : keys) faults.push_back({k, FaultPhase::kAfterCompute, 1});
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(app, pool, 1, &injector);
  EXPECT_GE(runs.reports[0].re_executed, keys.size() - 1);  // sink may differ
}

TEST(RecoveryProperty, LinearChainWithFaults) {
  // Depth-heavy topology: a pure chain, faults on every other node.
  RandomDagSpec spec;
  spec.layers = 200;
  spec.width = 1;
  spec.extra_degree = 0;
  spec.work_iters = 5;
  spec.seed = 6;
  RandomDagProblem app(spec);
  std::vector<TaskKey> keys;
  app.all_tasks(keys);
  std::vector<PlannedFault> faults;
  for (std::size_t i = 0; i < keys.size(); i += 2)
    faults.push_back({keys[i], FaultPhase::kAfterCompute, 1});
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(2);
  run_ft(app, pool, 1, &injector);  // validates
}

TEST(RecoveryProperty, WideFanInSink) {
  // One sink gathering a wide layer, faults on the whole layer after
  // compute: exercises contended notify arrays and bit vectors.
  RandomDagSpec spec;
  spec.layers = 2;
  spec.width = 128;
  spec.extra_degree = 0;
  spec.work_iters = 5;
  spec.seed = 8;
  RandomDagProblem app(spec);
  std::vector<TaskKey> keys;
  app.all_tasks(keys);
  std::vector<PlannedFault> faults;
  for (TaskKey k : keys) faults.push_back({k, FaultPhase::kAfterCompute, 1});
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  run_ft(app, pool, 1, &injector);
}

TEST(RecoveryProperty, RepeatedStormsOnSameProblemInstance) {
  // The same problem object must survive many injected runs (state resets,
  // recovery table rebuilt each run).
  RandomDagSpec spec;
  spec.layers = 10;
  spec.width = 10;
  spec.work_iters = 10;
  spec.seed = 12;
  RandomDagProblem app(spec);
  WorkStealingPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::vector<PlannedFault> faults =
        storm_plan(app, 0.4, static_cast<std::uint64_t>(round));
    PlannedFaultInjector injector(std::move(faults));
    run_ft(app, pool, 1, &injector);
  }
}

TEST(RecoveryProperty, ThreadCountSweepUnderFaults) {
  RandomDagSpec spec;
  spec.layers = 10;
  spec.width = 10;
  spec.work_iters = 20;
  spec.seed = 14;
  RandomDagProblem app(spec);
  for (int threads : {1, 2, 8}) {
    WorkStealingPool pool(threads);
    std::vector<PlannedFault> faults = storm_plan(app, 0.5, 21);
    PlannedFaultInjector injector(std::move(faults));
    run_ft(app, pool, 1, &injector);
  }
}

}  // namespace
}  // namespace ftdag
