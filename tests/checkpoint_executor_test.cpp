// Tests for the collective checkpoint/restart comparator.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "core/checkpoint_executor.hpp"
#include "fault/fault_plan.hpp"
#include "graph/graph_metrics.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};
  return {256, 32, 3};
}

void expect_valid(TaskGraphProblem& app) {
  EXPECT_EQ(app.result_checksum(), app.reference_checksum());
}

class CheckpointApps : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointApps, FaultFreeMatchesReference) {
  const std::string name = GetParam();
  auto app = make_app(name, test_config(name));
  (void)app->reference_checksum();
  WorkStealingPool pool(4);
  CheckpointRestartExecutor exec;
  app->reset_data();
  CheckpointReport r = exec.execute(*app, pool);
  expect_valid(*app);
  EXPECT_EQ(r.computes, analyze_graph(*app).tasks);
  EXPECT_EQ(r.re_executed, 0u);
  EXPECT_EQ(r.rollbacks, 0u);
  EXPECT_GT(r.levels, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, CheckpointApps,
                         ::testing::Values("lcs", "sw", "fw", "lu", "cholesky",
                                           "rand"));

TEST(CheckpointExecutor, TakesCheckpointsAtInterval) {
  auto app = make_app("lcs", {256, 32, 3});  // 8x8 grid: 15 levels
  (void)app->reference_checksum();
  WorkStealingPool pool(2);
  CheckpointRestartExecutor exec;
  CheckpointOptions opt;
  opt.interval_levels = 3;
  app->reset_data();
  CheckpointReport r = exec.execute(*app, pool, nullptr, opt);
  EXPECT_EQ(r.levels, 15u);
  EXPECT_EQ(r.checkpoints, 4u);  // after levels 3, 6, 9, 12
  EXPECT_GE(r.checkpoint_seconds, 0.0);
}

TEST(CheckpointExecutor, RollsBackOnFaultAndStaysCorrect) {
  auto app = make_app("lu", test_config("lu"));
  (void)app->reference_checksum();
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.target_count = 3;
  spec.seed = 11;
  PlannedFaultInjector injector(planner.plan(spec).faults);
  WorkStealingPool pool(4);
  CheckpointRestartExecutor exec;
  app->reset_data();
  CheckpointReport r = exec.execute(*app, pool, &injector);
  expect_valid(*app);
  EXPECT_GT(r.rollbacks, 0u);
  EXPECT_GT(r.re_executed, 0u);
}

TEST(CheckpointExecutor, RollbackDiscardsWholeLevels) {
  // A single fault must cost at least the work since the last checkpoint,
  // which is the comparator's defining weakness vs selective recovery.
  auto app = make_app("lcs", {256, 32, 3});
  (void)app->reference_checksum();
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.target_count = 1;
  spec.seed = 2;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);
  WorkStealingPool pool(2);
  CheckpointRestartExecutor exec;
  CheckpointOptions opt;
  opt.interval_levels = 8;  // sparse checkpoints -> expensive rollback
  app->reset_data();
  CheckpointReport r = exec.execute(*app, pool, &injector, opt);
  expect_valid(*app);
  EXPECT_GE(r.re_executed, 1u);
}

TEST(CheckpointExecutor, SurvivesAfterNotifyLatentCorruption) {
  // After-notify faults can poison a snapshot; the executor must discard
  // poisoned checkpoints and restart from a clean one (or from scratch).
  auto app = make_app("sw", test_config("sw"));
  (void)app->reference_checksum();
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterNotify;
  spec.type = VictimType::kVersionRand;
  spec.target_count = 5;
  spec.seed = 21;
  PlannedFaultInjector injector(planner.plan(spec).faults);
  WorkStealingPool pool(4);
  CheckpointRestartExecutor exec;
  app->reset_data();
  (void)exec.execute(*app, pool, &injector);
  expect_valid(*app);
}

TEST(CheckpointExecutor, ManyFaultsStillTerminate) {
  auto app = make_app("rand", {192, 16, 9});
  (void)app->reference_checksum();
  std::vector<TaskKey> keys;
  app->all_tasks(keys);
  std::vector<PlannedFault> faults;
  for (std::size_t i = 0; i < keys.size(); i += 3)
    faults.push_back({keys[i], FaultPhase::kAfterCompute, 1});
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  CheckpointRestartExecutor exec;
  app->reset_data();
  CheckpointReport r = exec.execute(*app, pool, &injector);
  expect_valid(*app);
  EXPECT_GT(r.rollbacks, 0u);
}

}  // namespace
}  // namespace ftdag
