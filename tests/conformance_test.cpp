// Executor conformance suite: every engine instantiation (serial oracle,
// baseline NABBIT, fault-tolerant, checkpoint/restart) runs the same
// app scenarios through the shared run_executor driver and must
//
//  - produce the bitwise-identical result (checksum against the sequential
//    reference — the paper's Theorem 1, and with faults its
//    same-result-with-and-without-failures claim), and
//  - satisfy the uniform ExecReport counter invariants: discovery count
//    equals the reachable graph, computes == tasks + re-executions, and
//    every counter a configuration never touches stays exactly zero.
//
// Fault-injection and replication scenarios are gated on the capabilities
// of each executor kind rather than hand-copied per executor.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/app_registry.hpp"
#include "engine/discovery.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};
  return {256, 32, 3};
}

bool supports_injection(ExecutorKind kind) {
  return kind == ExecutorKind::kFaultTolerant ||
         kind == ExecutorKind::kCheckpoint;
}

bool supports_replication(ExecutorKind kind) {
  return kind == ExecutorKind::kFaultTolerant;
}

constexpr ExecutorKind kAllKinds[] = {
    ExecutorKind::kSerial,
    ExecutorKind::kBaseline,
    ExecutorKind::kFaultTolerant,
    ExecutorKind::kCheckpoint,
};

// Counters every fault-free run must leave at zero, whatever the executor.
void expect_clean_counters(const ExecReport& r, const char* ctx) {
  EXPECT_EQ(r.re_executed, 0u) << ctx;
  EXPECT_EQ(r.faults_caught, 0u) << ctx;
  EXPECT_EQ(r.recoveries, 0u) << ctx;
  EXPECT_EQ(r.resets, 0u) << ctx;
  EXPECT_EQ(r.injected, 0u) << ctx;
  EXPECT_EQ(r.replicated, 0u) << ctx;
  EXPECT_EQ(r.digest_mismatches, 0u) << ctx;
  EXPECT_EQ(r.votes_resolved, 0u) << ctx;
  EXPECT_EQ(r.rollbacks, 0u) << ctx;
}

class Conformance
    : public ::testing::TestWithParam<std::tuple<const char*, ExecutorKind>> {
 protected:
  std::string app_name() const { return std::get<0>(GetParam()); }
  ExecutorKind kind() const { return std::get<1>(GetParam()); }
};

TEST_P(Conformance, FaultFreeResultAndCounterInvariants) {
  auto app = make_app(app_name(), test_config(app_name()));
  const std::uint64_t want = app->reference_checksum();
  const std::size_t reachable = engine::topological_order(*app).size();
  WorkStealingPool pool(3);

  RunSpec spec;
  spec.kind = kind();
  spec.reps = 2;  // repeated runs must not leak state between repetitions
  RepeatedRuns runs = run_executor(*app, pool, spec);
  EXPECT_EQ(app->result_checksum(), want);

  ASSERT_EQ(runs.reports.size(), 2u);
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.tasks_discovered, reachable);
    EXPECT_EQ(r.computes, reachable);
    expect_clean_counters(r, "fault-free");
    if (kind() == ExecutorKind::kCheckpoint) {
      EXPECT_GT(r.levels, 0u);
    } else {
      EXPECT_EQ(r.levels, 0u);
      EXPECT_EQ(r.checkpoints, 0u);
      EXPECT_EQ(r.checkpoint_seconds, 0.0);
    }
  }
}

TEST_P(Conformance, InjectedFaultsStillYieldTheReferenceResult) {
  if (!supports_injection(kind()))
    GTEST_SKIP() << executor_kind_name(kind()) << " cannot recover";
  auto app = make_app(app_name(), test_config(app_name()));
  const std::uint64_t want = app->reference_checksum();
  WorkStealingPool pool(3);

  FaultPlanner planner(*app);
  FaultPlanSpec fault_spec;
  fault_spec.phase = FaultPhase::kAfterCompute;
  fault_spec.target_count = 5;
  PlannedFaultInjector injector(planner.plan(fault_spec).faults);

  RunSpec spec;
  spec.kind = kind();
  spec.reps = 2;
  spec.injector = &injector;
  RepeatedRuns runs = run_executor(*app, pool, spec);
  EXPECT_EQ(app->result_checksum(), want);

  for (const ExecReport& r : runs.reports) {
    EXPECT_GT(r.injected, 0u);
    EXPECT_GE(r.faults_caught, 1u);
    EXPECT_GT(r.re_executed, 0u);
    // Re-execution accounting: every compute beyond the first per key.
    EXPECT_EQ(r.computes, r.tasks_discovered + r.re_executed);
    if (kind() == ExecutorKind::kFaultTolerant) {
      EXPECT_GE(r.recoveries, 1u);  // selective: RecoverTask replacements
      EXPECT_EQ(r.rollbacks, 0u);
    } else {
      EXPECT_GE(r.rollbacks, 1u);  // collective: global rollbacks
      EXPECT_EQ(r.recoveries, 0u);
    }
  }
}

TEST_P(Conformance, ReplicationIsPureAndDetectsBitFlips) {
  if (!supports_replication(kind()))
    GTEST_SKIP() << executor_kind_name(kind()) << " has no detection policy";
  auto app = make_app(app_name(), test_config(app_name()));
  const std::uint64_t want = app->reference_checksum();
  WorkStealingPool pool(3);

  RunSpec spec;
  spec.kind = kind();
  spec.reps = 1;
  spec.ft.replication = ReplicationPolicy::parse("all");

  // Fault-free full DMR: replicas must be pure (no published side effects),
  // so the result is identical and no digest ever disagrees.
  RepeatedRuns clean = run_executor(*app, pool, spec);
  EXPECT_EQ(app->result_checksum(), want);
  {
    const ExecReport& r = clean.reports.front();
    EXPECT_EQ(r.computes, r.tasks_discovered);
    EXPECT_GT(r.replicated, 0u);
    EXPECT_EQ(r.digest_mismatches, 0u);
    EXPECT_EQ(r.recoveries, 0u);
  }

  // Replication as the *detector*: real bit flips in committed outputs,
  // checksum mode off — digest voting must catch them all before any
  // successor reads, and recovery must restore the exact result.
  FaultPlanner planner(*app);
  FaultPlanSpec fault_spec;
  fault_spec.phase = FaultPhase::kAfterCompute;
  fault_spec.target_count = 5;
  BitFlipInjector flips(planner.plan(fault_spec).faults);
  spec.injector = &flips;
  RepeatedRuns flipped = run_executor(*app, pool, spec);
  EXPECT_EQ(app->result_checksum(), want);
  {
    const ExecReport& r = flipped.reports.front();
    EXPECT_GT(r.injected, 0u);
    EXPECT_GE(r.digest_mismatches, r.injected);
  }
}

std::string conformance_name(
    const ::testing::TestParamInfo<Conformance::ParamType>& info) {
  return std::string(std::get<0>(info.param)) + "_" +
         executor_kind_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllExecutors, Conformance,
                         ::testing::Combine(::testing::Values("lcs", "sw", "fw",
                                                              "lu", "cholesky",
                                                              "rand"),
                                            ::testing::ValuesIn(kAllKinds)),
                         conformance_name);

TEST(FwDependenceClasses, WarEdgesAreOrderingOnly) {
  auto app = make_app("fw", {96, 16, 3});  // W = 6
  const int w = 6;
  auto key = [w](int k, int i, int j) {
    return (static_cast<TaskKey>(k) * w + i) * w + j;
  };
  // Stage-internal and previous-version edges carry data...
  EXPECT_TRUE(app->data_dependence(key(3, 1, 2), key(3, 1, 3)));  // col panel
  EXPECT_TRUE(app->data_dependence(key(3, 1, 2), key(2, 1, 2)));  // prev ver
  EXPECT_TRUE(app->data_dependence(key(3, 3, 2), key(3, 3, 3)));  // diag
  // ...while stage-(k-2) guards do not.
  EXPECT_FALSE(app->data_dependence(key(3, 1, 1), key(1, 2, 1)));
  EXPECT_FALSE(app->data_dependence(key(4, 2, 3), key(2, 1, 3)));

  // Every WAR predecessor really appears in the successor's pred list.
  KeyList preds;
  app->predecessors(key(4, 2, 2), preds);  // block (2,2) was stage-2 diag
  int war = 0;
  for (TaskKey p : preds)
    if (!app->data_dependence(key(4, 2, 2), p)) ++war;
  EXPECT_EQ(war, 2 * (w - 1));  // the whole stage-2 panel set
}

}  // namespace
}  // namespace ftdag
