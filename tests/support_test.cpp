// Unit tests for the support substrate: SmallVector, Xoshiro, stats, CLI,
// tables.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/small_vector.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

TEST(SmallVector, StartsEmptyWithInlineCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineStorage) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, GrowsPastInlineStorage) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, CopyPreservesElements) {
  SmallVector<int, 2> v{1, 2, 3, 4, 5};
  SmallVector<int, 2> c(v);
  EXPECT_EQ(c, v);
  c.push_back(6);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(c.size(), 6u);
}

TEST(SmallVector, MoveFromHeapStealsBuffer) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const int* data = v.data();
  SmallVector<int, 2> m(std::move(v));
  EXPECT_EQ(m.data(), data);
  EXPECT_EQ(m.size(), 50u);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, MoveFromInlineCopiesElements) {
  SmallVector<std::string, 4> v{"a", "b"};
  SmallVector<std::string, 4> m(std::move(v));
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], "a");
  EXPECT_EQ(m[1], "b");
}

TEST(SmallVector, PopBackDestroysLast) {
  SmallVector<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVector, ContainsFindsElements) {
  SmallVector<int, 4> v{5, 7, 9};
  EXPECT_TRUE(v.contains(7));
  EXPECT_FALSE(v.contains(8));
}

TEST(SmallVector, ResizeGrowsAndShrinks) {
  SmallVector<int, 2> v;
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 0);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVector, NonTrivialElementLifetimes) {
  auto count = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    explicit Probe(std::shared_ptr<int> s) : c(std::move(s)) { ++*c; }
    Probe(const Probe& o) : c(o.c) { ++*c; }
    Probe(Probe&& o) noexcept : c(std::move(o.c)) {}
    ~Probe() {
      if (c) --*c;
    }
  };
  {
    SmallVector<Probe, 2> v;
    for (int i = 0; i < 20; ++i) v.emplace_back(count);
    EXPECT_EQ(*count, 20);
  }
  EXPECT_EQ(*count, 0);
}

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

TEST(Xoshiro, Uniform01InUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Stats, SummaryOfKnownSamples) {
  Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).n, 0u);
  Summary s = summarize({3.5});
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, OverheadPercentage) {
  EXPECT_NEAR(overhead_pct(2.0, 2.2), 10.0, 1e-9);
  EXPECT_NEAR(overhead_pct(2.0, 1.8), -10.0, 1e-9);
  EXPECT_DOUBLE_EQ(overhead_pct(0.0, 1.0), 0.0);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--threads=4", "--apps", "lcs,fw", "--quick"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("threads", 1), 4);
  EXPECT_EQ(cli.get_string("apps", ""), "lcs,fw");
  EXPECT_TRUE(cli.get_bool("quick", false));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, ListSplitting) {
  const char* argv[] = {"prog", "--apps=lcs,lu,"};
  Cli cli(2, const_cast<char**>(argv));
  auto v = cli.get_list("apps", "");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "lcs");
  EXPECT_EQ(v[1], "lu");
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "run", "--n=5", "fast"};
  Cli cli(4, const_cast<char**>(argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "run");
  EXPECT_EQ(cli.positional()[1], "fast");
  EXPECT_EQ(cli.get_int("n", 0), 5);
}

TEST(Cli, ValidatedIntGetters) {
  const char* argv[] = {"prog", "--threads=4", "--reps=2", "--snap=0"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_positive_int("threads", 1), 4);
  EXPECT_EQ(cli.get_positive_int("reps", 5), 2);
  EXPECT_EQ(cli.get_nonneg_int("snap", 8), 0);
  EXPECT_EQ(cli.get_positive_int("absent", 3), 3);
  auto list = cli.get_positive_int_list("list", "1,2,4");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 4);
}

// Malformed or out-of-bounds numeric flags exit 2 with a one-line error
// naming the flag, instead of strtoll's silent prefix parse.
TEST(CliDeathTest, RejectsMalformedNumericFlags) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"prog", "--threads=abc", "--reps=0",
                        "--snapshot-every=-1", "--scale=fast", "--list=2,x"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.get_int("threads", 1),
              ::testing::ExitedWithCode(2), "invalid value for --threads");
  EXPECT_EXIT((void)cli.get_positive_int("threads", 1),
              ::testing::ExitedWithCode(2), "--threads.*>= 1");
  EXPECT_EXIT((void)cli.get_positive_int("reps", 1),
              ::testing::ExitedWithCode(2), "--reps.*>= 1");
  EXPECT_EXIT((void)cli.get_nonneg_int("snapshot-every", 0),
              ::testing::ExitedWithCode(2), "--snapshot-every.*>= 0");
  EXPECT_EXIT((void)cli.get_double("scale", 1.0),
              ::testing::ExitedWithCode(2), "invalid value for --scale");
  EXPECT_EXIT((void)cli.get_positive_int_list("list", "1"),
              ::testing::ExitedWithCode(2), "--list");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.render().find("| 1 |"), std::string::npos);
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(strf("%d/%d", 3, 4), "3/4");
}

TEST(Mix64, AvalanchesLowBits) {
  // Adjacent inputs should produce wildly different outputs.
  int diff_bits = 0;
  const std::uint64_t a = mix64(1), b = mix64(2);
  for (int i = 0; i < 64; ++i) diff_bits += ((a >> i) & 1) != ((b >> i) & 1);
  EXPECT_GT(diff_bits, 20);
}

}  // namespace
}  // namespace ftdag
