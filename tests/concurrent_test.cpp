// Unit and stress tests for the concurrent substrate: Chase-Lev deque,
// sharded hash map, atomic bitset.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrent/atomic_bitset.hpp"
#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/sharded_map.hpp"

namespace ftdag {
namespace {

TEST(ChaseLevDeque, LifoForOwner) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  int v = 0;
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(d.pop(v));
}

TEST(ChaseLevDeque, FifoForThieves) {
  ChaseLevDeque<int> d;
  d.push(1);
  d.push(2);
  int v = 0;
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1);  // thieves take the oldest item
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(d.steal(v));
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(4);
  for (int i = 0; i < 1000; ++i) d.push(i);
  EXPECT_EQ(d.size_estimate(), 1000u);
  int v = 0;
  for (int i = 999; i >= 0; --i) {
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(ChaseLevDeque, OwnerPopVsThievesStress) {
  // Every pushed item must be consumed exactly once between the owner and
  // the thieves, including under the single-element CAS race.
  constexpr int kItems = 50000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> d;
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int v;
      while (!done.load(std::memory_order_acquire) ||
             consumed.load() < kItems) {
        if (d.steal(v)) {
          sum.fetch_add(v);
          consumed.fetch_add(1);
        }
        if (consumed.load() >= kItems) break;
      }
    });
  }

  std::int64_t expect = 0;
  for (int i = 1; i <= kItems; ++i) {
    d.push(i);
    expect += i;
    if (i % 3 == 0) {  // owner interleaves pops
      int v;
      if (d.pop(v)) {
        sum.fetch_add(v);
        consumed.fetch_add(1);
      }
    }
  }
  done.store(true, std::memory_order_release);
  int v;
  while (consumed.load() < kItems)
    if (d.pop(v)) {
      sum.fetch_add(v);
      consumed.fetch_add(1);
    }
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kItems);
  EXPECT_EQ(sum.load(), expect);
}

TEST(ShardedMap, InsertIfAbsentReturnsExisting) {
  ShardedMap<int> m;
  auto [a, ins1] = m.insert_if_absent(42, [] { return new int(7); });
  EXPECT_TRUE(ins1);
  EXPECT_EQ(*a, 7);
  auto [b, ins2] = m.insert_if_absent(42, [] { return new int(9); });
  EXPECT_FALSE(ins2);
  EXPECT_EQ(b, a);  // same stable pointer
  EXPECT_EQ(*b, 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ShardedMap, FindMissingReturnsNull) {
  ShardedMap<int> m;
  EXPECT_EQ(m.find(5), nullptr);
  m.insert_if_absent(5, [] { return new int(1); });
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 1);
}

TEST(ShardedMap, PointersStableAcrossGrowth) {
  ShardedMap<int> m(/*shards=*/2, /*initial=*/4);
  std::vector<int*> ptrs;
  for (int i = 0; i < 2000; ++i) {
    auto [p, ins] = m.insert_if_absent(i, [i] { return new int(i); });
    ASSERT_TRUE(ins);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(m.find(i), ptrs[i]);
    EXPECT_EQ(*ptrs[i], i);
  }
}

TEST(ShardedMap, ForEachVisitsEverything) {
  ShardedMap<int> m;
  for (int i = 0; i < 100; ++i)
    m.insert_if_absent(i * 17, [i] { return new int(i); });
  int count = 0;
  std::int64_t keysum = 0;
  m.for_each([&](MapKey k, int&) {
    ++count;
    keysum += k;
  });
  EXPECT_EQ(count, 100);
  EXPECT_EQ(keysum, 17 * 99 * 100 / 2);
}

TEST(ShardedMap, ClearEmptiesAndReuses) {
  ShardedMap<int> m;
  m.insert_if_absent(1, [] { return new int(1); });
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), nullptr);
  auto [p, ins] = m.insert_if_absent(1, [] { return new int(2); });
  EXPECT_TRUE(ins);
  EXPECT_EQ(*p, 2);
}

TEST(ShardedMap, ConcurrentInsertSingleWinner) {
  // All threads race to insert the same keys; exactly one factory call per
  // key must win and everyone must see the same pointer.
  ShardedMap<std::atomic<int>> m;
  constexpr int kKeys = 500;
  constexpr int kThreads = 4;
  std::atomic<int> factory_calls{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        auto [p, ins] = m.insert_if_absent(k, [&] {
          factory_calls.fetch_add(1);
          return new std::atomic<int>(0);
        });
        p->fetch_add(1);
        (void)ins;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(factory_calls.load(), kKeys);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kKeys));
  m.for_each([&](MapKey, std::atomic<int>& v) { EXPECT_EQ(v.load(), kThreads); });
}

TEST(ShardedMap, LockFreeFindRacesInsertAcrossGrows) {
  // Readers probe lock-free while a writer inserts through repeated table
  // growths (tiny shards force many grows). The writer publishes a
  // watermark with a release store after each insert; a reader that
  // acquires watermark w synchronizes with every insert up to w, so find()
  // must hit for all keys <= w and return the right value. Run under TSan
  // this also proves the probe/publish protocol is race-free.
  constexpr int kKeys = 20000;
  constexpr int kReaders = 3;
  ShardedMap<int> m(/*shards=*/2, /*initial=*/4);
  std::atomic<int> watermark{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t x = 0x9E3779B97F4A7C15ULL * (t + 1);
      while (!done.load(std::memory_order_acquire)) {
        const int w = watermark.load(std::memory_order_acquire);
        if (w == 0) continue;
        // Cheap xorshift: any key in [1, w] must be visible.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const int key = 1 + static_cast<int>(x % w);
        int* p = m.find(key);
        ASSERT_NE(p, nullptr) << "published key " << key
                              << " invisible at watermark " << w;
        EXPECT_EQ(*p, key);
        // Keys beyond the watermark may race an in-flight insert: either
        // outcome is fine, but a hit must carry the right value.
        const int racy = w + 1 + static_cast<int>(x % kKeys);
        if (int* q = m.find(racy); q != nullptr) {
          EXPECT_EQ(*q, racy);
        }
      }
    });
  }

  for (int k = 1; k <= kKeys; ++k) {
    auto [p, ins] = m.insert_if_absent(k, [k] { return new int(k); });
    ASSERT_TRUE(ins);
    watermark.store(k, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kKeys));
  for (int k = 1; k <= kKeys; ++k) ASSERT_NE(m.find(k), nullptr);
}

TEST(AtomicBitset, StartsAllSet) {
  AtomicBitset b(130);  // crosses word boundaries
  EXPECT_EQ(b.count(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_TRUE(b.test(i));
}

TEST(AtomicBitset, FetchUnsetReportsTransition) {
  AtomicBitset b(8);
  EXPECT_TRUE(b.fetch_unset(3));   // we cleared it
  EXPECT_FALSE(b.fetch_unset(3));  // already clear
  EXPECT_FALSE(b.test(3));
  EXPECT_EQ(b.count(), 7u);
}

TEST(AtomicBitset, SetAllRestoresEverything) {
  AtomicBitset b(70);
  for (std::size_t i = 0; i < 70; i += 2) b.fetch_unset(i);
  EXPECT_EQ(b.count(), 35u);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(AtomicBitset, ConcurrentUnsetSingleWinnerPerBit) {
  // The Guarantee-3 primitive: across threads, each bit is "won" exactly
  // once no matter how many racers clear it.
  constexpr std::size_t kBits = 256;
  AtomicBitset b(kBits);
  std::atomic<int> wins{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (std::size_t i = 0; i < kBits; ++i)
        if (b.fetch_unset(i)) wins.fetch_add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(wins.load(), static_cast<int>(kBits));
  EXPECT_EQ(b.count(), 0u);
}

}  // namespace
}  // namespace ftdag
