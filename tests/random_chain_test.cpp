// Property tests for the versioned-chain random app: the memory-reuse
// recovery machinery (aliased updates, overwrite chains, guard edges) under
// randomized topologies, seeds and fault storms.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "apps/random_chain.hpp"
#include "fault/fault_plan.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"
#include "support/xoshiro.hpp"

namespace ftdag {
namespace {

RandomChainSpec spec_with(std::uint64_t seed, int blocks = 10,
                          int versions = 10) {
  RandomChainSpec s;
  s.blocks = blocks;
  s.versions = versions;
  s.reads = 2;
  s.work_iters = 30;
  s.seed = seed;
  return s;
}

TEST(RandomChain, GraphIsConsistentAndAcyclic) {
  RandomChainProblem app(spec_with(3));
  GraphMetrics m = analyze_graph(app);  // asserts acyclicity
  EXPECT_EQ(m.tasks, 101u);
  EXPECT_GE(m.span, 11u);  // at least the chain depth + sink
}

TEST(RandomChain, ExecutorsAgreeFaultFree) {
  RandomChainProblem app(spec_with(4));
  WorkStealingPool pool(4);
  run_baseline(app, pool, 2);  // validates against the reference
  run_ft(app, pool, 2);
}

TEST(RandomChain, GuardEdgesAreAntiDependences) {
  RandomChainProblem app(spec_with(5));
  std::vector<TaskKey> keys;
  app.all_tasks(keys);
  std::size_t guards = 0;
  for (TaskKey k : keys) {
    KeyList preds;
    app.predecessors(k, preds);
    for (TaskKey p : preds)
      if (!app.data_dependence(k, p)) ++guards;
  }
  EXPECT_GT(guards, 0u) << "random reads should induce guard edges";
}

TEST(RandomChain, VLastFaultReexecutesWholeChain) {
  // Pure per-block chains (no cross-block reads): demand is linear, so a
  // deep victim re-executes exactly its version history and terminates.
  // With cross-block reads the same fault can livelock (DESIGN.md §3a.5),
  // which is why this test pins reads = 0.
  RandomChainSpec s = spec_with(6);
  s.reads = 0;
  RandomChainProblem app(s);
  FaultPlanner planner(app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 10;  // one deep victim (chain depth 10) suffices
  spec.seed = 2;
  FaultPlan plan = planner.plan(spec);
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].implied_reexecutions, 10u);
  PlannedFaultInjector injector(plan.faults);
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 1, &injector);
  // The in-place chain forces at least the victim's whole version history;
  // cross-block reads can pull in more.
  EXPECT_GE(runs.reports[0].re_executed, 10u);
}

using ChainStormParam = std::tuple<int /*topology seed*/, int /*fault seed*/>;

class RandomChainFaults : public ::testing::TestWithParam<ChainStormParam> {};

TEST_P(RandomChainFaults, ExactResultUnderConcurrentChainFaults) {
  // Chain-fault storms on *linear* chains (no cross-block reads): demand
  // per block is single-consumer, so any number of concurrent chain faults
  // terminates. Cross-version demand storms can livelock by mutual
  // displacement — a liveness limitation of bounded-retention selective
  // recovery that the paper's benchmarks structurally avoid (DESIGN.md
  // §3a.5); the cross-read topology is therefore exercised fault-free and
  // with before-compute faults below.
  const auto [topo_seed, fault_seed] = GetParam();
  RandomChainSpec s = spec_with(static_cast<std::uint64_t>(topo_seed));
  s.reads = 0;
  RandomChainProblem app(s);
  std::vector<TaskKey> keys;
  app.all_tasks(keys);
  Xoshiro256 rng(static_cast<std::uint64_t>(fault_seed));
  for (std::size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[rng.below(i)]);
  std::vector<PlannedFault> faults;
  for (std::size_t i = 0; i < 8; ++i)
    faults.push_back({keys[i], static_cast<FaultPhase>(rng.below(2)), 1});
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(4);
  run_ft(app, pool, 2, &injector);  // validates the checksum each run
}

// NOTE deliberately absent: fault storms on the cross-read topology. Even
// before-compute faults there make recovered tasks re-consume inputs that
// other pending consumers still demand; convergence then depends on the
// interleaving (measured: from ~5x10^3 re-executions to >10^7 without
// converging). That boundary of bounded-retention selective recovery is
// documented in DESIGN.md §3a.5 and exercised interactively via the
// executor's liveness watchdog, not as a CI test.

INSTANTIATE_TEST_SUITE_P(Sweep, RandomChainFaults,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              6),
                                            ::testing::Values(7, 8, 9)));

TEST(RandomChain, DeepChainSingleBlock) {
  // One block, 200 versions: a pure in-place chain; fault in the middle
  // re-executes from the fault point down... i.e. versions 0..v again.
  RandomChainSpec s;
  s.blocks = 1;
  s.versions = 200;
  s.reads = 0;
  s.work_iters = 5;
  s.seed = 9;
  RandomChainProblem app(s);
  std::vector<PlannedFault> faults{
      {app.sink() - 100, FaultPhase::kAfterCompute, 100}};
  PlannedFaultInjector injector(std::move(faults));
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(app, pool, 1, &injector);
  EXPECT_GE(runs.reports[0].re_executed, 100u);
}

TEST(RandomChain, WideStageManyBlocks) {
  RandomChainSpec s;
  s.blocks = 64;
  s.versions = 4;
  s.reads = 3;
  s.work_iters = 10;
  s.seed = 11;
  RandomChainProblem app(s);
  WorkStealingPool pool(4);
  run_ft(app, pool, 2);
}

}  // namespace
}  // namespace ftdag
