// Tests for the baseline NABBIT executor: correct results on every app,
// exactly-once compute, thread-count sweeps.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/app_registry.hpp"
#include "apps/lcs.hpp"
#include "graph/graph_metrics.hpp"
#include "harness/experiment.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};  // W=6, 217 tasks
  return {256, 32, 3};                   // W=8 grids
}

class BaselineApps
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(BaselineApps, ComputesReferenceChecksum) {
  const std::string name = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  auto app = make_app(name, test_config(name));
  WorkStealingPool pool(threads);
  RepeatedRuns runs = run_baseline(*app, pool, 2);  // validates internally
  EXPECT_EQ(runs.seconds.size(), 2u);
  // Baseline must compute each task exactly once.
  const GraphMetrics m = analyze_graph(*app);
  for (const ExecReport& r : runs.reports) {
    EXPECT_EQ(r.computes, m.tasks);
    EXPECT_EQ(r.tasks_discovered, m.tasks);
    EXPECT_EQ(r.re_executed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsByThreads, BaselineApps,
    ::testing::Combine(::testing::Values("lcs", "sw", "fw", "lu", "cholesky",
                                         "rand"),
                       ::testing::Values(1, 4)));

TEST(NabbitExecutor, RepeatedRunsStayCorrect) {
  auto app = make_app("lu", test_config("lu"));
  WorkStealingPool pool(3);
  RepeatedRuns runs = run_baseline(*app, pool, 5);
  EXPECT_EQ(runs.seconds.size(), 5u);
}

TEST(NabbitExecutor, SingleTaskGraph) {
  // Degenerate case: one block, the sink is also the only source.
  auto app = make_app("lcs", {32, 32, 3});
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_baseline(*app, pool, 1);
  EXPECT_EQ(runs.reports[0].computes, 1u);
}

TEST(NabbitExecutor, LcsLengthIsPlausible) {
  AppConfig cfg = test_config("lcs");
  auto app = std::make_unique<LcsProblem>(cfg);
  WorkStealingPool pool(2);
  run_baseline(*app, pool, 1);
  const std::int32_t len = app->lcs_length();
  // Random 4-letter sequences of length n: LCS length is well above n/4 and
  // below n.
  EXPECT_GT(len, cfg.n / 4);
  EXPECT_LT(len, cfg.n);
}

}  // namespace
}  // namespace ftdag
