// Tests for the versioned block store: retention/slot mapping, write
// tickets, displacement, corruption and fault attribution.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "blocks/block_store.hpp"

namespace ftdag {
namespace {

void write_value(BlockStore& s, BlockId b, Version v, int value) {
  WriteTicket t = s.begin_write(b, v);
  std::memcpy(t.data, &value, sizeof(value));
  s.commit(t);
}

int read_value(const BlockStore& s, BlockId b, Version v) {
  int out = 0;
  std::memcpy(&out, s.read(b, v), sizeof(out));
  return out;
}

TEST(BlockStore, VersionsStartAbsent) {
  BlockStore s;
  const BlockId b = s.add_block(64, 4);
  for (Version v = 0; v < 4; ++v)
    EXPECT_EQ(s.state(b, v), VersionState::kAbsent);
  EXPECT_THROW((void)s.read(b, 0), DataBlockFault);
}

TEST(BlockStore, WriteCommitRead) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 2);
  write_value(s, b, 0, 42);
  EXPECT_EQ(s.state(b, 0), VersionState::kValid);
  EXPECT_EQ(read_value(s, b, 0), 42);
}

TEST(BlockStore, Retention1SharesOneSlot) {
  BlockStore s;
  s.set_retention(1);
  const BlockId b = s.add_block(sizeof(int), 5);
  EXPECT_TRUE(s.same_slot(b, 0, 4));
  write_value(s, b, 0, 10);
  write_value(s, b, 1, 11);
  EXPECT_EQ(s.state(b, 0), VersionState::kOverwritten);
  EXPECT_EQ(read_value(s, b, 1), 11);
}

TEST(BlockStore, Retention2KeepsPreviousVersion) {
  BlockStore s;
  s.set_retention(2);
  const BlockId b = s.add_block(sizeof(int), 6);
  EXPECT_FALSE(s.same_slot(b, 0, 1));
  EXPECT_TRUE(s.same_slot(b, 0, 2));
  write_value(s, b, 0, 10);
  write_value(s, b, 1, 11);
  EXPECT_EQ(read_value(s, b, 0), 10);  // still alive
  write_value(s, b, 2, 12);            // displaces version 0
  EXPECT_EQ(s.state(b, 0), VersionState::kOverwritten);
  EXPECT_EQ(read_value(s, b, 1), 11);
  EXPECT_EQ(read_value(s, b, 2), 12);
}

TEST(BlockStore, RetentionZeroKeepsAllVersions) {
  BlockStore s;
  s.set_retention(0);
  const BlockId b = s.add_block(sizeof(int), 8);
  for (Version v = 0; v < 8; ++v) write_value(s, b, v, 100 + v);
  for (Version v = 0; v < 8; ++v) EXPECT_EQ(read_value(s, b, v), 100 + v);
}

TEST(BlockStore, OverwrittenReadAttributesProducer) {
  BlockStore s;
  s.set_retention(1);
  const BlockId b = s.add_block(sizeof(int), 3);
  s.set_producer(b, 0, 111);
  s.set_producer(b, 1, 222);
  write_value(s, b, 0, 1);
  write_value(s, b, 1, 2);
  try {
    (void)s.read(b, 0);
    FAIL() << "expected DataBlockFault";
  } catch (const DataBlockFault& f) {
    EXPECT_EQ(f.failed_key(), 111);
    EXPECT_EQ(f.block(), b);
    EXPECT_EQ(f.version(), 0u);
    EXPECT_EQ(f.reason(), BlockFaultReason::kOverwritten);
  }
}

TEST(BlockStore, CorruptOnlyHitsValidVersions) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 2);
  s.corrupt(b, 0);  // Absent: no-op
  EXPECT_EQ(s.state(b, 0), VersionState::kAbsent);
  write_value(s, b, 0, 5);
  s.corrupt(b, 0);
  EXPECT_EQ(s.state(b, 0), VersionState::kCorrupted);
  try {
    (void)s.read(b, 0);
    FAIL() << "expected DataBlockFault";
  } catch (const DataBlockFault& f) {
    EXPECT_EQ(f.reason(), BlockFaultReason::kCorrupted);
  }
}

TEST(BlockStore, RewriteClearsCorruption) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 1);
  write_value(s, b, 0, 5);
  s.corrupt(b, 0);
  write_value(s, b, 0, 6);  // recovery re-execution
  EXPECT_EQ(read_value(s, b, 0), 6);
}

TEST(BlockStore, BeginWriteDowngradesTargetDuringRewrite) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 1);
  write_value(s, b, 0, 5);
  WriteTicket t = s.begin_write(b, 0);  // rewrite of the same version
  EXPECT_EQ(s.state(b, 0), VersionState::kAbsent);  // readers must fail now
  EXPECT_THROW(s.revalidate(b, 0), DataBlockFault);
  s.commit(t);
  EXPECT_EQ(read_value(s, b, 0), 5);  // bytes were preserved
}

TEST(BlockStore, AbortLeavesVersionUnpublished) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 2);
  WriteTicket t = s.begin_write(b, 0);
  s.abort(t);
  EXPECT_EQ(s.state(b, 0), VersionState::kAbsent);
  write_value(s, b, 0, 9);  // slot lock was released by abort
  EXPECT_EQ(read_value(s, b, 0), 9);
}

TEST(BlockStore, BeginUpdateAliasedConsumesInput) {
  BlockStore s;
  s.set_retention(1);
  const BlockId b = s.add_block(sizeof(int), 3);
  write_value(s, b, 0, 7);
  WriteTicket t = s.begin_update(b, 0, 1);
  EXPECT_EQ(s.state(b, 0), VersionState::kOverwritten);
  int in = 0;
  std::memcpy(&in, t.data, sizeof(in));
  EXPECT_EQ(in, 7);  // bytes intact for the in-place read
  const int out = in + 1;
  std::memcpy(t.data, &out, sizeof(out));
  s.commit(t);
  EXPECT_EQ(read_value(s, b, 1), 8);
}

TEST(BlockStore, BeginUpdateThrowsOnBadInput) {
  BlockStore s;
  s.set_retention(1);
  const BlockId b = s.add_block(sizeof(int), 3);
  s.set_producer(b, 0, 77);
  // Version 0 never produced.
  try {
    WriteTicket t = s.begin_update(b, 0, 1);
    s.abort(t);
    FAIL() << "expected DataBlockFault";
  } catch (const DataBlockFault& f) {
    EXPECT_EQ(f.failed_key(), 77);
    EXPECT_EQ(f.reason(), BlockFaultReason::kMissing);
  }
  // Slot lock must have been released by the throwing path.
  write_value(s, b, 0, 1);
  EXPECT_EQ(read_value(s, b, 0), 1);
}

TEST(BlockStore, ResetStatesClearsEverything) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 2);
  write_value(s, b, 0, 1);
  s.corrupt(b, 0);
  s.reset_states();
  EXPECT_EQ(s.state(b, 0), VersionState::kAbsent);
  EXPECT_EQ(s.state(b, 1), VersionState::kAbsent);
}

TEST(BlockStore, SnapshotRestoreRoundTrips) {
  BlockStore s;
  s.set_retention(2);
  const BlockId a = s.add_block(sizeof(int), 4);
  const BlockId b = s.add_block(sizeof(int), 1);
  write_value(s, a, 0, 10);
  write_value(s, a, 1, 11);
  write_value(s, b, 0, 99);
  BlockStore::Snapshot snap = s.snapshot();

  write_value(s, a, 2, 12);  // displaces version 0
  s.corrupt(b, 0);
  EXPECT_EQ(s.state(a, 0), VersionState::kOverwritten);

  s.restore(snap);
  EXPECT_EQ(read_value(s, a, 0), 10);
  EXPECT_EQ(read_value(s, a, 1), 11);
  EXPECT_EQ(read_value(s, b, 0), 99);
  EXPECT_EQ(s.state(a, 2), VersionState::kAbsent);
}

TEST(BlockStore, SnapshotCapturesCorruptionFlags) {
  BlockStore s;
  const BlockId b = s.add_block(sizeof(int), 1);
  write_value(s, b, 0, 5);
  s.corrupt(b, 0);
  BlockStore::Snapshot snap = s.snapshot();
  bool has_corrupt = false;
  for (VersionState st : snap.states)
    has_corrupt = has_corrupt || st == VersionState::kCorrupted;
  EXPECT_TRUE(has_corrupt);  // poisoned snapshots are detectable
}

TEST(BlockStore, ConcurrentWritersSerializePerSlot) {
  // Two threads repeatedly rewrite versions sharing one slot; the slot lock
  // must serialize them so every committed version reads back intact.
  BlockStore s;
  s.set_retention(1);
  const BlockId b = s.add_block(sizeof(std::uint64_t) * 64, 2);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  auto writer = [&](Version v, std::uint64_t tag) {
    while (!stop.load(std::memory_order_acquire)) {
      WriteTicket t = s.begin_write(b, v);
      auto* p = static_cast<std::uint64_t*>(t.data);
      for (int i = 0; i < 64; ++i) p[i] = tag;
      for (int i = 0; i < 64; ++i)
        if (p[i] != tag) torn.fetch_add(1);
      s.commit(t);
    }
  };
  std::thread t1(writer, 0, 0x1111111111111111ULL);
  std::thread t2(writer, 1, 0x2222222222222222ULL);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(BlockStore, StorageAccounting) {
  BlockStore s;
  s.set_retention(2);
  s.add_block(100, 10);  // 2 slots retained
  s.add_block(100, 1);   // 1 slot
  EXPECT_EQ(s.total_storage_bytes(), 300u);
  EXPECT_EQ(s.block_count(), 2u);
  EXPECT_EQ(s.num_versions(0), 10u);
  EXPECT_EQ(s.block_bytes(0), 100u);
}

}  // namespace
}  // namespace ftdag
