// End-to-end tests for the schedule-exploration harness (src/check/).
//
// In a normal build only the configuration guard is checked — the shim
// compiles down to std::atomic/SpinLock, so there is nothing to observe
// and explore() must say so instead of silently passing. The real suite
// (clean registry passes, mutations are caught, failures replay
// deterministically) runs under -DFTDAG_SCHED_CHECK=ON; CI's sched-check
// job builds that configuration.

#include "check/scenarios.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ftdag::check {
namespace {

TEST(ScheduleExplorer, UninstrumentedBuildIsAConfigurationError) {
  if (ScheduleExplorer::instrumentation_enabled()) {
    GTEST_SKIP() << "FTDAG_SCHED_CHECK build: explore() is functional here";
  }
  ScheduleExplorer explorer;
  const ExploreResult r = explorer.explore(clean_scenarios().front());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].message.find("FTDAG_SCHED_CHECK"),
            std::string::npos);
  EXPECT_EQ(r.executions, 0u);
}

TEST(ScheduleExplorer, RegistryShapes) {
  // Registry sanity runs in every build: names unique, factories produce
  // the declared thread counts, mutations declare expected tags.
  for (const Scenario& s : clean_scenarios()) {
    SCOPED_TRACE(s.name);
    EXPECT_TRUE(s.expect_tags.empty());
    EXPECT_EQ(s.make().threads.size(), s.thread_count);
  }
  for (const Scenario& s : mutation_scenarios()) {
    SCOPED_TRACE(s.name);
    EXPECT_FALSE(s.expect_tags.empty());
    EXPECT_EQ(s.make().threads.size(), s.thread_count);
  }
}

#if defined(FTDAG_SCHED_CHECK)

bool mentions_tag(const ExploreResult& r, const std::string& tag) {
  const std::string needle = "'" + tag + "'";
  for (const Violation& v : r.violations) {
    if (v.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// Every registered clean scenario explores violation-free: exhaustive
// scenarios must actually exhaust their schedule tree, PCT scenarios run
// their full schedule budget.
TEST(ScheduleExplorer, CleanRegistryPasses) {
  ScheduleExplorer explorer;
  for (const Scenario& s : clean_scenarios()) {
    SCOPED_TRACE(s.name);
    const ExploreResult r = explorer.explore(s);
    EXPECT_TRUE(r.ok()) << describe_result(s, r);
    EXPECT_GT(r.executions, 0u);
    if (s.exhaustive) {
      EXPECT_TRUE(r.exhausted) << "budget too small to exhaust: "
                               << r.executions << " executions";
    } else {
      EXPECT_GE(r.executions, s.pct_schedules);
    }
  }
}

// Every mutation (reintroduced historical bug) is caught, and the
// violation names the tag of the racing payload the ISSUE calls out.
TEST(ScheduleExplorer, MutationsAreCaughtWithTheirTags) {
  ScheduleExplorer explorer;
  for (const Scenario& s : mutation_scenarios()) {
    SCOPED_TRACE(s.name);
    const ExploreResult r = explorer.explore(s);
    ASSERT_FALSE(r.ok()) << "mutation was NOT flagged: " << s.name;
    for (const std::string& tag : s.expect_tags) {
      EXPECT_TRUE(mentions_tag(r, tag))
          << "no violation mentions tag '" << tag << "':\n"
          << describe_result(s, r);
    }
    EXPECT_FALSE(r.failing_schedule.empty());
    EXPECT_FALSE(r.trace.empty());
  }
}

// A reported failing schedule replays the same failure deterministically.
TEST(ScheduleExplorer, FailingScheduleReplaysDeterministically) {
  ScheduleExplorer explorer;
  const Scenario s = mutation_scenarios().front();  // mutation-run-gate
  const ExploreResult first = explorer.explore(s);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(first.failing_schedule.empty());

  ExploreOptions replay;
  replay.mode = ExploreOptions::Mode::kReplay;
  replay.replay_schedule = first.failing_schedule;
  for (int i = 0; i < 3; ++i) {
    const ExploreResult again = explorer.explore(s, replay);
    ASSERT_FALSE(again.ok()) << "replay did not reproduce (iteration " << i
                             << ")";
    EXPECT_EQ(again.executions, 1u);
    ASSERT_EQ(again.violations.size(), first.violations.size());
    for (std::size_t v = 0; v < first.violations.size(); ++v) {
      EXPECT_EQ(again.violations[v].message, first.violations[v].message);
    }
  }
}

// A PCT failure reports the per-schedule seed, and re-running PCT with
// that seed and a budget of one schedule reproduces it.
TEST(ScheduleExplorer, PctFailingSeedReplays) {
  ScheduleExplorer explorer;
  const Scenario s = mutation_scenarios().front();  // mutation-run-gate

  ExploreOptions pct;
  pct.mode = ExploreOptions::Mode::kPct;
  pct.pct_schedules = 500;
  const ExploreResult first = explorer.explore(s, pct);
  ASSERT_FALSE(first.ok()) << "PCT budget found no failure";
  ASSERT_TRUE(first.failing_seed_valid);

  ExploreOptions again;
  again.mode = ExploreOptions::Mode::kPct;
  again.seed = first.failing_seed;
  again.pct_schedules = 1;
  const ExploreResult repro = explorer.explore(s, again);
  ASSERT_FALSE(repro.ok()) << "failing seed did not reproduce";
  EXPECT_EQ(repro.executions, 1u);
  EXPECT_EQ(repro.failing_schedule, first.failing_schedule);
}

// The formatted failure block carries everything needed to reproduce:
// FAIL marker, violation kind, replay schedule line, and the event trace.
TEST(ScheduleExplorer, DescribeResultCarriesReplayInfo) {
  ScheduleExplorer explorer;
  const Scenario s = mutation_scenarios().front();
  const ExploreResult r = explorer.explore(s);
  ASSERT_FALSE(r.ok());
  const std::string text = describe_result(s, r);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("[data-race]"), std::string::npos);
  EXPECT_NE(text.find("replay schedule:"), std::string::npos);
  EXPECT_NE(text.find("step 0:"), std::string::npos);
}

#endif  // FTDAG_SCHED_CHECK

}  // namespace
}  // namespace ftdag::check
