// Fault-injection tests: every phase x victim-type scenario of the paper's
// Section VI on every benchmark, checking (a) the result always equals the
// fault-free reference (Theorem 1) and (b) the recovery counters behave as
// the paper describes.

#include <gtest/gtest.h>

#include <string>

#include "apps/app_registry.hpp"
#include "fault/fault_plan.hpp"
#include "harness/experiment.hpp"

namespace ftdag {
namespace {

AppConfig test_config(const std::string& name) {
  if (name == "fw") return {96, 16, 3};
  return {256, 32, 3};
}

struct Scenario {
  const char* app;
  FaultPhase phase;
  VictimType type;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  std::string n = info.param.app;
  n += info.param.phase == FaultPhase::kBeforeCompute  ? "_before"
       : info.param.phase == FaultPhase::kAfterCompute ? "_after"
                                                       : "_afternotify";
  n += info.param.type == VictimType::kVersionZero   ? "_v0"
       : info.param.type == VictimType::kVersionLast ? "_vlast"
                                                     : "_vrand";
  return n;
}

class FaultScenarios : public ::testing::TestWithParam<Scenario> {};

TEST_P(FaultScenarios, RecoversToCorrectResult) {
  const Scenario& sc = GetParam();
  auto app = make_app(sc.app, test_config(sc.app));
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = sc.phase;
  spec.type = sc.type;
  spec.target_count = 6;
  spec.seed = 17;
  FaultPlan plan = planner.plan(spec);
  ASSERT_FALSE(plan.faults.empty());

  PlannedFaultInjector injector(plan.faults);
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(*app, pool, 2, &injector);  // validates

  for (const ExecReport& r : runs.reports) {
    if (sc.phase != FaultPhase::kAfterNotify) {
      // Pre-completion faults sit on the critical path of some consumer and
      // must all be detected and recovered.
      EXPECT_EQ(r.injected, plan.faults.size());
      EXPECT_GT(r.recoveries, 0u);
      EXPECT_GT(r.faults_caught, 0u);
    }
    // After-notify faults may legitimately go unobserved (paper: "a failed
    // task whose successors have been computed is not recovered").
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, FaultScenarios,
    ::testing::Values(
        // LCS: all three types equivalent (single assignment).
        Scenario{"lcs", FaultPhase::kBeforeCompute, VictimType::kVersionRand},
        Scenario{"lcs", FaultPhase::kAfterCompute, VictimType::kVersionRand},
        Scenario{"lcs", FaultPhase::kAfterNotify, VictimType::kVersionRand},
        // SW: deep chains under full reuse.
        Scenario{"sw", FaultPhase::kBeforeCompute, VictimType::kVersionZero},
        Scenario{"sw", FaultPhase::kAfterCompute, VictimType::kVersionLast},
        Scenario{"sw", FaultPhase::kAfterCompute, VictimType::kVersionRand},
        Scenario{"sw", FaultPhase::kAfterNotify, VictimType::kVersionLast},
        // FW: two retained versions.
        Scenario{"fw", FaultPhase::kBeforeCompute, VictimType::kVersionRand},
        Scenario{"fw", FaultPhase::kAfterCompute, VictimType::kVersionZero},
        Scenario{"fw", FaultPhase::kAfterCompute, VictimType::kVersionLast},
        Scenario{"fw", FaultPhase::kAfterNotify, VictimType::kVersionRand},
        // LU / Cholesky: in-place chains.
        Scenario{"lu", FaultPhase::kAfterCompute, VictimType::kVersionZero},
        Scenario{"lu", FaultPhase::kAfterCompute, VictimType::kVersionLast},
        Scenario{"lu", FaultPhase::kAfterNotify, VictimType::kVersionRand},
        Scenario{"cholesky", FaultPhase::kBeforeCompute,
                 VictimType::kVersionLast},
        Scenario{"cholesky", FaultPhase::kAfterCompute,
                 VictimType::kVersionRand},
        Scenario{"cholesky", FaultPhase::kAfterNotify,
                 VictimType::kVersionZero}),
    scenario_name);

TEST(FaultInjection, BeforeComputeLosesNoWork) {
  // A before-compute fault resets state but the task had not computed, so
  // the total compute count equals the task count: nothing is re-executed.
  auto app = make_app("lcs", test_config("lcs"));
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kBeforeCompute;
  spec.target_count = 8;
  PlannedFaultInjector injector(planner.plan(spec).faults);
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(*app, pool, 2, &injector);
  for (const ExecReport& r : runs.reports) EXPECT_EQ(r.re_executed, 0u);
}

TEST(FaultInjection, AfterComputeReexecutesAtLeastTheVictims) {
  auto app = make_app("lcs", test_config("lcs"));
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.target_count = 8;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(*app, pool, 2, &injector);
  for (const ExecReport& r : runs.reports)
    EXPECT_GE(r.re_executed, plan.faults.size());
}

TEST(FaultInjection, VLastChainReexecutesVersionChain) {
  // LU, full reuse: failing the final version of a block after compute
  // forces the whole version chain of that block to re-execute.
  auto app = make_app("lu", {256, 32, 3});  // W=8
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 7;  // one deep victim suffices
  spec.seed = 5;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);
  WorkStealingPool pool(2);
  RepeatedRuns runs = run_ft(*app, pool, 1, &injector);
  // The chain makes measured re-execution exceed the victim count.
  EXPECT_GT(runs.reports[0].re_executed, plan.faults.size());
}

TEST(FaultInjection, EveryTaskFailsOnceAndStillCompletes) {
  // Fault storm: before-compute failure on every single task.
  auto app = make_app("rand", {128, 16, 19});
  std::vector<TaskKey> keys;
  app->all_tasks(keys);
  std::vector<PlannedFault> faults;
  for (TaskKey k : keys)
    faults.push_back({k, FaultPhase::kBeforeCompute, 1});
  PlannedFaultInjector injector(faults);
  WorkStealingPool pool(4);
  RepeatedRuns runs = run_ft(*app, pool, 1, &injector);
  EXPECT_EQ(runs.reports[0].injected, keys.size());
  EXPECT_GE(runs.reports[0].recoveries, keys.size());
}

TEST(FaultInjection, InjectorFiresOncePerRunAndResets) {
  auto app = make_app("lcs", {128, 32, 3});
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.target_count = 4;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);
  WorkStealingPool pool(2);
  run_ft(*app, pool, 1, &injector);
  const std::uint64_t first = injector.injected();
  EXPECT_EQ(first, plan.faults.size());
  run_ft(*app, pool, 1, &injector);  // harness resets the injector
  EXPECT_EQ(injector.injected(), first);
}

TEST(FaultInjection, IntendedAccountingExposed) {
  auto app = make_app("lu", {256, 32, 3});
  FaultPlanner planner(*app);
  FaultPlanSpec spec;
  spec.phase = FaultPhase::kAfterCompute;
  spec.type = VictimType::kVersionLast;
  spec.target_count = 10;
  FaultPlan plan = planner.plan(spec);
  PlannedFaultInjector injector(plan.faults);
  EXPECT_EQ(injector.intended_reexecutions(), plan.intended_reexecutions);
  EXPECT_GE(plan.intended_reexecutions, 10u);
}

}  // namespace
}  // namespace ftdag
