// Tests for the recovery table (Guarantee 1): one recovery claim per
// (key, life), including under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/recovery_table.hpp"

namespace ftdag {
namespace {

TEST(RecoveryTable, FirstObserverClaimsRecovery) {
  RecoveryTable r;
  EXPECT_FALSE(r.is_recovering(7, 0));  // we claimed it
  EXPECT_TRUE(r.is_recovering(7, 0));   // someone already recovering life 0
  EXPECT_EQ(r.keys_recovered(), 1u);
}

TEST(RecoveryTable, NextLifeClaimableOnce) {
  RecoveryTable r;
  EXPECT_FALSE(r.is_recovering(7, 0));
  // The recovery created incarnation 1; when it fails, exactly one thread
  // advances the record 0 -> 1.
  EXPECT_FALSE(r.is_recovering(7, 1));
  EXPECT_TRUE(r.is_recovering(7, 1));
}

TEST(RecoveryTable, StaleLifeObserversStandDown) {
  RecoveryTable r;
  EXPECT_FALSE(r.is_recovering(7, 0));
  EXPECT_FALSE(r.is_recovering(7, 1));
  // A thread still holding the life-0 incarnation observes its failure late:
  // the record is already past it.
  EXPECT_TRUE(r.is_recovering(7, 0));
}

TEST(RecoveryTable, SkippedLifeCannotClaim) {
  RecoveryTable r;
  EXPECT_FALSE(r.is_recovering(7, 0));
  // Claiming life 2 while the record is at 0 must fail (life 1 recovery has
  // not been claimed yet), preserving the one-at-a-time ladder.
  EXPECT_TRUE(r.is_recovering(7, 2));
}

TEST(RecoveryTable, KeysAreIndependent) {
  RecoveryTable r;
  EXPECT_FALSE(r.is_recovering(1, 0));
  EXPECT_FALSE(r.is_recovering(2, 0));
  EXPECT_TRUE(r.is_recovering(1, 0));
  EXPECT_EQ(r.keys_recovered(), 2u);
}

TEST(RecoveryTable, ExactlyOneWinnerUnderContention) {
  for (int round = 0; round < 20; ++round) {
    RecoveryTable r;
    std::atomic<int> winners{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t)
      ts.emplace_back([&] {
        if (!r.is_recovering(42, 0)) winners.fetch_add(1);
      });
    for (auto& t : ts) t.join();
    EXPECT_EQ(winners.load(), 1);
  }
}

TEST(RecoveryTable, LadderUnderContention) {
  // Threads race to claim successive lives; each life has exactly one
  // winner and the ladder never skips.
  RecoveryTable r;
  for (std::uint64_t life = 0; life < 50; ++life) {
    std::atomic<int> winners{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t)
      ts.emplace_back([&] {
        if (!r.is_recovering(9, life)) winners.fetch_add(1);
      });
    for (auto& t : ts) t.join();
    EXPECT_EQ(winners.load(), 1) << "life " << life;
  }
}

TEST(RecoveryTable, ClearResets) {
  RecoveryTable r;
  EXPECT_FALSE(r.is_recovering(7, 0));
  r.clear();
  EXPECT_EQ(r.keys_recovered(), 0u);
  EXPECT_FALSE(r.is_recovering(7, 0));
}

}  // namespace
}  // namespace ftdag
