// Exhaustive interleaving check of Guarantee 1 (at-most-once recovery
// initiation) for the RecoveryTable claim protocol.
//
// ISRECOVERING(key, life) has two linearization points:
//   L1  insert_if_absent(key, Record{life})   — atomic under the shard lock
//   L2  CAS record.life: life-1 -> life       — only reached when L1 found
//                                               an existing record
//
// Any concurrent execution is equivalent to *some* sequential ordering of
// these points, so enumerating every interleaving of the model threads'
// linearization points and replaying each schedule sequentially covers the
// full behavior space of the protocol at this granularity. Each model
// thread executes the algorithm of RecoveryTable::is_recovering transcribed
// step-for-step against a real ShardedMap and real atomic CAS — the same
// primitives the production class uses — and a coarse-grained variant runs
// every permutation of complete calls against the production RecoveryTable
// itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "concurrent/sharded_map.hpp"
#include "engine/recovery_table.hpp"
#include "graph/task_key.hpp"

namespace ftdag {
namespace {

struct Rec {
  explicit Rec(std::uint64_t l) : life(l) {}
  std::atomic<std::uint64_t> life;
};

// One ISRECOVERING invocation by a model thread.
struct Call {
  TaskKey key;
  std::uint64_t life;
};

// A model thread runs its calls in order; each call takes one or two steps.
struct ModelThread {
  std::vector<Call> calls;
};

// Per-(key, life) count of threads that claimed the recovery (i.e. for
// which is_recovering returned false).
using ClaimMap = std::map<std::pair<TaskKey, std::uint64_t>, int>;

// Replays one schedule. `schedule` is a sequence of thread indices; each
// entry advances that thread by ONE linearization point. Entries for
// finished threads are skipped, which canonicalizes schedules that differ
// only after every thread is done. Returns false if the schedule stalls
// (never happens with a full multiset permutation).
ClaimMap replay(const std::vector<ModelThread>& threads,
                const std::vector<int>& schedule,
                const std::map<TaskKey, std::uint64_t>& preseed) {
  ShardedMap<Rec> records;
  for (const auto& [key, life] : preseed) {
    records.insert_if_absent(key, [l = life] { return new Rec(l); });
  }

  struct Cursor {
    std::size_t call = 0;  // index into calls
    int pc = 0;            // 0: before L1, 1: before L2
    Rec* rec = nullptr;    // record found at L1, used by L2
  };
  std::vector<Cursor> cur(threads.size());
  ClaimMap claims;

  auto step = [&](int t) {
    Cursor& c = cur[t];
    if (c.call >= threads[t].calls.size()) return;  // finished: skip
    const Call& call = threads[t].calls[c.call];
    if (c.pc == 0) {
      // L1: transcription of is_recovering's insert_if_absent.
      auto [rec, inserted] = records.insert_if_absent(
          call.key, [&call] { return new Rec(call.life); });
      if (inserted) {
        ++claims[{call.key, call.life}];  // inserter recovers
        ++c.call;
      } else {
        c.rec = rec;
        c.pc = 1;
      }
    } else {
      // L2: transcription of is_recovering's claim CAS.
      std::uint64_t expected = call.life - 1;
      const bool claimed = c.rec->life.compare_exchange_strong(
          expected, call.life, std::memory_order_acq_rel);
      if (claimed) ++claims[{call.key, call.life}];
      c.pc = 0;
      ++c.call;
    }
  };

  for (int t : schedule) step(t);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    EXPECT_GE(cur[t].call, threads[t].calls.size())
        << "schedule did not run thread " << t << " to completion";
  }
  return claims;
}

// All distinct permutations of the multiset {t repeated max_steps(t) times}.
// Each thread contributes two slots per call (L1 + possibly L2); skipped
// slots are no-ops in replay, so every real interleaving appears.
std::vector<std::vector<int>> all_schedules(
    const std::vector<ModelThread>& threads) {
  std::vector<int> slots;
  for (std::size_t t = 0; t < threads.size(); ++t) {
    for (std::size_t s = 0; s < 2 * threads[t].calls.size(); ++s)
      slots.push_back(static_cast<int>(t));
  }
  std::sort(slots.begin(), slots.end());
  std::vector<std::vector<int>> out;
  do {
    out.push_back(slots);
  } while (std::next_permutation(slots.begin(), slots.end()));
  return out;
}

int claims_for(const ClaimMap& claims, TaskKey key, std::uint64_t life) {
  auto it = claims.find({key, life});
  return it == claims.end() ? 0 : it->second;
}

TEST(RecoveryTableInterleave, FirstFailureThreeWayRace) {
  // Three threads all report the first failure of key 7 (life 1).
  const std::vector<ModelThread> threads{
      {{{7, 1}}}, {{{7, 1}}}, {{{7, 1}}}};
  const auto schedules = all_schedules(threads);
  EXPECT_EQ(schedules.size(), 90u);  // 6! / (2!2!2!)
  for (const auto& schedule : schedules) {
    const ClaimMap claims = replay(threads, schedule, {});
    EXPECT_EQ(claims_for(claims, 7, 1), 1)
        << "Guarantee 1 violated: claim count != 1 for (7, life 1)";
  }
}

TEST(RecoveryTableInterleave, RepeatFailureThreeWayRace) {
  // Key 3 already recovered at life 1; three threads race on life 2.
  const std::vector<ModelThread> threads{
      {{{3, 2}}}, {{{3, 2}}}, {{{3, 2}}}};
  for (const auto& schedule : all_schedules(threads)) {
    const ClaimMap claims = replay(threads, schedule, {{3, 1}});
    EXPECT_EQ(claims_for(claims, 3, 2), 1);
  }
}

TEST(RecoveryTableInterleave, StaggeredLives) {
  // One thread reports life 1 while two report life 2. Depending on who
  // inserts first, the life-1 claim may be superseded entirely (the record
  // is born at life 2); at-most-once must hold for every (key, life) in
  // every interleaving, and life 2 is always claimed exactly once.
  const std::vector<ModelThread> threads{
      {{{11, 1}}}, {{{11, 2}}}, {{{11, 2}}}};
  for (const auto& schedule : all_schedules(threads)) {
    const ClaimMap claims = replay(threads, schedule, {});
    EXPECT_LE(claims_for(claims, 11, 1), 1);
    EXPECT_EQ(claims_for(claims, 11, 2), 1);
  }
}

TEST(RecoveryTableInterleave, IndependentKeys) {
  // Races on distinct keys never interfere.
  const std::vector<ModelThread> threads{
      {{{1, 1}}}, {{{2, 1}}}, {{{1, 1}}}};
  for (const auto& schedule : all_schedules(threads)) {
    const ClaimMap claims = replay(threads, schedule, {});
    EXPECT_EQ(claims_for(claims, 1, 1), 1);
    EXPECT_EQ(claims_for(claims, 2, 1), 1);
  }
}

TEST(RecoveryTableInterleave, TwoThreadsTwoConsecutiveFailures) {
  // Both threads chase the same key through two incarnations: four
  // linearization points per thread, 8!/(4!4!) = 70 interleavings.
  const std::vector<ModelThread> threads{
      {{{5, 1}, {5, 2}}}, {{{5, 1}, {5, 2}}}};
  const auto schedules = all_schedules(threads);
  EXPECT_EQ(schedules.size(), 70u);
  for (const auto& schedule : schedules) {
    const ClaimMap claims = replay(threads, schedule, {});
    EXPECT_EQ(claims_for(claims, 5, 1), 1);
    EXPECT_EQ(claims_for(claims, 5, 2), 1);
  }
}

// Coarse-grained cross-check on the production class: every ordering of
// complete is_recovering calls (calls are atomic at this granularity).
TEST(RecoveryTableInterleave, ProductionTableAllCallOrders) {
  struct WholeCall {
    int thread;
    Call call;
  };
  std::vector<WholeCall> calls{
      {0, {9, 1}}, {1, {9, 1}}, {2, {9, 1}}, {0, {9, 2}}, {1, {9, 2}}};
  std::vector<int> order(calls.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  int checked = 0;
  do {
    // A thread's own calls stay in program order.
    bool valid = true;
    std::map<int, std::uint64_t> last_life;
    for (int i : order) {
      auto it = last_life.find(calls[i].thread);
      if (it != last_life.end() && calls[i].call.life < it->second)
        valid = false;
      last_life[calls[i].thread] = calls[i].call.life;
    }
    if (!valid) continue;
    RecoveryTable table;
    ClaimMap claims;
    for (int i : order) {
      if (!table.is_recovering(calls[i].call.key, calls[i].call.life))
        ++claims[{calls[i].call.key, calls[i].call.life}];
    }
    EXPECT_LE(claims_for(claims, 9, 1), 1);
    EXPECT_LE(claims_for(claims, 9, 2), 1);
    ++checked;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace ftdag
